#![warn(missing_docs)]

//! The **conceptual model processor** of ConceptBase (paper §3.1).
//!
//! "Models constitute highly complex multi-level object structures
//! which are maintained in hierarchies. Different models may share
//! some objects or (sub-)models. Configuring a model for a specific
//! application means the activation of the corresponding nodes in the
//! lattice."
//!
//! * [`lattice`] — the Model Configuration module: a lattice of
//!   (sub)models over KB objects, with sharing and activation;
//! * [`display`] — the Model Display & Interaction module (§3.3.1):
//!   text DAG browser, graphical (layered) DAG browser, relational
//!   display, DOT export;
//! * [`session`] — focusing, browsing and zooming with an explicit
//!   focus history (the direct-manipulation interface, as an API).

pub mod display;
pub mod lattice;
pub mod session;

pub use lattice::{ModelId, ModelLattice};
pub use session::BrowseSession;
