//! The Model Configuration module: a lattice of models over KB objects.
//!
//! A *model* names a set of KB objects plus a set of submodels; models
//! may share objects and submodels ("different models may share some
//! objects or (sub-)models"). *Configuring* activates a set of model
//! nodes; the accessible objects are those of all active models,
//! transitively through submodels — "making their objects accessible
//! for the proposition processor".

use std::collections::HashSet;
use telos::PropId;

/// Identifier of a model in the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub u32);

#[derive(Debug, Clone)]
struct Model {
    name: String,
    objects: Vec<PropId>,
    submodels: Vec<ModelId>,
}

/// The model lattice with an activation state.
#[derive(Debug, Default)]
pub struct ModelLattice {
    models: Vec<Model>,
    active: HashSet<ModelId>,
}

/// Errors of the model lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// Unknown model name or id.
    Unknown(String),
    /// Including the submodel would create a cycle.
    Cycle(String),
    /// A model with this name already exists.
    Duplicate(String),
}

impl std::fmt::Display for LatticeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatticeError::Unknown(m) => write!(f, "unknown model `{m}`"),
            LatticeError::Cycle(m) => write!(f, "submodel cycle through `{m}`"),
            LatticeError::Duplicate(m) => write!(f, "duplicate model `{m}`"),
        }
    }
}

impl std::error::Error for LatticeError {}

impl ModelLattice {
    /// An empty lattice.
    pub fn new() -> Self {
        ModelLattice::default()
    }

    /// Defines a new model.
    pub fn define(&mut self, name: impl Into<String>) -> Result<ModelId, LatticeError> {
        let name = name.into();
        if self.find(&name).is_some() {
            return Err(LatticeError::Duplicate(name));
        }
        let id = ModelId(self.models.len() as u32);
        self.models.push(Model {
            name,
            objects: Vec::new(),
            submodels: Vec::new(),
        });
        Ok(id)
    }

    /// Looks a model up by name.
    pub fn find(&self, name: &str) -> Option<ModelId> {
        self.models
            .iter()
            .position(|m| m.name == name)
            .map(|i| ModelId(i as u32))
    }

    /// The model's name.
    pub fn name(&self, id: ModelId) -> &str {
        &self.models[id.0 as usize].name
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True if no models are defined.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Adds an object to a model (idempotent).
    pub fn add_object(&mut self, id: ModelId, obj: PropId) {
        let m = &mut self.models[id.0 as usize];
        if !m.objects.contains(&obj) {
            m.objects.push(obj);
        }
    }

    /// Includes `sub` as a submodel of `sup`; rejects cycles.
    pub fn include(&mut self, sup: ModelId, sub: ModelId) -> Result<(), LatticeError> {
        if sup == sub || self.reachable(sub).contains(&sup) {
            return Err(LatticeError::Cycle(self.name(sub).to_string()));
        }
        let m = &mut self.models[sup.0 as usize];
        if !m.submodels.contains(&sub) {
            m.submodels.push(sub);
        }
        Ok(())
    }

    /// Models reachable from `id` through submodel links (including
    /// `id`).
    pub fn reachable(&self, id: ModelId) -> Vec<ModelId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            out.push(cur);
            stack.extend(self.models[cur.0 as usize].submodels.iter().copied());
        }
        out.sort();
        out
    }

    /// Activates a model (and implicitly everything reachable from it).
    pub fn activate(&mut self, id: ModelId) {
        self.active.insert(id);
    }

    /// Deactivates a model.
    pub fn deactivate(&mut self, id: ModelId) {
        self.active.remove(&id);
    }

    /// Configures exactly the given models as active.
    pub fn configure(&mut self, ids: &[ModelId]) {
        self.active = ids.iter().copied().collect();
    }

    /// The currently active model nodes (explicitly activated only).
    pub fn active(&self) -> Vec<ModelId> {
        let mut out: Vec<ModelId> = self.active.iter().copied().collect();
        out.sort();
        out
    }

    /// The objects accessible under the current configuration: all
    /// objects of every active model, transitively through submodels,
    /// deduplicated, in first-seen order.
    pub fn accessible(&self) -> Vec<PropId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut actives: Vec<ModelId> = self.active.iter().copied().collect();
        actives.sort();
        for a in actives {
            for m in self.reachable(a) {
                for &obj in &self.models[m.0 as usize].objects {
                    if seen.insert(obj) {
                        out.push(obj);
                    }
                }
            }
        }
        out
    }

    /// True if `obj` is accessible under the current configuration.
    pub fn is_accessible(&self, obj: PropId) -> bool {
        self.accessible().contains(&obj)
    }

    /// Objects shared by two models (directly or via submodels).
    pub fn shared_objects(&self, a: ModelId, b: ModelId) -> Vec<PropId> {
        let of = |id: ModelId| -> HashSet<PropId> {
            self.reachable(id)
                .into_iter()
                .flat_map(|m| self.models[m.0 as usize].objects.iter().copied())
                .collect()
        };
        let sa = of(a);
        let sb = of(b);
        let mut out: Vec<PropId> = sa.intersection(&sb).copied().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> PropId {
        PropId(i)
    }

    #[test]
    fn define_and_find() {
        let mut l = ModelLattice::new();
        let m = l.define("GKBMS").unwrap();
        assert_eq!(l.find("GKBMS"), Some(m));
        assert_eq!(l.name(m), "GKBMS");
        assert!(matches!(l.define("GKBMS"), Err(LatticeError::Duplicate(_))));
        assert_eq!(l.find("Other"), None);
    }

    #[test]
    fn activation_gates_access() {
        let mut l = ModelLattice::new();
        let m = l.define("DesignObjects").unwrap();
        l.add_object(m, obj(1));
        l.add_object(m, obj(2));
        l.add_object(m, obj(1)); // idempotent
        assert!(l.accessible().is_empty(), "nothing active yet");
        l.activate(m);
        assert_eq!(l.accessible(), vec![obj(1), obj(2)]);
        assert!(l.is_accessible(obj(1)));
        l.deactivate(m);
        assert!(!l.is_accessible(obj(1)));
    }

    #[test]
    fn submodels_are_included_transitively() {
        let mut l = ModelLattice::new();
        let gkbms = l.define("GKBMS").unwrap();
        let objects = l.define("DesignObjects").unwrap();
        let decisions = l.define("DesignDecisions").unwrap();
        l.include(gkbms, objects).unwrap();
        l.include(gkbms, decisions).unwrap();
        l.add_object(objects, obj(10));
        l.add_object(decisions, obj(20));
        l.activate(gkbms);
        assert_eq!(l.accessible(), vec![obj(10), obj(20)]);
    }

    #[test]
    fn sharing_between_models() {
        let mut l = ModelLattice::new();
        let common = l.define("Common").unwrap();
        let a = l.define("AppA").unwrap();
        let b = l.define("AppB").unwrap();
        l.include(a, common).unwrap();
        l.include(b, common).unwrap();
        l.add_object(common, obj(1));
        l.add_object(a, obj(2));
        l.add_object(b, obj(3));
        assert_eq!(l.shared_objects(a, b), vec![obj(1)]);
        l.configure(&[a]);
        assert!(l.is_accessible(obj(1)));
        assert!(!l.is_accessible(obj(3)));
    }

    #[test]
    fn cycles_rejected() {
        let mut l = ModelLattice::new();
        let a = l.define("A").unwrap();
        let b = l.define("B").unwrap();
        let c = l.define("C").unwrap();
        l.include(a, b).unwrap();
        l.include(b, c).unwrap();
        assert!(matches!(l.include(c, a), Err(LatticeError::Cycle(_))));
        assert!(matches!(l.include(a, a), Err(LatticeError::Cycle(_))));
    }

    #[test]
    fn configure_replaces_activation() {
        let mut l = ModelLattice::new();
        let a = l.define("A").unwrap();
        let b = l.define("B").unwrap();
        l.activate(a);
        l.configure(&[b]);
        assert_eq!(l.active(), vec![b]);
    }

    #[test]
    fn reachable_is_sorted_and_complete() {
        let mut l = ModelLattice::new();
        let a = l.define("A").unwrap();
        let b = l.define("B").unwrap();
        let c = l.define("C").unwrap();
        l.include(a, b).unwrap();
        l.include(b, c).unwrap();
        l.include(a, c).unwrap(); // diamond-ish sharing
        assert_eq!(l.reachable(a), vec![a, b, c]);
    }
}
