//! Focusing, browsing and zooming over a KB (§3.3.1).
//!
//! "Such an exploration typically starts from a focus object or
//! decision … Focusing in any of these structures is done by mouse
//! selection" — here, by API calls. The session keeps a focus history
//! (for "recovery facilities") and renders the neighbourhood of the
//! focus with the text DAG browser or the relational display.

use crate::display::relational::Table;
use crate::display::textdag::{self, Bounds};
use telos::{Kb, PropId};

/// An interactive browse session over a KB.
pub struct BrowseSession<'a> {
    kb: &'a Kb,
    focus: PropId,
    history: Vec<PropId>,
    bounds: Bounds,
}

/// Errors of the browse session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrowseError {
    /// The requested focus does not exist.
    UnknownObject(String),
    /// No earlier focus to return to.
    HistoryEmpty,
}

impl std::fmt::Display for BrowseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrowseError::UnknownObject(n) => write!(f, "unknown object `{n}`"),
            BrowseError::HistoryEmpty => write!(f, "focus history is empty"),
        }
    }
}

impl std::error::Error for BrowseError {}

impl<'a> BrowseSession<'a> {
    /// Starts a session focused on `name`.
    pub fn start(kb: &'a Kb, name: &str) -> Result<Self, BrowseError> {
        let focus = kb
            .lookup(name)
            .ok_or_else(|| BrowseError::UnknownObject(name.to_string()))?;
        Ok(BrowseSession {
            kb,
            focus,
            history: Vec::new(),
            bounds: Bounds::default(),
        })
    }

    /// The current focus.
    pub fn focus(&self) -> PropId {
        self.focus
    }

    /// The current focus name.
    pub fn focus_name(&self) -> String {
        self.kb.display(self.focus)
    }

    /// Changes the display bounds.
    pub fn set_bounds(&mut self, bounds: Bounds) {
        self.bounds = bounds;
    }

    /// Moves the focus, pushing the old one onto the history.
    pub fn focus_on(&mut self, name: &str) -> Result<(), BrowseError> {
        let next = self
            .kb
            .lookup(name)
            .ok_or_else(|| BrowseError::UnknownObject(name.to_string()))?;
        self.history.push(self.focus);
        self.focus = next;
        Ok(())
    }

    /// Returns to the previous focus.
    pub fn back(&mut self) -> Result<(), BrowseError> {
        let prev = self.history.pop().ok_or(BrowseError::HistoryEmpty)?;
        self.focus = prev;
        Ok(())
    }

    /// The specialization view: the isa sub-hierarchy below the focus,
    /// rendered with the text DAG browser (fig 2-1's IsA window).
    pub fn isa_tree(&self) -> String {
        let kb = self.kb;
        textdag::render(&self.focus_name(), self.bounds, |name| {
            match kb.lookup(name) {
                None => Vec::new(),
                Some(id) => {
                    let mut kids: Vec<String> = kb
                        .isa_children(id)
                        .into_iter()
                        .map(|c| kb.display(c))
                        .collect();
                    kids.sort();
                    kids
                }
            }
        })
    }

    /// The classification view: instances below the focus class.
    pub fn instance_tree(&self) -> String {
        let kb = self.kb;
        textdag::render(&self.focus_name(), self.bounds, |name| {
            match kb.lookup(name) {
                None => Vec::new(),
                Some(id) => {
                    let mut kids: Vec<String> = kb
                        .isa_children(id)
                        .into_iter()
                        .chain(kb.instances_of(id))
                        .map(|c| kb.display(c))
                        .collect();
                    kids.sort();
                    kids.dedup();
                    kids
                }
            }
        })
    }

    /// The relational view of the focus: one row per attribute
    /// (fig 3-1's Object Processor level).
    pub fn attribute_table(&self) -> Table {
        let mut t = Table::new(&["attribute", "value"]);
        for attr in self.kb.attrs_of(self.focus) {
            if let Ok(p) = self.kb.get(attr) {
                let label = self.kb.resolve(p.label).to_string();
                t.row(&[&label, &self.kb.display(p.dest)]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telos::Kb;

    fn kb() -> Kb {
        let mut kb = Kb::new();
        let paper = kb.individual("Paper").unwrap();
        let invitation = kb.individual("Invitation").unwrap();
        let minutes = kb.individual("Minutes").unwrap();
        let person = kb.individual("Person").unwrap();
        kb.specialize(invitation, paper).unwrap();
        kb.specialize(minutes, paper).unwrap();
        kb.put_attr(invitation, "sender", person).unwrap();
        let inv1 = kb.individual("inv1").unwrap();
        kb.instantiate(inv1, invitation).unwrap();
        kb
    }

    #[test]
    fn focus_and_history() {
        let kb = kb();
        let mut s = BrowseSession::start(&kb, "Paper").unwrap();
        assert_eq!(s.focus_name(), "Paper");
        s.focus_on("Invitation").unwrap();
        assert_eq!(s.focus_name(), "Invitation");
        s.back().unwrap();
        assert_eq!(s.focus_name(), "Paper");
        assert_eq!(s.back(), Err(BrowseError::HistoryEmpty));
        assert!(matches!(
            s.focus_on("Ghost"),
            Err(BrowseError::UnknownObject(_))
        ));
        assert!(BrowseSession::start(&kb, "Ghost").is_err());
    }

    #[test]
    fn isa_tree_renders_hierarchy() {
        let kb = kb();
        let s = BrowseSession::start(&kb, "Paper").unwrap();
        let tree = s.isa_tree();
        assert!(tree.starts_with("Paper\n"));
        assert!(tree.contains("|- Invitation"));
        assert!(tree.contains("`- Minutes"));
    }

    #[test]
    fn instance_tree_includes_instances() {
        let kb = kb();
        let s = BrowseSession::start(&kb, "Paper").unwrap();
        let tree = s.instance_tree();
        assert!(tree.contains("inv1"));
    }

    #[test]
    fn attribute_table_lists_attrs() {
        let kb = kb();
        let mut s = BrowseSession::start(&kb, "Paper").unwrap();
        s.focus_on("Invitation").unwrap();
        let t = s.attribute_table();
        let rendered = t.render();
        assert!(rendered.contains("sender"));
        assert!(rendered.contains("Person"));
    }

    #[test]
    fn bounds_are_respected() {
        let kb = kb();
        let mut s = BrowseSession::start(&kb, "Paper").unwrap();
        s.set_bounds(Bounds { depth: 0, width: 8 });
        assert_eq!(s.isa_tree(), "Paper\n");
    }
}
