//! Graphviz (DOT) export of display graphs.

use crate::display::graphdag::Graph;

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\\\""))
}

/// Renders the graph in DOT syntax; highlighted nodes are filled.
pub fn to_dot(graph: &Graph, name: &str) -> String {
    let mut out = format!("digraph {} {{\n  rankdir=LR;\n", quote(name));
    let rendered = graph.render();
    for node in graph.nodes() {
        let highlighted = rendered.contains(&format!("*[{node}]*"));
        if highlighted {
            out.push_str(&format!(
                "  {} [style=filled, fillcolor=lightyellow];\n",
                quote(node)
            ));
        } else {
            out.push_str(&format!("  {};\n", quote(node)));
        }
    }
    for e in graph.edges() {
        out.push_str(&format!(
            "  {} -> {} [label={}];\n",
            quote(&e.from),
            quote(&e.to),
            quote(&e.label)
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_nodes_edges_and_highlights() {
        let mut g = Graph::new();
        g.edge("Invitations", "InvitationRel", "move-down");
        g.highlight("InvitationRel");
        let dot = to_dot(&g, "fig2-2");
        assert!(dot.starts_with("digraph \"fig2-2\" {"));
        assert!(dot.contains("\"Invitations\" -> \"InvitationRel\" [label=\"move-down\"];"));
        assert!(dot.contains("\"InvitationRel\" [style=filled"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g = Graph::new();
        g.node("say \"hi\"");
        let dot = to_dot(&g, "q");
        assert!(dot.contains("\"say \\\"hi\\\"\""));
    }
}
