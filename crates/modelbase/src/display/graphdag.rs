//! The graphical DAG browser, as a layered text layout.
//!
//! The dependency graphs of figs 2-2 … 2-4 are drawn by assigning each
//! node a layer (longest path from a source), printing the layers as
//! columns of labeled boxes, and listing the edges with their labels.
//! Highlighting (fig 2-4 "only highlights the objects to be changed")
//! marks nodes with `*`.

use std::collections::{HashMap, HashSet};

/// A labeled edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// Source node name.
    pub from: String,
    /// Destination node name.
    pub to: String,
    /// Edge label (e.g. the decision or rule name).
    pub label: String,
}

/// A graph to display.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<String>,
    edges: Vec<GraphEdge>,
    highlighted: HashSet<String>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node (idempotent).
    pub fn node(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.nodes.contains(&name) {
            self.nodes.push(name);
        }
    }

    /// Adds an edge, creating endpoints as needed.
    pub fn edge(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        label: impl Into<String>,
    ) {
        let (from, to) = (from.into(), to.into());
        self.node(from.clone());
        self.node(to.clone());
        self.edges.push(GraphEdge {
            from,
            to,
            label: label.into(),
        });
    }

    /// Highlights a node (fig 2-4 style).
    pub fn highlight(&mut self, name: &str) {
        self.highlighted.insert(name.to_string());
    }

    /// Node names in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The edges in insertion order.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Longest-path layer per node (sources at 0). Cycles are broken
    /// by capping at the node count.
    pub fn layers(&self) -> HashMap<String, usize> {
        let mut layer: HashMap<String, usize> = self.nodes.iter().map(|n| (n.clone(), 0)).collect();
        let cap = self.nodes.len();
        for _ in 0..cap {
            let mut changed = false;
            for e in &self.edges {
                let lf = layer[&e.from];
                let lt = layer[&e.to];
                if lt < lf + 1 && lf < cap {
                    layer.insert(e.to.clone(), lf + 1);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        layer
    }

    /// Renders the layered layout.
    pub fn render(&self) -> String {
        let layers = self.layers();
        let max_layer = layers.values().copied().max().unwrap_or(0);
        let mut out = String::new();
        for l in 0..=max_layer {
            let mut row: Vec<&str> = self
                .nodes
                .iter()
                .filter(|n| layers[*n] == l)
                .map(|n| n.as_str())
                .collect();
            row.sort_unstable();
            if row.is_empty() {
                continue;
            }
            out.push_str(&format!("layer {l}: "));
            let cells: Vec<String> = row
                .iter()
                .map(|n| {
                    if self.highlighted.contains(*n) {
                        format!("*[{n}]*")
                    } else {
                        format!("[{n}]")
                    }
                })
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        if !self.edges.is_empty() {
            out.push_str("edges:\n");
            for e in &self.edges {
                out.push_str(&format!("  {} --{}--> {}\n", e.from, e.label, e.to));
            }
        }
        out
    }

    /// Zoom: the sub-graph within `radius` edges (either direction) of
    /// `focus` — "the GKBMS must have some kind of zooming facility".
    pub fn zoom(&self, focus: &str, radius: usize) -> Graph {
        let mut keep: HashSet<&str> = HashSet::from([focus]);
        for _ in 0..radius {
            let mut next = keep.clone();
            for e in &self.edges {
                if keep.contains(e.from.as_str()) {
                    next.insert(&e.to);
                }
                if keep.contains(e.to.as_str()) {
                    next.insert(&e.from);
                }
            }
            keep = next;
        }
        let mut g = Graph::new();
        for n in &self.nodes {
            if keep.contains(n.as_str()) {
                g.node(n.clone());
                if self.highlighted.contains(n) {
                    g.highlight(n);
                }
            }
        }
        for e in &self.edges {
            if keep.contains(e.from.as_str()) && keep.contains(e.to.as_str()) {
                g.edges.push(e.clone());
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fig 2-2 dependency graph shape.
    fn fig_2_2() -> Graph {
        let mut g = Graph::new();
        g.edge("Papers", "ConsPapers", "move-down");
        g.edge("Invitations", "InvitationRel", "move-down");
        g.edge("MapTool", "InvitationRel", "by");
        g
    }

    #[test]
    fn layers_follow_edges() {
        let g = fig_2_2();
        let layers = g.layers();
        assert_eq!(layers["Papers"], 0);
        assert_eq!(layers["ConsPapers"], 1);
        assert_eq!(layers["InvitationRel"], 1);
    }

    #[test]
    fn render_lists_layers_and_edges() {
        let g = fig_2_2();
        let s = g.render();
        assert!(s.contains("layer 0: [Invitations]  [MapTool]  [Papers]"));
        assert!(s.contains("layer 1: [ConsPapers]  [InvitationRel]"));
        assert!(s.contains("Invitations --move-down--> InvitationRel"));
    }

    #[test]
    fn highlighting_marks_nodes() {
        let mut g = fig_2_2();
        g.highlight("InvitationRel");
        let s = g.render();
        assert!(s.contains("*[InvitationRel]*"));
        assert!(s.contains("[ConsPapers]"));
        assert!(!s.contains("*[ConsPapers]*"));
    }

    #[test]
    fn zoom_restricts_to_neighbourhood() {
        let mut g = Graph::new();
        g.edge("a", "b", "x");
        g.edge("b", "c", "x");
        g.edge("c", "d", "x");
        let z = g.zoom("b", 1);
        let names: Vec<&str> = z.nodes().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(z.edges().len(), 2);
        let z0 = g.zoom("b", 0);
        assert_eq!(z0.nodes().len(), 1);
        assert!(z0.edges().is_empty());
    }

    #[test]
    fn zoom_preserves_highlights() {
        let mut g = fig_2_2();
        g.highlight("InvitationRel");
        let z = g.zoom("InvitationRel", 1);
        assert!(z.render().contains("*[InvitationRel]*"));
    }

    #[test]
    fn cycles_do_not_hang_layout() {
        let mut g = Graph::new();
        g.edge("a", "b", "x");
        g.edge("b", "a", "x");
        let layers = g.layers();
        assert!(layers["a"] <= 2 && layers["b"] <= 2);
        let _ = g.render();
    }

    #[test]
    fn idempotent_nodes() {
        let mut g = Graph::new();
        g.node("a");
        g.node("a");
        assert_eq!(g.nodes().len(), 1);
    }
}
