//! The relational display: "shows the properties of objects in tabular
//! form with variable column width and scrolling".

/// A table to display.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded, long rows truncated to the
    /// header width.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders rows `offset..offset+limit` (scrolling) with columns
    /// sized to their visible content, capped at `max_col` characters
    /// (variable column width).
    pub fn render_window(&self, offset: usize, limit: usize, max_col: usize) -> String {
        let max_col = max_col.max(2);
        let window: Vec<&Vec<String>> = self.rows.iter().skip(offset).take(limit).collect();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &window {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        for w in &mut widths {
            *w = (*w).min(max_col);
        }
        let clip = |s: &str, w: usize| -> String {
            let n = s.chars().count();
            if n <= w {
                format!("{s}{}", " ".repeat(w - n))
            } else {
                let cut: String = s.chars().take(w.saturating_sub(1)).collect();
                format!("{cut}…")
            }
        };
        let mut out = String::new();
        let hdr: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, &w)| clip(h, w))
            .collect();
        out.push_str(&format!("| {} |\n", hdr.join(" | ")));
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&format!("|-{}-|\n", rule.join("-+-")));
        for row in &window {
            let cells: Vec<String> = row.iter().zip(&widths).map(|(c, &w)| clip(c, w)).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        if offset + window.len() < self.rows.len() {
            out.push_str(&format!(
                "({} of {} rows shown; scroll for more)\n",
                window.len(),
                self.rows.len()
            ));
        }
        out
    }

    /// Renders the whole table with a generous column cap.
    pub fn render(&self) -> String {
        self.render_window(0, self.rows.len(), 40)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["object", "class", "justified by"]);
        t.row(&["InvitationRel", "DBPL_Rel", "mapInvitations"]);
        t.row(&["InvReceivRel", "NormalizedDBPL_Rel", "normalizeInvitations"]);
        t.row(&["ConsInvitation", "DBPL_Constructor", "normalizeInvitations"]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // header + rule + 3 rows
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "aligned: {widths:?}"
        );
        assert!(s.contains("InvitationRel"));
    }

    #[test]
    fn scrolling_window() {
        let t = sample();
        let s = t.render_window(1, 1, 40);
        assert!(s.contains("InvReceivRel"));
        assert!(!s.contains("ConsInvitation"));
        assert!(s.contains("1 of 3 rows shown"));
    }

    #[test]
    fn column_width_caps_with_ellipsis() {
        let mut t = Table::new(&["name"]);
        t.row(&["AVeryLongObjectNameThatWouldBlowTheColumn"]);
        let s = t.render_window(0, 10, 10);
        assert!(s.contains('…'));
        assert!(!s.contains("BlowTheColumn"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn offset_past_end_is_empty_window() {
        let t = sample();
        let s = t.render_window(10, 5, 40);
        assert_eq!(s.lines().count(), 2, "header + rule only");
    }
}
