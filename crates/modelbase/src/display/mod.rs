//! The Model Display & Interaction module (§3.3.1).
//!
//! The paper's SUN window tools, rendered to text:
//!
//! * [`textdag`] — "a text DAG browser allows the display and browsing
//!   of a tree-like CML structure at a dynamically defined depth and
//!   width" (fig 2-1);
//! * [`graphdag`] — "a graphical DAG browser offers a graphical
//!   representation of the same kinds of data structures" (the
//!   dependency graphs of figs 2-2 … 2-4), here as a layered layout;
//! * [`relational`] — "a relational display shows the properties of
//!   objects in tabular form with variable column width and scrolling";
//! * [`dot`] — Graphviz export of the same graphs, for users with a
//!   renderer.

pub mod dot;
pub mod graphdag;
pub mod relational;
pub mod textdag;

pub use graphdag::{Graph, GraphEdge};
