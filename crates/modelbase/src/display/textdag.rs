//! The text DAG browser (fig 2-1).
//!
//! Renders a tree-like structure from a focus node, expanding children
//! via a caller-supplied function, bounded by a dynamically chosen
//! depth and width. Nodes suppressed by the width bound are summarized
//! (`… 3 more`), and nodes repeated in the DAG are marked instead of
//! re-expanded.

use std::collections::HashSet;

/// Display bounds: "at a dynamically defined depth and width".
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum expansion depth (0 shows only the focus).
    pub depth: usize,
    /// Maximum children shown per node.
    pub width: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { depth: 3, width: 8 }
    }
}

/// Renders the tree rooted at `focus`. `children(name)` yields the
/// labels below a node, in display order.
pub fn render(
    focus: &str,
    bounds: Bounds,
    mut children: impl FnMut(&str) -> Vec<String>,
) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    #[allow(clippy::too_many_arguments)]
    fn walk(
        node: &str,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        depth: usize,
        bounds: Bounds,
        seen: &mut HashSet<String>,
        children: &mut impl FnMut(&str) -> Vec<String>,
        out: &mut String,
    ) {
        let connector = if is_root {
            ""
        } else if is_last {
            "`- "
        } else {
            "|- "
        };
        let repeated = !seen.insert(node.to_string());
        out.push_str(prefix);
        out.push_str(connector);
        out.push_str(node);
        if repeated {
            out.push_str(" (^)");
            out.push('\n');
            return;
        }
        out.push('\n');
        if depth == 0 {
            return;
        }
        let kids = children(node);
        let shown = kids.len().min(bounds.width);
        let hidden = kids.len() - shown;
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "|  " })
        };
        for (i, kid) in kids.iter().take(shown).enumerate() {
            let last = i + 1 == shown && hidden == 0;
            walk(
                kid,
                &child_prefix,
                last,
                false,
                depth - 1,
                bounds,
                seen,
                children,
                out,
            );
        }
        if hidden > 0 {
            out.push_str(&child_prefix);
            out.push_str(&format!("`- … {hidden} more\n"));
        }
    }
    walk(
        focus,
        "",
        true,
        true,
        bounds.depth,
        bounds,
        &mut seen,
        &mut children,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_children(name: &str) -> Vec<String> {
        match name {
            "Paper" => vec!["Invitation".into(), "Minutes".into()],
            "Invitation" => vec!["inv1".into(), "inv2".into()],
            _ => vec![],
        }
    }

    #[test]
    fn renders_fig_2_1_style_hierarchy() {
        let s = render("Paper", Bounds { depth: 2, width: 8 }, doc_children);
        let expected = "Paper\n\
                        |- Invitation\n\
                        |  |- inv1\n\
                        |  `- inv2\n\
                        `- Minutes\n";
        assert_eq!(s, expected);
    }

    #[test]
    fn depth_bound_cuts_expansion() {
        let s = render("Paper", Bounds { depth: 1, width: 8 }, doc_children);
        assert!(s.contains("Invitation"));
        assert!(!s.contains("inv1"));
    }

    #[test]
    fn width_bound_summarizes() {
        let many = |name: &str| -> Vec<String> {
            if name == "root" {
                (0..10).map(|i| format!("c{i}")).collect()
            } else {
                vec![]
            }
        };
        let s = render("root", Bounds { depth: 1, width: 3 }, many);
        assert!(s.contains("c2"));
        assert!(!s.contains("c3\n"));
        assert!(s.contains("… 7 more"));
    }

    #[test]
    fn repeated_nodes_marked_not_reexpanded() {
        // A DAG: both branches lead to Shared.
        let dag = |name: &str| -> Vec<String> {
            match name {
                "root" => vec!["a".into(), "b".into()],
                "a" | "b" => vec!["Shared".into()],
                "Shared" => vec!["leaf".into()],
                _ => vec![],
            }
        };
        let s = render("root", Bounds { depth: 4, width: 8 }, dag);
        assert_eq!(s.matches("Shared").count(), 2);
        assert_eq!(s.matches("Shared (^)").count(), 1);
        assert_eq!(s.matches("leaf").count(), 1, "expanded only once");
    }

    #[test]
    fn zero_depth_shows_focus_only() {
        let s = render("Paper", Bounds { depth: 0, width: 8 }, doc_children);
        assert_eq!(s, "Paper\n");
    }
}
