//! Error type of the inference engines.

use std::fmt;

/// Errors raised by parsing, stratification or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Textual rule syntax error.
    Parse(String),
    /// A predicate was used with inconsistent arities.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A head variable does not occur in any positive body literal.
    UnsafeRule(String),
    /// The program has recursion through negation.
    NotStratifiable(String),
    /// A negated subgoal was not ground at evaluation time (top-down).
    NonGroundNegation(String),
}

/// Convenient alias used throughout the crate.
pub type DatalogResult<T> = Result<T, DatalogError>;

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse(m) => write!(f, "parse error: {m}"),
            DatalogError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "predicate `{pred}` used with arity {found}, expected {expected}"
            ),
            DatalogError::UnsafeRule(m) => write!(f, "unsafe rule: {m}"),
            DatalogError::NotStratifiable(m) => {
                write!(f, "recursion through negation involving `{m}`")
            }
            DatalogError::NonGroundNegation(m) => {
                write!(f, "negated subgoal not ground: {m}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DatalogError::Parse("x".into()).to_string().contains('x'));
        let e = DatalogError::ArityMismatch {
            pred: "edge".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("edge"));
        assert!(e.to_string().contains('3'));
    }
}
