//! The predicate dependency graph of a program.
//!
//! Each rule `h :- b1, …, bn` contributes an edge `h → bi` per body
//! literal, flagged negative when the literal is negated. The graph is
//! the shared substrate of stratification (a program is stratifiable
//! iff no cycle passes through a negative edge) and of reachability
//! analyses such as dead-rule detection.

use crate::ast::Program;
use std::collections::{HashMap, HashSet, VecDeque};

/// A dependency edge from a rule head to one of its body predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Index of the body predicate in [`DepGraph::preds`].
    pub to: usize,
    /// Whether the body literal is negated.
    pub negated: bool,
}

/// The predicate dependency graph of a [`Program`].
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Every predicate mentioned by the program, in first-seen order.
    pub preds: Vec<String>,
    index: HashMap<String, usize>,
    /// Outgoing edges per predicate: `edges[h]` lists the body
    /// predicates the rules for `h` depend on.
    pub edges: Vec<Vec<DepEdge>>,
    /// Predicates that appear as a rule head (the IDB).
    pub defined: HashSet<usize>,
}

impl DepGraph {
    /// Builds the dependency graph of `program`.
    pub fn of(program: &Program) -> Self {
        let mut g = DepGraph::default();
        for r in &program.rules {
            let h = g.intern(&r.head.pred);
            g.defined.insert(h);
            for l in &r.body {
                let b = g.intern(&l.atom.pred);
                let edge = DepEdge {
                    to: b,
                    negated: l.negated,
                };
                if !g.edges[h].contains(&edge) {
                    g.edges[h].push(edge);
                }
            }
        }
        g
    }

    fn intern(&mut self, pred: &str) -> usize {
        if let Some(&i) = self.index.get(pred) {
            return i;
        }
        let i = self.preds.len();
        self.preds.push(pred.to_string());
        self.index.insert(pred.to_string(), i);
        self.edges.push(Vec::new());
        i
    }

    /// Index of `pred`, if the program mentions it.
    pub fn pred_index(&self, pred: &str) -> Option<usize> {
        self.index.get(pred).copied()
    }

    /// Name of the predicate at `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.preds[i]
    }

    /// The predicates reachable from `roots` by following dependency
    /// edges (a rule head reaches every predicate its body mentions).
    /// Roots unknown to the program are ignored.
    pub fn reachable_from<'a>(&self, roots: impl IntoIterator<Item = &'a str>) -> HashSet<usize> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<usize> = roots
            .into_iter()
            .filter_map(|r| self.pred_index(r))
            .collect();
        while let Some(p) = queue.pop_front() {
            if !seen.insert(p) {
                continue;
            }
            for e in &self.edges[p] {
                if !seen.contains(&e.to) {
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// A cycle through at least one negative edge, if any: the witness
    /// that the program is not stratifiable. The returned path lists
    /// predicate names starting and ending on the same predicate, e.g.
    /// `["win", "win"]` for `win(X) :- move(X, Y), not win(Y).`
    pub fn negative_cycle(&self) -> Option<Vec<String>> {
        // For every negative edge u → v, a path v ⇝ u closes a cycle
        // through that edge. BFS keeps the witness short.
        for u in 0..self.preds.len() {
            for e in &self.edges[u] {
                if !e.negated {
                    continue;
                }
                if let Some(path) = self.path(e.to, u) {
                    let mut cycle = vec![self.preds[u].clone()];
                    cycle.extend(path.into_iter().map(|i| self.preds[i].clone()));
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// BFS path from `from` to `to` (inclusive), if one exists.
    fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(p) = queue.pop_front() {
            if p == to {
                let mut path = vec![p];
                let mut cur = p;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for e in &self.edges[p] {
                if seen.insert(e.to) {
                    parent.insert(e.to, p);
                    queue.push_back(e.to);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_preds_and_edges() {
        let p = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        assert_eq!(g.preds, vec!["path", "edge"]);
        let path = g.pred_index("path").unwrap();
        let edge = g.pred_index("edge").unwrap();
        assert!(g.defined.contains(&path));
        assert!(!g.defined.contains(&edge));
        // Duplicate edges are collapsed.
        assert_eq!(g.edges[path].len(), 2);
    }

    #[test]
    fn reachability_follows_rule_bodies() {
        let p = Program::parse(
            "a(X) :- b(X).\n\
             b(X) :- c(X).\n\
             orphan(X) :- d(X).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        let reach = g.reachable_from(["a"]);
        assert!(reach.contains(&g.pred_index("c").unwrap()));
        assert!(!reach.contains(&g.pred_index("orphan").unwrap()));
        assert!(g.reachable_from(["nosuch"]).is_empty());
    }

    #[test]
    fn self_negation_yields_unit_cycle() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        let g = DepGraph::of(&p);
        assert_eq!(g.negative_cycle().unwrap(), vec!["win", "win"]);
    }

    #[test]
    fn mutual_negation_yields_witness_path() {
        let p = Program::parse(
            "p(X) :- base(X), not q(X).\n\
             q(X) :- base(X), not p(X).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        let cycle = g.negative_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3, "cycle {cycle:?} should pass through both");
    }

    #[test]
    fn stratified_negation_has_no_cycle() {
        let p = Program::parse(
            "reach(X) :- source(X).\n\
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        assert!(DepGraph::of(&p).negative_cycle().is_none());
    }
}
