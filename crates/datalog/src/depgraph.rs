//! The predicate dependency graph of a program.
//!
//! Each rule `h :- b1, …, bn` contributes an edge `h → bi` per body
//! literal, flagged negative when the literal is negated. The graph is
//! the shared substrate of stratification (a program is stratifiable
//! iff no cycle passes through a negative edge) and of reachability
//! analyses such as dead-rule detection.

use crate::ast::Program;
use std::collections::{HashMap, HashSet, VecDeque};

/// A dependency edge from a rule head to one of its body predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Index of the body predicate in [`DepGraph::preds`].
    pub to: usize,
    /// Whether the body literal is negated.
    pub negated: bool,
}

/// The predicate dependency graph of a [`Program`].
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Every predicate mentioned by the program, in first-seen order.
    pub preds: Vec<String>,
    index: HashMap<String, usize>,
    /// Outgoing edges per predicate: `edges[h]` lists the body
    /// predicates the rules for `h` depend on.
    pub edges: Vec<Vec<DepEdge>>,
    /// Predicates that appear as a rule head (the IDB).
    pub defined: HashSet<usize>,
}

/// The strongly connected components of a [`DepGraph`], in dependency
/// order: every edge leaving a component points to a component at a
/// *smaller* index, so walking `comps` front to back visits each
/// predicate's dependencies before the predicate itself — the order
/// bottom-up analyses (signature inference, cardinality estimation,
/// incremental fingerprinting) want.
#[derive(Debug, Clone, Default)]
pub struct Sccs {
    /// The components: each is a list of predicate indices into
    /// [`DepGraph::preds`], sorted ascending for determinism.
    pub comps: Vec<Vec<usize>>,
    /// `comp_of[p]` is the index into `comps` of predicate `p`'s
    /// component.
    pub comp_of: Vec<usize>,
}

impl Sccs {
    /// Whether component `c` is recursive: more than one predicate, or
    /// a single predicate with a self-edge in `g`.
    pub fn is_recursive(&self, g: &DepGraph, c: usize) -> bool {
        let comp = &self.comps[c];
        comp.len() > 1 || g.edges[comp[0]].iter().any(|e| e.to == comp[0])
    }
}

impl DepGraph {
    /// Builds the dependency graph of `program`.
    pub fn of(program: &Program) -> Self {
        Self::of_rules(program.rules.iter())
    }

    /// Builds the dependency graph from borrowed rules, without
    /// requiring an owning [`Program`] (callers joining a large stored
    /// base with a small delta avoid cloning every rule).
    pub fn of_rules<'a>(rules: impl IntoIterator<Item = &'a crate::ast::Rule>) -> Self {
        let mut g = DepGraph::default();
        g.extend_rules(rules);
        g
    }

    /// Folds more rules into the graph. The result is identical to
    /// building from the concatenated rule sequence, so an incremental
    /// caller can keep the graph of a large stored base and extend a
    /// clone with the small delta under admission.
    pub fn extend_rules<'a>(&mut self, rules: impl IntoIterator<Item = &'a crate::ast::Rule>) {
        for r in rules {
            let h = self.intern(&r.head.pred);
            self.defined.insert(h);
            for l in &r.body {
                let b = self.intern(&l.atom.pred);
                let edge = DepEdge {
                    to: b,
                    negated: l.negated,
                };
                if !self.edges[h].contains(&edge) {
                    self.edges[h].push(edge);
                }
            }
        }
    }

    fn intern(&mut self, pred: &str) -> usize {
        if let Some(&i) = self.index.get(pred) {
            return i;
        }
        let i = self.preds.len();
        self.preds.push(pred.to_string());
        self.index.insert(pred.to_string(), i);
        self.edges.push(Vec::new());
        i
    }

    /// Index of `pred`, if the program mentions it.
    pub fn pred_index(&self, pred: &str) -> Option<usize> {
        self.index.get(pred).copied()
    }

    /// Name of the predicate at `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.preds[i]
    }

    /// The predicates reachable from `roots` by following dependency
    /// edges (a rule head reaches every predicate its body mentions).
    /// Roots unknown to the program are ignored.
    pub fn reachable_from<'a>(&self, roots: impl IntoIterator<Item = &'a str>) -> HashSet<usize> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<usize> = roots
            .into_iter()
            .filter_map(|r| self.pred_index(r))
            .collect();
        while let Some(p) = queue.pop_front() {
            if !seen.insert(p) {
                continue;
            }
            for e in &self.edges[p] {
                if !seen.contains(&e.to) {
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// A cycle through at least one negative edge, if any: the witness
    /// that the program is not stratifiable. The returned path lists
    /// predicate names starting and ending on the same predicate, e.g.
    /// `["win", "win"]` for `win(X) :- move(X, Y), not win(Y).`
    pub fn negative_cycle(&self) -> Option<Vec<String>> {
        // For every negative edge u → v, a path v ⇝ u closes a cycle
        // through that edge. BFS keeps the witness short.
        for u in 0..self.preds.len() {
            for e in &self.edges[u] {
                if !e.negated {
                    continue;
                }
                if let Some(path) = self.path(e.to, u) {
                    let mut cycle = vec![self.preds[u].clone()];
                    cycle.extend(path.into_iter().map(|i| self.preds[i].clone()));
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// The strongly connected components, via iterative Tarjan (deep
    /// rule chains must not overflow the stack). Components come out
    /// in dependency order — see [`Sccs`].
    pub fn sccs(&self) -> Sccs {
        let n = self.preds.len();
        const UNSEEN: usize = usize::MAX;
        let mut index = vec![UNSEEN; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut comp_of = vec![0usize; n];
        let mut next_index = 0usize;
        // Explicit DFS frames: (node, next-edge cursor).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNSEEN {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(e) = self.edges[v].get(*cursor) {
                    *cursor += 1;
                    let w = e.to;
                    if index[w] == UNSEEN {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                    continue;
                }
                // v is finished: pop its frame, fold low into parent,
                // and emit a component if v is its root.
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    for &w in &comp {
                        comp_of[w] = comps.len();
                    }
                    comps.push(comp);
                }
            }
        }
        Sccs { comps, comp_of }
    }

    /// A cycle through at least one negative edge that stays inside
    /// the predicate set `within`, if any — the SCC-local form of
    /// [`DepGraph::negative_cycle`] (any cycle lies within one SCC, so
    /// per-component detection finds everything the global scan does).
    pub fn negative_cycle_within(&self, within: &HashSet<usize>) -> Option<Vec<String>> {
        let mut members: Vec<usize> = within.iter().copied().collect();
        members.sort_unstable();
        for u in members {
            for e in &self.edges[u] {
                if !e.negated || !within.contains(&e.to) {
                    continue;
                }
                if let Some(path) = self.path_within(e.to, u, within) {
                    let mut cycle = vec![self.preds[u].clone()];
                    cycle.extend(path.into_iter().map(|i| self.preds[i].clone()));
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// BFS path from `from` to `to` restricted to `within`.
    fn path_within(&self, from: usize, to: usize, within: &HashSet<usize>) -> Option<Vec<usize>> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(p) = queue.pop_front() {
            if p == to {
                let mut path = vec![p];
                let mut cur = p;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for e in &self.edges[p] {
                if within.contains(&e.to) && seen.insert(e.to) {
                    parent.insert(e.to, p);
                    queue.push_back(e.to);
                }
            }
        }
        None
    }

    /// BFS path from `from` to `to` (inclusive), if one exists.
    fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(p) = queue.pop_front() {
            if p == to {
                let mut path = vec![p];
                let mut cur = p;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for e in &self.edges[p] {
                if seen.insert(e.to) {
                    parent.insert(e.to, p);
                    queue.push_back(e.to);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_preds_and_edges() {
        let p = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        assert_eq!(g.preds, vec!["path", "edge"]);
        let path = g.pred_index("path").unwrap();
        let edge = g.pred_index("edge").unwrap();
        assert!(g.defined.contains(&path));
        assert!(!g.defined.contains(&edge));
        // Duplicate edges are collapsed.
        assert_eq!(g.edges[path].len(), 2);
    }

    #[test]
    fn reachability_follows_rule_bodies() {
        let p = Program::parse(
            "a(X) :- b(X).\n\
             b(X) :- c(X).\n\
             orphan(X) :- d(X).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        let reach = g.reachable_from(["a"]);
        assert!(reach.contains(&g.pred_index("c").unwrap()));
        assert!(!reach.contains(&g.pred_index("orphan").unwrap()));
        assert!(g.reachable_from(["nosuch"]).is_empty());
    }

    #[test]
    fn self_negation_yields_unit_cycle() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        let g = DepGraph::of(&p);
        assert_eq!(g.negative_cycle().unwrap(), vec!["win", "win"]);
    }

    #[test]
    fn mutual_negation_yields_witness_path() {
        let p = Program::parse(
            "p(X) :- base(X), not q(X).\n\
             q(X) :- base(X), not p(X).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        let cycle = g.negative_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3, "cycle {cycle:?} should pass through both");
    }

    #[test]
    fn sccs_come_out_in_dependency_order() {
        let p = Program::parse(
            "a(X) :- b(X), c(X).\n\
             b(X) :- a(X).\n\
             c(X) :- d(X).\n\
             d(X) :- base(X).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        let s = g.sccs();
        let a = g.pred_index("a").unwrap();
        let b = g.pred_index("b").unwrap();
        assert_eq!(s.comp_of[a], s.comp_of[b], "a and b are one cycle");
        assert!(s.is_recursive(&g, s.comp_of[a]));
        // Every edge points to a component at a smaller or equal index.
        for (u, edges) in g.edges.iter().enumerate() {
            for e in edges {
                assert!(
                    s.comp_of[e.to] <= s.comp_of[u],
                    "dependency order violated: {} -> {}",
                    g.name(u),
                    g.name(e.to)
                );
            }
        }
        // Self-recursion is recursive; a plain chain node is not.
        let d = g.pred_index("d").unwrap();
        assert!(!s.is_recursive(&g, s.comp_of[d]));
        let p2 = Program::parse("t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
        let g2 = DepGraph::of(&p2);
        let s2 = g2.sccs();
        assert!(s2.is_recursive(&g2, s2.comp_of[g2.pred_index("t").unwrap()]));
    }

    #[test]
    fn sccs_survive_deep_chains_without_overflow() {
        let mut src = String::from("p0(X) :- base(X).\n");
        for i in 1..20_000 {
            src.push_str(&format!("p{i}(X) :- p{}(X).\n", i - 1));
        }
        let g = DepGraph::of(&Program::parse(&src).unwrap());
        let s = g.sccs();
        assert_eq!(s.comps.len(), 20_001, "every chain node is its own SCC");
    }

    #[test]
    fn negative_cycle_within_matches_global_detection() {
        let p = Program::parse(
            "p(X) :- base(X), not q(X).\n\
             q(X) :- base(X), not p(X).\n\
             safe(X) :- base(X).",
        )
        .unwrap();
        let g = DepGraph::of(&p);
        let s = g.sccs();
        let pq = s.comp_of[g.pred_index("p").unwrap()];
        let within: HashSet<usize> = s.comps[pq].iter().copied().collect();
        let cycle = g.negative_cycle_within(&within).unwrap();
        assert_eq!(cycle.first(), cycle.last());
        let safe = s.comp_of[g.pred_index("safe").unwrap()];
        let within: HashSet<usize> = s.comps[safe].iter().copied().collect();
        assert!(g.negative_cycle_within(&within).is_none());
    }

    #[test]
    fn stratified_negation_has_no_cycle() {
        let p = Program::parse(
            "reach(X) :- source(X).\n\
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        assert!(DepGraph::of(&p).negative_cycle().is_none());
    }
}
