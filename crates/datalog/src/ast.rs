//! Rule language: terms, atoms, literals, rules, programs — and a
//! textual syntax.
//!
//! ```text
//! path(X, Y) :- edge(X, Y).
//! path(X, Z) :- edge(X, Y), path(Y, Z).
//! unmapped(X) :- object(X), not mapped(X).
//! ```
//!
//! Identifiers starting with an upper-case letter (or `_`) are
//! variables; others are symbol constants; integer literals and
//! double-quoted strings are constants too. A program is a sequence of
//! rules and facts (rules with empty bodies), each terminated by `.`.

use crate::error::{DatalogError, DatalogResult};
use std::fmt;

/// A constant value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A symbolic constant.
    Sym(String),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// Symbol constructor.
    pub fn sym(s: impl Into<String>) -> Value {
        Value::Sym(s.into())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Variable constructor.
    pub fn var(s: impl Into<String>) -> Term {
        Term::Var(s.into())
    }

    /// Symbol-constant constructor.
    pub fn sym(s: impl Into<String>) -> Term {
        Term::Const(Value::Sym(s.into()))
    }

    /// Integer-constant constructor.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom `pred(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Constructor.
    pub fn new(pred: impl Into<String>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// Variables occurring in the atom, in order, with duplicates.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(|t| match t {
            Term::Var(v) => Some(v.as_str()),
            Term::Const(_) => None,
        })
    }

    /// True if no argument is a variable.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| matches!(t, Term::Const(_)))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: an atom, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// The atom.
    pub atom: Atom,
    /// True for `not atom`.
    pub negated: bool,
}

impl Literal {
    /// Positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            atom,
            negated: false,
        }
    }

    /// Negative literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            atom,
            negated: true,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "not ")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A rule `head :- body.`; an empty body makes it a fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Constructor.
    pub fn new(head: Atom, body: Vec<Literal>) -> Rule {
        Rule { head, body }
    }

    /// Safety: every head variable and every variable in a negated
    /// literal must occur in some positive body literal.
    pub fn check_safety(&self) -> DatalogResult<()> {
        let positive_vars: Vec<&str> = self
            .body
            .iter()
            .filter(|l| !l.negated)
            .flat_map(|l| l.atom.vars())
            .collect();
        for v in self.head.vars() {
            if !positive_vars.contains(&v) {
                return Err(DatalogError::UnsafeRule(format!(
                    "variable `{v}` in the head of `{p}` occurs in no positive \
                     body literal of `{self}`",
                    p = self.head.pred
                )));
            }
        }
        for lit in self.body.iter().filter(|l| l.negated) {
            for v in lit.atom.vars() {
                if !positive_vars.contains(&v) {
                    return Err(DatalogError::UnsafeRule(format!(
                        "variable `{v}` under negation in a rule for `{p}` \
                         occurs in no positive body literal of `{self}`",
                        p = self.head.pred
                    )));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A datalog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Parses a textual program.
    pub fn parse(src: &str) -> DatalogResult<Program> {
        let program = Self::parse_unchecked(src)?;
        program.validate()?;
        Ok(program)
    }

    /// Parses without running [`Program::validate`]: the linter wants
    /// the syntax tree of an unsafe or arity-inconsistent program so it
    /// can report *all* problems as diagnostics, not just the first.
    pub fn parse_unchecked(src: &str) -> DatalogResult<Program> {
        parse_program(src)
    }

    /// Safety check over all rules plus arity consistency.
    pub fn validate(&self) -> DatalogResult<()> {
        let mut arities: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for rule in &self.rules {
            rule.check_safety()?;
            for atom in std::iter::once(&rule.head).chain(self.body_atoms(rule)) {
                match arities.get(atom.pred.as_str()) {
                    Some(&n) if n != atom.args.len() => {
                        return Err(DatalogError::ArityMismatch {
                            pred: atom.pred.clone(),
                            expected: n,
                            found: atom.args.len(),
                        })
                    }
                    _ => {
                        arities.insert(&atom.pred, atom.args.len());
                    }
                }
            }
        }
        Ok(())
    }

    fn body_atoms<'a>(&self, rule: &'a Rule) -> impl Iterator<Item = &'a Atom> {
        rule.body.iter().map(|l| &l.atom)
    }

    /// Predicates defined by rule heads (the intensional predicates).
    pub fn idb_preds(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.pred.as_str()) {
                out.push(&r.head.pred);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct P<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> P<'a> {
    fn err(&self, msg: &str) -> DatalogError {
        DatalogError::Parse(format!("{msg} at byte {} of `{}`", self.pos, self.src))
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
                self.pos += 1;
            }
            // % line comments
            if self.pos < self.chars.len() && self.chars[self.pos] == '%' {
                while self.pos < self.chars.len() && self.chars[self.pos] != '\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        let cs: Vec<char> = s.chars().collect();
        if self.chars[self.pos..].starts_with(&cs) {
            self.pos += cs.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> DatalogResult<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.chars.len()
            && (self.chars[self.pos].is_ascii_alphanumeric() || self.chars[self.pos] == '_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected identifier"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn term(&mut self) -> DatalogResult<Term> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some('"') => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.chars.len() && self.chars[self.pos] != '"' {
                    self.pos += 1;
                }
                if self.pos == self.chars.len() {
                    return Err(self.err("unterminated string"));
                }
                let s: String = self.chars[start..self.pos].iter().collect();
                self.pos += 1;
                Ok(Term::sym(s))
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let s: String = self.chars[start..self.pos].iter().collect();
                s.parse::<i64>()
                    .map(Term::int)
                    .map_err(|_| self.err("bad integer"))
            }
            Some(c) if c.is_ascii_alphabetic() || *c == '_' => {
                let id = self.ident()?;
                let first = id.chars().next().expect("nonempty ident");
                if first.is_ascii_uppercase() || first == '_' {
                    Ok(Term::var(id))
                } else {
                    Ok(Term::sym(id))
                }
            }
            _ => Err(self.err("expected term")),
        }
    }

    fn atom(&mut self) -> DatalogResult<Atom> {
        let pred = self.ident()?;
        if !self.eat('(') {
            return Err(self.err("expected `(`"));
        }
        let mut args = Vec::new();
        if !self.eat(')') {
            loop {
                args.push(self.term()?);
                if self.eat(')') {
                    break;
                }
                if !self.eat(',') {
                    return Err(self.err("expected `,` or `)`"));
                }
            }
        }
        Ok(Atom { pred, args })
    }

    fn literal(&mut self) -> DatalogResult<Literal> {
        self.skip_ws();
        if self.eat_str("not ") || self.eat_str("not\t") {
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    fn rule(&mut self) -> DatalogResult<Rule> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.eat_str(":-") {
            loop {
                body.push(self.literal()?);
                if !self.eat(',') {
                    break;
                }
            }
        }
        if !self.eat('.') {
            return Err(self.err("expected `.`"));
        }
        Ok(Rule { head, body })
    }
}

fn parse_program(src: &str) -> DatalogResult<Program> {
    let mut p = P {
        chars: src.chars().collect(),
        pos: 0,
        src,
    };
    let mut rules = Vec::new();
    loop {
        p.skip_ws();
        if p.pos >= p.chars.len() {
            break;
        }
        rules.push(p.rule()?);
    }
    Ok(Program { rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let p = Program::parse(
            "edge(a, b).\n\
             edge(b, c).\n\
             % transitive closure\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert!(p.rules[0].body.is_empty());
        assert_eq!(p.rules[3].body.len(), 2);
        assert_eq!(p.idb_preds(), vec!["edge", "path"]);
    }

    #[test]
    fn variables_vs_constants() {
        let p = Program::parse("q(X, abc, 42, \"Quoted Name\", _G) :- r(X, _G).").unwrap();
        let args = &p.rules[0].head.args;
        assert_eq!(args[0], Term::var("X"));
        assert_eq!(args[1], Term::sym("abc"));
        assert_eq!(args[2], Term::int(42));
        assert_eq!(args[3], Term::sym("Quoted Name"));
        assert_eq!(args[4], Term::var("_G"));
    }

    #[test]
    fn negation_parses() {
        let p = Program::parse("u(X) :- obj(X), not mapped(X).").unwrap();
        assert!(p.rules[0].body[1].negated);
    }

    #[test]
    fn unsafe_head_variable_rejected() {
        assert!(matches!(
            Program::parse("q(X, Y) :- r(X)."),
            Err(DatalogError::UnsafeRule(_))
        ));
    }

    #[test]
    fn unsafe_rule_error_names_variable_and_head_predicate() {
        let err = Program::parse("q(X, Y) :- r(X).").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("variable `Y`"), "got: {msg}");
        assert!(msg.contains("head of `q`"), "got: {msg}");
        let err = Program::parse("q(X) :- r(X), not s(Y).").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("variable `Y`"), "got: {msg}");
        assert!(msg.contains("rule for `q`"), "got: {msg}");
    }

    #[test]
    fn unsafe_negated_variable_rejected() {
        assert!(matches!(
            Program::parse("q(X) :- r(X), not s(Y)."),
            Err(DatalogError::UnsafeRule(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(matches!(
            Program::parse("p(a). p(a, b)."),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn syntax_errors() {
        assert!(Program::parse("p(a)").is_err(), "missing dot");
        assert!(Program::parse("p(.").is_err());
        assert!(Program::parse("p(\"unterminated).").is_err());
        assert!(Program::parse("(a).").is_err());
        assert!(Program::parse("p(a) :- .").is_err());
    }

    #[test]
    fn zero_arity_atoms() {
        let p = Program::parse("flag() :- cond(a).\ncond(a).").unwrap();
        assert_eq!(p.rules[0].head.args.len(), 0);
    }

    #[test]
    fn display_reparses() {
        let src = "path(X, Z) :- edge(X, Y), path(Y, Z), not blocked(X).";
        let p1 = Program::parse(src).unwrap();
        let printed = p1.rules[0].to_string();
        let p2 = Program::parse(&printed).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn negative_integers() {
        let p = Program::parse("p(-7).").unwrap();
        assert_eq!(p.rules[0].head.args[0], Term::int(-7));
    }
}
