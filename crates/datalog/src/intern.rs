//! String interning: `Symbol`s for predicate names and symbolic
//! constants, and `IVal` — the interned, `Copy` form of [`Value`] that
//! relations store and the join cores compare.
//!
//! The paper's object processor "understands the knowledge base as a
//! deductive relational database; in this way, large sets of similarly
//! structured objects can be managed more efficiently" (§3.1). Set-
//! oriented processing lives or dies on cheap tuple comparison:
//! interning turns every string equality in the inner join loops into
//! a `u32` compare and every tuple hash into a few word hashes.
//!
//! The pool is process-global and append-only; interned strings are
//! leaked to give `Symbol::as_str` a `'static` lifetime. Memory is
//! bounded by the number of *distinct* names the process ever sees,
//! which for a KBMS workload is small compared to the fact sets.
//!
//! **Thread safety and scaling.** The pool is shared by every thread
//! in the process — in particular by the server's concurrent worker
//! threads, where many read sessions resolve symbols while a writer
//! interns new ones. The pool was a single `RwLock` and the second
//! contention chokepoint after the store lock (ISSUE 6); it is now
//! split in two:
//!
//! * **string → id** is striped across [`SHARD_COUNT`] shards, each its
//!   own `RwLock<HashMap>` keyed by string hash. Readers of different
//!   strings take different locks; `intern` of a *new* string write-
//!   locks only its shard.
//! * **id → string** is an append-only chunked table of atomic slots
//!   with doubling chunk sizes. `Symbol::as_str` is entirely lock-free:
//!   two `Acquire` loads, no guard, no serialization against interning
//!   threads. Slots are written exactly once (`Release`) before the id
//!   escapes the interning thread, so any thread legitimately holding a
//!   `Symbol` finds its slot published.
//!
//! Symbols are plain `u32`s drawn from a global counter and the
//! interned strings are `'static`, so once obtained they are freely
//! sendable across threads. A panic while holding a shard guard
//! poisons only that shard; since the pool is append-only it can never
//! be observed in a torn state, so poisoning is deliberately ignored
//! rather than propagated.

use crate::ast::Value;
use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned string: predicate name or symbolic constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// Number of string→id shards. A power of two so the shard pick is a
/// mask; 16 is far beyond the server's worker parallelism for writes.
const SHARD_COUNT: usize = 16;

/// log2 of the first chunk's capacity (1024 slots). Chunk `c` holds
/// `1024 << c` slots, so 23 chunks cover the full `u32` id space.
const BASE_BITS: u32 = 10;
/// Number of chunk slots in the id→string table.
const CHUNK_COUNT: usize = 23;

type Shard = RwLock<HashMap<&'static str, u32>>;

struct Pool {
    shards: [Shard; SHARD_COUNT],
    hasher: RandomState,
    next_id: AtomicU32,
    /// Chunk `c` is null until allocated, then points at the first of
    /// `1024 << c` slots; each slot is null until its string (a boxed
    /// `&'static str`, leaked) is published with `Release`.
    chunks: [AtomicPtr<AtomicPtr<&'static str>>; CHUNK_COUNT],
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        #[allow(clippy::declare_interior_mutable_const)]
        const NULL_CHUNK: AtomicPtr<AtomicPtr<&'static str>> = AtomicPtr::new(ptr::null_mut());
        Pool {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hasher: RandomState::new(),
            next_id: AtomicU32::new(0),
            chunks: [NULL_CHUNK; CHUNK_COUNT],
        }
    })
}

/// Splits an id into (chunk index, offset within chunk).
#[inline]
fn locate(id: u32) -> (usize, usize) {
    let adjusted = id as u64 + (1 << BASE_BITS);
    let chunk = (63 - adjusted.leading_zeros()) as usize - BASE_BITS as usize;
    let offset = (adjusted - (1u64 << (chunk as u32 + BASE_BITS))) as usize;
    (chunk, offset)
}

/// Capacity of chunk `c`.
#[inline]
fn chunk_len(chunk: usize) -> usize {
    1usize << (chunk as u32 + BASE_BITS)
}

impl Pool {
    fn shard(&self, s: &str) -> &Shard {
        let h = self.hasher.hash_one(s) as usize;
        &self.shards[h & (SHARD_COUNT - 1)]
    }

    /// Returns the chunk base pointer, allocating the chunk on first
    /// use. Concurrent allocators race on a CAS; the loser frees its
    /// allocation.
    fn chunk(&self, chunk: usize) -> *mut AtomicPtr<&'static str> {
        let slot = &self.chunks[chunk];
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            return existing;
        }
        let len = chunk_len(chunk);
        let fresh: Box<[AtomicPtr<&'static str>]> =
            (0..len).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        let fresh = Box::into_raw(fresh) as *mut AtomicPtr<&'static str>;
        match slot.compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => fresh,
            Err(winner) => {
                // SAFETY: `fresh` came from `Box::into_raw` above with
                // exactly `len` elements and lost the race unpublished,
                // so reconstructing and dropping it is sound.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(fresh, len)));
                }
                winner
            }
        }
    }

    /// Publishes `id → s` in the lock-free table. Called once per id,
    /// under the owning shard's write guard, before the id is handed to
    /// any caller.
    fn publish(&self, id: u32, s: &'static str) {
        let (chunk, offset) = locate(id);
        let base = self.chunk(chunk);
        let boxed = Box::into_raw(Box::new(s));
        // SAFETY: `offset < chunk_len(chunk)` by construction of
        // `locate`, and `base` points at a live chunk of that length
        // (chunks are never freed once published).
        let cell = unsafe { &*base.add(offset) };
        cell.store(boxed, Ordering::Release);
    }

    /// Lock-free id → string resolution.
    fn resolve(&self, id: u32) -> &'static str {
        let (chunk, offset) = locate(id);
        let base = self.chunks[chunk].load(Ordering::Acquire);
        assert!(
            !base.is_null(),
            "symbol {id} resolved before its chunk was published"
        );
        // SAFETY: a non-null chunk pointer is valid for its full length
        // forever, and `offset` is in bounds (see `locate`).
        let cell = unsafe { &*base.add(offset) };
        let p = cell.load(Ordering::Acquire);
        assert!(!p.is_null(), "symbol {id} resolved before it was published");
        // SAFETY: a non-null slot was written exactly once by `publish`
        // from `Box::into_raw` and never touched again; the `Release`
        // store / `Acquire` load pair makes the boxed `&'static str`
        // visible.
        unsafe { *p }
    }
}

/// Interns `s`, returning its canonical [`Symbol`]. Safe to call from
/// any thread; the common already-interned case takes only the shared
/// read guard of one shard, and distinct strings usually hit distinct
/// shards.
pub fn intern(s: &str) -> Symbol {
    let pool = pool();
    let shard = pool.shard(s);
    if let Some(&id) = shard.read().unwrap_or_else(|e| e.into_inner()).get(s) {
        return Symbol(id);
    }
    let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
    // Re-check under the write guard: another thread may have interned
    // `s` between our read and write acquisitions.
    if let Some(&id) = map.get(s) {
        return Symbol(id);
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = pool.next_id.fetch_add(1, Ordering::Relaxed);
    assert!(id != u32::MAX, "fewer than 2^32 symbols");
    // Publish id→str before the map insert makes the id discoverable,
    // so every path that can learn the id finds the slot filled.
    pool.publish(id, leaked);
    map.insert(leaked, id);
    Symbol(id)
}

/// Looks `s` up without interning it. `None` means no tuple anywhere
/// can contain `s` — useful for negative membership tests.
pub fn lookup(s: &str) -> Option<Symbol> {
    let pool = pool();
    pool.shard(s)
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(s)
        .copied()
        .map(Symbol)
}

impl Symbol {
    /// The interned string. Lock-free: never serializes against
    /// concurrent interning.
    pub fn as_str(self) -> &'static str {
        pool().resolve(self.0)
    }

    /// The raw pool id.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Interned value: the `Copy` twin of [`Value`] used inside relations
/// and join cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IVal {
    /// An interned symbolic constant.
    Sym(Symbol),
    /// An integer constant.
    Int(i64),
}

impl IVal {
    /// Interns a [`Value`].
    pub fn from_value(v: &Value) -> IVal {
        match v {
            Value::Sym(s) => IVal::Sym(intern(s)),
            Value::Int(i) => IVal::Int(*i),
        }
    }

    /// The interned form of `v` if it is already known; `None` for a
    /// never-seen symbol (which therefore matches no stored tuple).
    pub fn from_value_if_known(v: &Value) -> Option<IVal> {
        match v {
            Value::Sym(s) => lookup(s).map(IVal::Sym),
            Value::Int(i) => Some(IVal::Int(*i)),
        }
    }

    /// Decodes back to a [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            IVal::Sym(s) => Value::Sym(s.as_str().to_string()),
            IVal::Int(i) => Value::Int(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("edge");
        let b = intern("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
        assert_ne!(intern("node"), a);
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(lookup("never-seen-symbol-xyzzy").is_none());
        let s = intern("now-seen-xyzzy");
        assert_eq!(lookup("now-seen-xyzzy"), Some(s));
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        let (c, o) = locate(u32::MAX - 1);
        assert!(c < CHUNK_COUNT);
        assert!(o < chunk_len(c));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        // Server worker threads intern overlapping and distinct names
        // concurrently; every thread must agree on the canonical
        // symbol, and every symbol must round-trip through as_str.
        let shared: Vec<String> = (0..32).map(|i| format!("mt-shared-{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..50 {
                        for s in &shared {
                            seen.push((s.clone(), intern(s)));
                        }
                        let private = format!("mt-private-{t}-{round}");
                        let sym = intern(&private);
                        assert_eq!(sym.as_str(), private);
                        assert_eq!(lookup(&private), Some(sym));
                    }
                    seen
                })
            })
            .collect();
        let mut canonical: HashMap<String, Symbol> = HashMap::new();
        for h in handles {
            for (s, sym) in h.join().expect("interner thread") {
                assert_eq!(sym.as_str(), s);
                match canonical.get(&s) {
                    None => {
                        canonical.insert(s, sym);
                    }
                    Some(&prev) => assert_eq!(prev, sym, "two canonical symbols for `{s}`"),
                }
            }
        }
    }

    #[test]
    fn racing_ival_interns_agree_on_one_symbol() {
        // ISSUE 6 satellite: a symbol must never get two IVals, even
        // when many threads race to intern the same fresh string — the
        // sharded table's double-checked write path must collapse the
        // race to a single canonical id.
        for round in 0..10 {
            let name = format!("ival-race-{round}");
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let v = Value::sym(name.clone());
                    std::thread::spawn(move || IVal::from_value(&v))
                })
                .collect();
            let ivals: Vec<IVal> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for iv in &ivals {
                assert_eq!(*iv, ivals[0], "two IVals for `{name}`");
            }
            match ivals[0] {
                IVal::Sym(s) => assert_eq!(s.as_str(), name),
                IVal::Int(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn never_interned_symbol_probe_misses() {
        // Mirrors db.rs's probe_unknown_symbol_is_empty: a probe for a
        // symbol no thread ever interned must answer "no match" (None),
        // not allocate an id — otherwise every negative membership test
        // would grow the pool.
        let ghost = "sharded-ghost-never-interned";
        assert_eq!(lookup(ghost), None);
        assert_eq!(IVal::from_value_if_known(&Value::sym(ghost)), None);
        // Interning unrelated strings in parallel must not conjure it.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..64 {
                        intern(&format!("sharded-other-{t}-{i}"));
                        assert_eq!(lookup("sharded-ghost-never-interned"), None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lookup(ghost), None);
    }

    #[test]
    fn ival_roundtrips() {
        let v = Value::sym("maria");
        let iv = IVal::from_value(&v);
        assert_eq!(iv.to_value(), v);
        let n = Value::Int(-7);
        assert_eq!(IVal::from_value(&n).to_value(), n);
        assert_eq!(
            IVal::from_value_if_known(&Value::Int(3)),
            Some(IVal::Int(3))
        );
    }
}
