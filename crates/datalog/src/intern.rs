//! String interning: `Symbol`s for predicate names and symbolic
//! constants, and `IVal` — the interned, `Copy` form of [`Value`] that
//! relations store and the join cores compare.
//!
//! The paper's object processor "understands the knowledge base as a
//! deductive relational database; in this way, large sets of similarly
//! structured objects can be managed more efficiently" (§3.1). Set-
//! oriented processing lives or dies on cheap tuple comparison:
//! interning turns every string equality in the inner join loops into
//! a `u32` compare and every tuple hash into a few word hashes.
//!
//! The pool is process-global and append-only; interned strings are
//! leaked to give `Symbol::as_str` a `'static` lifetime. Memory is
//! bounded by the number of *distinct* names the process ever sees,
//! which for a KBMS workload is small compared to the fact sets.
//!
//! **Thread safety.** The pool is shared by every thread in the
//! process — in particular by the server's concurrent worker threads,
//! where several read sessions resolve symbols while a writer interns
//! new ones. Reads (`lookup`, `Symbol::as_str`) take a shared
//! [`RwLock`] read guard, so concurrent readers never serialize
//! against each other; only `intern` of a *new* string takes the
//! write guard. Symbols are plain `u32`s and the interned strings are
//! `'static`, so once obtained they are freely sendable across
//! threads. A panic while holding the guard poisons the lock; since
//! the pool is append-only it can never be observed in a torn state,
//! so poisoning is deliberately ignored rather than propagated.

use crate::ast::Value;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An interned string: predicate name or symbolic constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Pool {
    by_str: HashMap<&'static str, u32>,
    strs: Vec<&'static str>,
}

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(Pool {
            by_str: HashMap::new(),
            strs: Vec::new(),
        })
    })
}

fn read_pool() -> RwLockReadGuard<'static, Pool> {
    pool().read().unwrap_or_else(|e| e.into_inner())
}

fn write_pool() -> RwLockWriteGuard<'static, Pool> {
    pool().write().unwrap_or_else(|e| e.into_inner())
}

/// Interns `s`, returning its canonical [`Symbol`]. Safe to call from
/// any thread; the common already-interned case takes only the shared
/// read guard.
pub fn intern(s: &str) -> Symbol {
    if let Some(&id) = read_pool().by_str.get(s) {
        return Symbol(id);
    }
    let mut p = write_pool();
    // Re-check under the write guard: another thread may have interned
    // `s` between our read and write acquisitions.
    if let Some(&id) = p.by_str.get(s) {
        return Symbol(id);
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = u32::try_from(p.strs.len()).expect("fewer than 2^32 symbols");
    p.strs.push(leaked);
    p.by_str.insert(leaked, id);
    Symbol(id)
}

/// Looks `s` up without interning it. `None` means no tuple anywhere
/// can contain `s` — useful for negative membership tests.
pub fn lookup(s: &str) -> Option<Symbol> {
    read_pool().by_str.get(s).copied().map(Symbol)
}

impl Symbol {
    /// The interned string.
    pub fn as_str(self) -> &'static str {
        read_pool().strs[self.0 as usize]
    }

    /// The raw pool id.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Interned value: the `Copy` twin of [`Value`] used inside relations
/// and join cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IVal {
    /// An interned symbolic constant.
    Sym(Symbol),
    /// An integer constant.
    Int(i64),
}

impl IVal {
    /// Interns a [`Value`].
    pub fn from_value(v: &Value) -> IVal {
        match v {
            Value::Sym(s) => IVal::Sym(intern(s)),
            Value::Int(i) => IVal::Int(*i),
        }
    }

    /// The interned form of `v` if it is already known; `None` for a
    /// never-seen symbol (which therefore matches no stored tuple).
    pub fn from_value_if_known(v: &Value) -> Option<IVal> {
        match v {
            Value::Sym(s) => lookup(s).map(IVal::Sym),
            Value::Int(i) => Some(IVal::Int(*i)),
        }
    }

    /// Decodes back to a [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            IVal::Sym(s) => Value::Sym(s.as_str().to_string()),
            IVal::Int(i) => Value::Int(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("edge");
        let b = intern("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
        assert_ne!(intern("node"), a);
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(lookup("never-seen-symbol-xyzzy").is_none());
        let s = intern("now-seen-xyzzy");
        assert_eq!(lookup("now-seen-xyzzy"), Some(s));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        // Server worker threads intern overlapping and distinct names
        // concurrently; every thread must agree on the canonical
        // symbol, and every symbol must round-trip through as_str.
        let shared: Vec<String> = (0..32).map(|i| format!("mt-shared-{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..50 {
                        for s in &shared {
                            seen.push((s.clone(), intern(s)));
                        }
                        let private = format!("mt-private-{t}-{round}");
                        let sym = intern(&private);
                        assert_eq!(sym.as_str(), private);
                        assert_eq!(lookup(&private), Some(sym));
                    }
                    seen
                })
            })
            .collect();
        let mut canonical: HashMap<String, Symbol> = HashMap::new();
        for h in handles {
            for (s, sym) in h.join().expect("interner thread") {
                assert_eq!(sym.as_str(), s);
                match canonical.get(&s) {
                    None => {
                        canonical.insert(s, sym);
                    }
                    Some(&prev) => assert_eq!(prev, sym, "two canonical symbols for `{s}`"),
                }
            }
        }
    }

    #[test]
    fn ival_roundtrips() {
        let v = Value::sym("maria");
        let iv = IVal::from_value(&v);
        assert_eq!(iv.to_value(), v);
        let n = Value::Int(-7);
        assert_eq!(IVal::from_value(&n).to_value(), n);
        assert_eq!(
            IVal::from_value_if_known(&Value::Int(3)),
            Some(IVal::Int(3))
        );
    }
}
