//! Stratification: layering a program so that negation is only applied
//! to fully computed predicates.
//!
//! A program is stratifiable iff its predicate dependency graph has no
//! cycle through a negative edge. The returned strata are evaluated in
//! order by the bottom-up engine; a negative cycle is reported as
//! [`DatalogError::NotStratifiable`].

use crate::ast::Program;
use crate::depgraph::DepGraph;
use crate::error::{DatalogError, DatalogResult};
use std::collections::HashMap;

/// The stratification result: for each IDB predicate its stratum, and
/// the rules grouped per stratum.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum index per predicate (EDB predicates get stratum 0).
    pub stratum_of: HashMap<String, usize>,
    /// For each stratum, the indices of the program's rules in it.
    pub rules_per_stratum: Vec<Vec<usize>>,
}

/// Computes a stratification, or an error if the program has recursion
/// through negation.
pub fn stratify(program: &Program) -> DatalogResult<Stratification> {
    let graph = DepGraph::of(program);
    let preds = &graph.preds;

    // Iteratively raise strata: head >= body (positive), head > body
    // (negative). Converges in at most |preds| rounds; one more round
    // of change means a negative cycle.
    let mut stratum: HashMap<String, usize> = preds.iter().map(|p| (p.clone(), 0)).collect();
    let max_rounds = preds.len() + 1;
    for round in 0..=max_rounds {
        let mut changed = false;
        for r in &program.rules {
            let head_s = stratum[&r.head.pred];
            let mut needed = head_s;
            for l in &r.body {
                let body_s = stratum[&l.atom.pred];
                let min = if l.negated { body_s + 1 } else { body_s };
                needed = needed.max(min);
            }
            if needed > head_s {
                stratum.insert(r.head.pred.clone(), needed);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Detect divergence: one round past |preds|, or any stratum
        // beyond |preds|, implies a cycle through a negative edge. The
        // dependency graph names the actual cycle as the witness.
        if round == max_rounds || stratum.values().any(|&s| s > preds.len()) {
            let culprit = graph
                .negative_cycle()
                .map(|cycle| cycle.join(" -> "))
                .unwrap_or_else(|| "?".to_string());
            return Err(DatalogError::NotStratifiable(culprit));
        }
    }

    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut rules_per_stratum = vec![Vec::new(); max_stratum + 1];
    for (i, r) in program.rules.iter().enumerate() {
        rules_per_stratum[stratum[&r.head.pred]].push(i);
    }
    Ok(Stratification {
        stratum_of: stratum,
        rules_per_stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_program_single_stratum() {
        let p = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.rules_per_stratum.len(), 1);
        assert_eq!(s.stratum_of["path"], 0);
        assert_eq!(s.stratum_of["edge"], 0);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let p = Program::parse(
            "reach(X) :- source(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of["reach"], 0);
        assert_eq!(s.stratum_of["unreached"], 1);
        assert_eq!(s.rules_per_stratum.len(), 2);
        assert_eq!(s.rules_per_stratum[1], vec![2]);
    }

    #[test]
    fn chained_negation_stacks_strata() {
        let p = Program::parse(
            "a(X) :- base(X).\n\
             b(X) :- base(X), not a(X).\n\
             c(X) :- base(X), not b(X).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of["a"], 0);
        assert_eq!(s.stratum_of["b"], 1);
        assert_eq!(s.stratum_of["c"], 2);
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        assert!(matches!(
            stratify(&p),
            Err(DatalogError::NotStratifiable(_))
        ));
    }

    #[test]
    fn negative_cycle_witness_in_error() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        let Err(DatalogError::NotStratifiable(witness)) = stratify(&p) else {
            panic!("expected NotStratifiable");
        };
        assert_eq!(witness, "win -> win");
    }

    #[test]
    fn mutual_negative_recursion_rejected() {
        let p = Program::parse(
            "p(X) :- base(X), not q(X).\n\
             q(X) :- base(X), not p(X).",
        )
        .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        let s = stratify(&p).unwrap();
        assert_eq!(s.rules_per_stratum.len(), 1);
        assert!(s.rules_per_stratum[0].is_empty());
    }
}
