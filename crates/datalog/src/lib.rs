#![warn(missing_docs)]

//! The **inference engines** of ConceptBase (paper §3.1).
//!
//! "The Inference Engines support various proof strategies for
//! question-answering on the KB … The inference engines may enhance
//! their performance by lemma generation." Two proof strategies are
//! provided over the same rule language:
//!
//! * [`seminaive`] — bottom-up, semi-naive fixpoint evaluation with
//!   stratified negation (the deductive-relational view of the object
//!   processor);
//! * [`topdown`] — goal-directed SLD resolution with *tabling*: the
//!   lemma generation the paper mentions, turning answers to subgoals
//!   into reusable lemmas and guaranteeing termination on recursive
//!   rules;
//! * [`magic`] — the magic-sets transformation, letting the bottom-up
//!   engine profit from query constants like the top-down one does.
//!
//! The rule language is classic datalog with negation: see [`ast`] for
//! the textual syntax.

pub mod ast;
pub mod db;
pub mod error;
pub mod magic;
pub mod seminaive;
pub mod stratify;
pub mod topdown;

pub use ast::{Atom, Literal, Program, Rule, Term, Value};
pub use db::Database;
pub use error::{DatalogError, DatalogResult};
