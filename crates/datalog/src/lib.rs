#![warn(missing_docs)]

//! The **inference engines** of ConceptBase (paper §3.1).
//!
//! "The Inference Engines support various proof strategies for
//! question-answering on the KB … The inference engines may enhance
//! their performance by lemma generation." Two proof strategies are
//! provided over the same rule language:
//!
//! * [`seminaive`] — bottom-up, semi-naive fixpoint evaluation with
//!   stratified negation (the deductive-relational view of the object
//!   processor);
//! * [`topdown`] — goal-directed SLD resolution with *tabling*: the
//!   lemma generation the paper mentions, turning answers to subgoals
//!   into reusable lemmas and guaranteeing termination on recursive
//!   rules;
//! * [`magic`] — the magic-sets transformation, letting the bottom-up
//!   engine profit from query constants like the top-down one does.
//!
//! The rule language is classic datalog with negation: see [`ast`] for
//! the textual syntax.
//!
//! # Storage and join evaluation
//!
//! All engines share one storage layer ([`db`]): predicate names and
//! symbolic constants are interned into a global pool ([`intern`]), so
//! relations hold rows of `Copy` ids rather than strings, and every
//! relation carries **secondary hash indexes keyed on binding
//! patterns** — bitmasks of bound argument positions. An index is
//! built lazily the first time a join probes its pattern and is
//! maintained incrementally on insert. The engines exploit it
//! uniformly:
//!
//! * [`seminaive`] compiles each rule to slot form, derives the
//!   binding mask of every body literal from the join order, and
//!   probes instead of scanning — delta relations included
//!   ([`seminaive::evaluate_scan`] keeps the pre-index core for
//!   ablation);
//! * [`topdown`] resolves EDB subgoals through [`Database::probe`]
//!   with the goal's bound arguments as the pattern;
//! * [`magic`] evaluates the transformed program on the indexed
//!   bottom-up engine and probes the answer relation with the query
//!   constants.
//!
//! [`seminaive::EvalStats`] reports `index_probes` and
//! `tuples_scanned` so benches can quantify the effect.
//!
//! # Incremental view maintenance
//!
//! [`ivm`] keeps a program's full model materialized under TELL/UNTELL
//! churn instead of recomputing it per query: counting maintenance for
//! non-recursive strata, delete-and-rederive (DRed) for recursive
//! ones, with per-tuple support counts at the extensional base so
//! re-telling and untelling facts compose idempotently.

pub mod ast;
pub mod db;
pub mod depgraph;
pub mod error;
pub mod intern;
pub mod ivm;
pub mod magic;
pub mod seminaive;
pub mod stratify;
pub mod topdown;

pub use ast::{Atom, Literal, Program, Rule, Term, Value};
pub use db::Database;
pub use error::{DatalogError, DatalogResult};
pub use ivm::MaterializedView;
