//! The magic-sets transformation.
//!
//! Rewrites a positive datalog program so that bottom-up evaluation
//! only derives facts *relevant to a given query* — recovering the
//! goal-directedness of top-down evaluation while keeping set-oriented
//! execution. Used by the E-2 bench to compare the three strategies.
//!
//! The implementation uses left-to-right sideways information passing
//! and supports positive programs only (negation would require the
//! stratified variant, which the paper's setting does not need).

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::db::Database;
use crate::error::{DatalogError, DatalogResult};
use crate::seminaive;
use std::collections::{HashSet, VecDeque};

/// An adornment: for each argument, is it bound (`true`) or free?
type Adornment = Vec<bool>;

fn adorn_suffix(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

fn magic_pred(pred: &str, a: &Adornment) -> String {
    format!("magic_{pred}_{}", adorn_suffix(a))
}

fn adorned_pred(pred: &str, a: &Adornment) -> String {
    format!("{pred}_{}", adorn_suffix(a))
}

/// The result of the transformation: a rewritten program plus the seed
/// magic fact and the adorned name of the query predicate.
#[derive(Debug, Clone)]
pub struct MagicProgram {
    /// The transformed rules (adorned + magic rules).
    pub program: Program,
    /// Seed fact to insert into the EDB before evaluation.
    pub seed: Atom,
    /// The adorned predicate holding the query's answers.
    pub answer_pred: String,
}

/// Applies the magic-sets transformation of `program` for `query`.
/// Arguments of `query` that are constants are bound; variables free.
pub fn magic_transform(program: &Program, query: &Atom) -> DatalogResult<MagicProgram> {
    program.validate()?;
    if program
        .rules
        .iter()
        .any(|r| r.body.iter().any(|l| l.negated))
    {
        return Err(DatalogError::NotStratifiable(
            "magic transformation supports positive programs only".into(),
        ));
    }
    let idb: HashSet<&str> = program.idb_preds().into_iter().collect();

    let query_adornment: Adornment = query
        .args
        .iter()
        .map(|t| matches!(t, Term::Const(_)))
        .collect();

    let mut out_rules: Vec<Rule> = Vec::new();
    let mut todo: VecDeque<(String, Adornment)> = VecDeque::new();
    let mut done: HashSet<(String, Adornment)> = HashSet::new();
    todo.push_back((query.pred.clone(), query_adornment.clone()));

    while let Some((pred, adornment)) = todo.pop_front() {
        if !done.insert((pred.clone(), adornment.clone())) {
            continue;
        }
        for rule in program.rules.iter().filter(|r| r.head.pred == pred) {
            // Bound variables: those in bound head positions.
            let mut bound_vars: HashSet<String> = HashSet::new();
            for (arg, &b) in rule.head.args.iter().zip(&adornment) {
                if b {
                    if let Term::Var(v) = arg {
                        bound_vars.insert(v.clone());
                    }
                }
            }
            let magic_head_args: Vec<Term> = rule
                .head
                .args
                .iter()
                .zip(&adornment)
                .filter(|(_, &b)| b)
                .map(|(t, _)| t.clone())
                .collect();
            let magic_lit = Literal::pos(Atom::new(
                magic_pred(&pred, &adornment),
                magic_head_args.clone(),
            ));

            let mut new_body = vec![magic_lit.clone()];
            for lit in &rule.body {
                let atom = &lit.atom;
                if idb.contains(atom.pred.as_str()) {
                    // Adornment of this subgoal under current bindings.
                    let sub_adornment: Adornment = atom
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound_vars.contains(v),
                        })
                        .collect();
                    // Magic rule: magic_sub(bound args) :- magic_head, prefix.
                    let magic_sub_args: Vec<Term> = atom
                        .args
                        .iter()
                        .zip(&sub_adornment)
                        .filter(|(_, &b)| b)
                        .map(|(t, _)| t.clone())
                        .collect();
                    out_rules.push(Rule::new(
                        Atom::new(magic_pred(&atom.pred, &sub_adornment), magic_sub_args),
                        new_body.clone(),
                    ));
                    todo.push_back((atom.pred.clone(), sub_adornment.clone()));
                    // The subgoal itself becomes adorned.
                    new_body.push(Literal::pos(Atom::new(
                        adorned_pred(&atom.pred, &sub_adornment),
                        atom.args.clone(),
                    )));
                } else {
                    new_body.push(lit.clone());
                }
                // All subgoal variables become bound afterwards.
                for v in atom.vars() {
                    bound_vars.insert(v.to_string());
                }
            }
            out_rules.push(Rule::new(
                Atom::new(adorned_pred(&pred, &adornment), rule.head.args.clone()),
                new_body,
            ));
        }
    }

    let seed_args: Vec<Term> = query
        .args
        .iter()
        .filter(|t| matches!(t, Term::Const(_)))
        .cloned()
        .collect();
    Ok(MagicProgram {
        program: Program { rules: out_rules },
        seed: Atom::new(magic_pred(&query.pred, &query_adornment), seed_args),
        answer_pred: adorned_pred(&query.pred, &query_adornment),
    })
}

/// Evaluates `query` against `program` + `edb` via magic sets; returns
/// the matching tuples (full argument lists), sorted.
pub fn magic_evaluate(
    program: &Program,
    edb: &Database,
    query: &Atom,
) -> DatalogResult<Vec<Vec<crate::ast::Value>>> {
    magic_evaluate_stats(program, edb, query).map(|(answers, _)| answers)
}

/// Like [`magic_evaluate`], also returning the bottom-up engine's
/// [`EvalStats`](seminaive::EvalStats) for the transformed program.
/// The answer relation is filtered with an indexed point probe on the
/// query's bound positions rather than a scan.
pub fn magic_evaluate_stats(
    program: &Program,
    edb: &Database,
    query: &Atom,
) -> DatalogResult<(Vec<Vec<crate::ast::Value>>, seminaive::EvalStats)> {
    let magic = magic_transform(program, query)?;
    let mut db = edb.clone();
    db.insert_atom(&magic.seed)?;
    let (model, stats) = seminaive::evaluate(&magic.program, &db)?;
    let pattern: Vec<Option<crate::ast::Value>> = query
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(_) => None,
        })
        .collect();
    let mut out: Vec<Vec<crate::ast::Value>> = model.probe(&magic.answer_pred, &pattern).collect();
    out.sort();
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Value;

    fn chain(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        db
    }

    const TC: &str = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).";

    #[test]
    fn bound_free_query_matches_direct_eval() {
        let p = Program::parse(TC).unwrap();
        let db = chain(10);
        let q = Atom::new("path", vec![Term::int(7), Term::var("Y")]);
        let magic = magic_evaluate(&p, &db, &q).unwrap();
        let direct: Vec<Vec<Value>> = seminaive::evaluate_pred(&p, &db, "path")
            .unwrap()
            .into_iter()
            .filter(|t| t[0] == Value::Int(7))
            .collect();
        assert_eq!(magic, direct);
        assert_eq!(magic.len(), 3); // 7→8, 7→9, 7→10
    }

    #[test]
    fn magic_derives_fewer_facts() {
        let p = Program::parse(TC).unwrap();
        let db = chain(50);
        let q = Atom::new("path", vec![Term::int(45), Term::var("Y")]);
        let magic = magic_transform(&p, &q).unwrap();
        let mut seeded = db.clone();
        seeded.insert_atom(&magic.seed).unwrap();
        let (magic_model, _) = seminaive::evaluate(&magic.program, &seeded).unwrap();
        let (full_model, _) = seminaive::evaluate(&p, &db).unwrap();
        let magic_paths = magic_model.count(&magic.answer_pred);
        let full_paths = full_model.count("path");
        assert!(
            magic_paths * 10 < full_paths,
            "magic {magic_paths} vs full {full_paths}"
        );
    }

    #[test]
    fn fully_bound_query() {
        let p = Program::parse(TC).unwrap();
        let db = chain(10);
        let yes = Atom::new("path", vec![Term::int(2), Term::int(9)]);
        let no = Atom::new("path", vec![Term::int(9), Term::int(2)]);
        assert_eq!(magic_evaluate(&p, &db, &yes).unwrap().len(), 1);
        assert_eq!(magic_evaluate(&p, &db, &no).unwrap().len(), 0);
    }

    #[test]
    fn fully_free_query_degrades_to_full_eval() {
        let p = Program::parse(TC).unwrap();
        let db = chain(6);
        let q = Atom::new("path", vec![Term::var("X"), Term::var("Y")]);
        let magic = magic_evaluate(&p, &db, &q).unwrap();
        let direct = seminaive::evaluate_pred(&p, &db, "path").unwrap();
        assert_eq!(magic, direct);
    }

    #[test]
    fn negation_rejected() {
        let p = Program::parse("q(X) :- node(X), not bad(X).").unwrap();
        let q = Atom::new("q", vec![Term::var("X")]);
        assert!(magic_transform(&p, &q).is_err());
    }

    #[test]
    fn same_generation_bound_query() {
        let p = Program::parse(
            "sg(X, X) :- person(X).\n\
             sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).",
        )
        .unwrap();
        let mut db = Database::new();
        for x in ["ann", "bob", "cal"] {
            db.insert("person", vec![Value::sym(x)]).unwrap();
        }
        db.insert("parent", vec![Value::sym("ann"), Value::sym("cal")])
            .unwrap();
        db.insert("parent", vec![Value::sym("bob"), Value::sym("cal")])
            .unwrap();
        let q = Atom::new("sg", vec![Term::sym("ann"), Term::var("Y")]);
        let answers = magic_evaluate(&p, &db, &q).unwrap();
        let ys: Vec<String> = answers.iter().map(|t| t[1].to_string()).collect();
        assert!(ys.contains(&"ann".to_string()));
        assert!(ys.contains(&"bob".to_string()));
        assert!(!ys.contains(&"cal".to_string()));
    }
}
