//! The extensional database: named relations of ground tuples.

use crate::ast::{Atom, Term, Value};
use crate::error::{DatalogError, DatalogResult};
use std::collections::{HashMap, HashSet};

/// A set of ground tuples plus the relation's arity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    /// Arity, fixed by the first tuple or declaration.
    pub arity: usize,
    /// The tuples.
    pub tuples: HashSet<Vec<Value>>,
}

/// A database mapping predicate names to relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts a ground tuple under `pred`; returns whether it was new.
    pub fn insert(&mut self, pred: &str, tuple: Vec<Value>) -> DatalogResult<bool> {
        match self.relations.get_mut(pred) {
            Some(rel) => {
                if rel.arity != tuple.len() {
                    return Err(DatalogError::ArityMismatch {
                        pred: pred.to_string(),
                        expected: rel.arity,
                        found: tuple.len(),
                    });
                }
                Ok(rel.tuples.insert(tuple))
            }
            None => {
                let mut rel = Relation {
                    arity: tuple.len(),
                    tuples: HashSet::new(),
                };
                rel.tuples.insert(tuple);
                self.relations.insert(pred.to_string(), rel);
                Ok(true)
            }
        }
    }

    /// Inserts a ground fact given as an [`Atom`]; errors if not ground.
    pub fn insert_atom(&mut self, atom: &Atom) -> DatalogResult<bool> {
        let mut tuple = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(v) => tuple.push(v.clone()),
                Term::Var(v) => {
                    return Err(DatalogError::Parse(format!(
                        "fact `{atom}` contains variable `{v}`"
                    )))
                }
            }
        }
        self.insert(&atom.pred, tuple)
    }

    /// The relation for `pred`, if any.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// The tuples under `pred` (empty slice view if absent).
    pub fn tuples(&self, pred: &str) -> impl Iterator<Item = &Vec<Value>> {
        self.relations
            .get(pred)
            .into_iter()
            .flat_map(|r| r.tuples.iter())
    }

    /// Membership test for a ground tuple.
    pub fn contains(&self, pred: &str, tuple: &[Value]) -> bool {
        self.relations
            .get(pred)
            .is_some_and(|r| r.tuples.contains(tuple))
    }

    /// Number of tuples under `pred`.
    pub fn count(&self, pred: &str) -> usize {
        self.relations.get(pred).map_or(0, |r| r.tuples.len())
    }

    /// Total number of tuples.
    pub fn total(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }

    /// Predicate names present, sorted.
    pub fn preds(&self) -> Vec<&str> {
        let mut ps: Vec<&str> = self.relations.keys().map(|s| s.as_str()).collect();
        ps.sort_unstable();
        ps
    }

    /// Merges all tuples of `other` into `self`.
    pub fn absorb(&mut self, other: &Database) -> DatalogResult<usize> {
        let mut added = 0;
        for (pred, rel) in &other.relations {
            for t in &rel.tuples {
                if self.insert(pred, t.clone())? {
                    added += 1;
                }
            }
        }
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        assert!(db
            .insert("edge", vec![Value::sym("a"), Value::sym("b")])
            .unwrap());
        assert!(!db
            .insert("edge", vec![Value::sym("a"), Value::sym("b")])
            .unwrap());
        assert!(db.contains("edge", &[Value::sym("a"), Value::sym("b")]));
        assert!(!db.contains("edge", &[Value::sym("b"), Value::sym("a")]));
        assert_eq!(db.count("edge"), 1);
        assert_eq!(db.count("nosuch"), 0);
    }

    #[test]
    fn arity_enforced() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Int(1)]).unwrap();
        assert!(matches!(
            db.insert("p", vec![Value::Int(1), Value::Int(2)]),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn insert_atom_requires_ground() {
        let mut db = Database::new();
        let ok = Atom::new("p", vec![Term::sym("a")]);
        let bad = Atom::new("p", vec![Term::var("X")]);
        assert!(db.insert_atom(&ok).unwrap());
        assert!(db.insert_atom(&bad).is_err());
    }

    #[test]
    fn absorb_merges() {
        let mut a = Database::new();
        let mut b = Database::new();
        a.insert("p", vec![Value::Int(1)]).unwrap();
        b.insert("p", vec![Value::Int(1)]).unwrap();
        b.insert("p", vec![Value::Int(2)]).unwrap();
        b.insert("q", vec![Value::Int(3)]).unwrap();
        let added = a.absorb(&b).unwrap();
        assert_eq!(added, 2);
        assert_eq!(a.total(), 3);
        assert_eq!(a.preds(), vec!["p", "q"]);
    }
}
