//! The extensional database: named relations of ground tuples, stored
//! interned with secondary hash indexes per binding pattern.
//!
//! Storage layout (the "set-oriented" representation of §3.1):
//!
//! * Tuples are rows of [`IVal`] (interned, `Copy`) laid out
//!   row-major in one flat vector per relation — cache-friendly scans,
//!   cheap row handles (`u32`).
//! * Duplicate detection goes through a tuple-hash map, so inserts are
//!   O(arity) without storing each tuple twice.
//! * Secondary indexes are keyed by a **binding pattern**: a bitmask of
//!   argument positions. The index for mask `m` maps the values at
//!   `m`'s positions to the row ids carrying them. Indexes are built
//!   lazily the first time a join probes that pattern and are
//!   maintained incrementally by later inserts (an insert never leaves
//!   a built index stale; dropping them would force O(n) rebuilds every
//!   semi-naive round).

use crate::ast::{Atom, Term, Value};
use crate::error::{DatalogError, DatalogResult};
use crate::intern::{intern, lookup, IVal, Symbol};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// A secondary index: bound-position values (in position order) to the
/// row ids that carry them.
pub(crate) type Index = HashMap<Vec<IVal>, Vec<u32>>;

/// Relations wider than this are never indexed (the binding-pattern
/// mask is a `u32`); joins over them fall back to scans.
const MAX_INDEXED_ARITY: usize = 32;

fn hash_row(row: &[IVal]) -> u64 {
    let mut h = DefaultHasher::new();
    row.hash(&mut h);
    h.finish()
}

/// Projects the values at `mask`'s positions, in position order.
pub(crate) fn key_of(row: &[IVal], mask: u32) -> Vec<IVal> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let j = m.trailing_zeros() as usize;
        key.push(row[j]);
        m &= m - 1;
    }
    key
}

/// One relation: arity, row-major tuple storage, dedup map, indexes.
#[derive(Debug, Default)]
pub(crate) struct Relation {
    pub(crate) arity: usize,
    flat: Vec<IVal>,
    nrows: u32,
    /// Tuple hash → candidate row ids (collisions resolved by compare).
    dedup: HashMap<u64, Vec<u32>>,
    /// Binding-pattern mask → secondary index, built lazily. Behind a
    /// mutex (not a `RefCell`) so a database embedded in shared server
    /// state stays `Sync`; evaluation is single-threaded, so the lock
    /// is uncontended.
    indexes: Mutex<HashMap<u32, Arc<Index>>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            flat: self.flat.clone(),
            nrows: self.nrows,
            dedup: self.dedup.clone(),
            // Arc-shallow: clones share built indexes until either
            // side inserts (copy-on-write via `Arc::make_mut`).
            indexes: Mutex::new(lock_indexes(&self.indexes).clone()),
        }
    }
}

/// Locks an index cache, shrugging off poisoning: the guarded map is
/// only ever mutated through `HashMap` inserts, which leave it valid.
fn lock_indexes(
    indexes: &Mutex<HashMap<u32, Arc<Index>>>,
) -> std::sync::MutexGuard<'_, HashMap<u32, Arc<Index>>> {
    indexes.lock().unwrap_or_else(|e| e.into_inner())
}

impl Relation {
    /// Number of tuples.
    pub(crate) fn len(&self) -> usize {
        self.nrows as usize
    }

    /// The `i`-th tuple.
    pub(crate) fn row(&self, i: u32) -> &[IVal] {
        let a = self.arity;
        &self.flat[i as usize * a..(i as usize + 1) * a]
    }

    /// Iterates all tuples.
    pub(crate) fn rows(&self) -> impl Iterator<Item = &[IVal]> {
        (0..self.nrows).map(|i| self.row(i))
    }

    fn find(&self, row: &[IVal]) -> Option<u32> {
        let h = hash_row(row);
        self.dedup
            .get(&h)?
            .iter()
            .copied()
            .find(|&i| self.row(i) == row)
    }

    /// Inserts a row, maintaining dedup and any built indexes; returns
    /// whether it was new.
    fn insert(&mut self, row: &[IVal]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        if self.find(row).is_some() {
            return false;
        }
        let id = self.nrows;
        self.flat.extend_from_slice(row);
        self.nrows += 1;
        self.dedup.entry(hash_row(row)).or_default().push(id);
        for (&mask, index) in self.indexes.get_mut().unwrap_or_else(|e| e.into_inner()) {
            Arc::make_mut(index)
                .entry(key_of(row, mask))
                .or_default()
                .push(id);
        }
        true
    }

    /// Removes a row by value, maintaining dedup and any built indexes;
    /// returns whether it was present. The last row is swapped into the
    /// hole, so every bookkeeping structure that names a row id must be
    /// repointed: first the removed row's entries are dropped, then the
    /// moved row's entries are redirected from the old last id — in that
    /// order, because the two rows may share a hash bucket or index key.
    fn remove(&mut self, row: &[IVal]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let Some(id) = self.find(row) else {
            return false;
        };
        let last = self.nrows - 1;
        let removed: Vec<IVal> = self.row(id).to_vec();
        let moved: Option<Vec<IVal>> = (id != last).then(|| self.row(last).to_vec());
        let h = hash_row(&removed);
        if let Some(bucket) = self.dedup.get_mut(&h) {
            bucket.retain(|&i| i != id);
            if bucket.is_empty() {
                self.dedup.remove(&h);
            }
        }
        if let Some(m) = &moved {
            if let Some(bucket) = self.dedup.get_mut(&hash_row(m)) {
                for i in bucket.iter_mut() {
                    if *i == last {
                        *i = id;
                    }
                }
            }
        }
        for (&mask, index) in self.indexes.get_mut().unwrap_or_else(|e| e.into_inner()) {
            let index = Arc::make_mut(index);
            let key = key_of(&removed, mask);
            if let Some(bucket) = index.get_mut(&key) {
                bucket.retain(|&i| i != id);
                if bucket.is_empty() {
                    index.remove(&key);
                }
            }
            if let Some(m) = &moved {
                if let Some(bucket) = index.get_mut(&key_of(m, mask)) {
                    for i in bucket.iter_mut() {
                        if *i == last {
                            *i = id;
                        }
                    }
                }
            }
        }
        let a = self.arity;
        if id != last {
            for j in 0..a {
                self.flat[id as usize * a + j] = self.flat[last as usize * a + j];
            }
        }
        self.flat.truncate(last as usize * a);
        self.nrows = last;
        true
    }

    /// The secondary index for binding pattern `mask`, building it on
    /// first use. `mask` must be non-zero and within the arity.
    pub(crate) fn index_for(&self, mask: u32) -> Arc<Index> {
        debug_assert!(mask != 0);
        let mut indexes = lock_indexes(&self.indexes);
        Arc::clone(indexes.entry(mask).or_insert_with(|| {
            let mut index = Index::new();
            for i in 0..self.nrows {
                index.entry(key_of(self.row(i), mask)).or_default().push(i);
            }
            Arc::new(index)
        }))
    }

    /// Number of binding patterns currently indexed (for tests/stats).
    pub(crate) fn index_count(&self) -> usize {
        lock_indexes(&self.indexes).len()
    }
}

/// A database mapping predicate names to relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    pred_ids: HashMap<Symbol, usize>,
    rels: Vec<(Symbol, Relation)>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    pub(crate) fn rel(&self, pred: Symbol) -> Option<&Relation> {
        self.pred_ids.get(&pred).map(|&i| &self.rels[i].1)
    }

    fn rel_by_name(&self, pred: &str) -> Option<&Relation> {
        self.rel(lookup(pred)?)
    }

    /// Inserts an interned row under `pred`; returns whether it was new.
    pub(crate) fn insert_ivals(&mut self, pred: Symbol, row: &[IVal]) -> DatalogResult<bool> {
        match self.pred_ids.get(&pred) {
            Some(&i) => {
                let rel = &mut self.rels[i].1;
                if rel.arity != row.len() {
                    return Err(DatalogError::ArityMismatch {
                        pred: pred.as_str().to_string(),
                        expected: rel.arity,
                        found: row.len(),
                    });
                }
                Ok(rel.insert(row))
            }
            None => {
                let mut rel = Relation {
                    arity: row.len(),
                    ..Relation::default()
                };
                rel.insert(row);
                self.pred_ids.insert(pred, self.rels.len());
                self.rels.push((pred, rel));
                Ok(true)
            }
        }
    }

    /// Ground membership test on an interned row.
    pub(crate) fn contains_ivals(&self, pred: Symbol, row: &[IVal]) -> bool {
        self.rel(pred)
            .is_some_and(|r| r.arity == row.len() && r.find(row).is_some())
    }

    /// Removes an interned row under `pred`; returns whether it was
    /// present. An empty relation stays registered (same arity).
    pub(crate) fn remove_ivals(&mut self, pred: Symbol, row: &[IVal]) -> bool {
        match self.pred_ids.get(&pred) {
            Some(&i) => {
                let rel = &mut self.rels[i].1;
                rel.arity == row.len() && rel.remove(row)
            }
            None => false,
        }
    }

    /// Iterates the relations with their interned predicate symbols.
    pub(crate) fn iter_rels(&self) -> impl Iterator<Item = (Symbol, &Relation)> {
        self.rels.iter().map(|(s, r)| (*s, r))
    }

    /// Inserts a ground tuple under `pred`; returns whether it was new.
    pub fn insert(&mut self, pred: &str, tuple: Vec<Value>) -> DatalogResult<bool> {
        let row: Vec<IVal> = tuple.iter().map(IVal::from_value).collect();
        self.insert_ivals(intern(pred), &row)
    }

    /// Inserts a ground fact given as an [`Atom`]; errors if not ground.
    pub fn insert_atom(&mut self, atom: &Atom) -> DatalogResult<bool> {
        let mut tuple = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(v) => tuple.push(v.clone()),
                Term::Var(v) => {
                    return Err(DatalogError::Parse(format!(
                        "fact `{atom}` contains variable `{v}`"
                    )))
                }
            }
        }
        self.insert(&atom.pred, tuple)
    }

    /// The tuples under `pred`, decoded (empty if absent).
    pub fn tuples<'a>(&'a self, pred: &str) -> impl Iterator<Item = Vec<Value>> + 'a {
        self.rel_by_name(pred).into_iter().flat_map(|r| {
            r.rows()
                .map(|row| row.iter().map(|v| v.to_value()).collect())
        })
    }

    /// Removes a ground tuple under `pred`; returns whether it was
    /// present. Built indexes are maintained, not invalidated, so
    /// interleaved insert/remove churn keeps probes O(1).
    pub fn remove(&mut self, pred: &str, tuple: &[Value]) -> bool {
        let Some(sym) = lookup(pred) else {
            return false;
        };
        let row: Option<Vec<IVal>> = tuple.iter().map(IVal::from_value_if_known).collect();
        row.is_some_and(|row| self.remove_ivals(sym, &row))
    }

    /// Membership test for a ground tuple.
    pub fn contains(&self, pred: &str, tuple: &[Value]) -> bool {
        let Some(sym) = lookup(pred) else {
            return false;
        };
        let row: Option<Vec<IVal>> = tuple.iter().map(IVal::from_value_if_known).collect();
        row.is_some_and(|row| self.contains_ivals(sym, &row))
    }

    /// The arity of `pred`, if present.
    pub fn arity(&self, pred: &str) -> Option<usize> {
        self.rel_by_name(pred).map(|r| r.arity)
    }

    /// Number of tuples under `pred`.
    pub fn count(&self, pred: &str) -> usize {
        self.rel_by_name(pred).map_or(0, |r| r.len())
    }

    /// Total number of tuples.
    pub fn total(&self) -> usize {
        self.rels.iter().map(|(_, r)| r.len()).sum()
    }

    /// Predicate names present, sorted.
    pub fn preds(&self) -> Vec<&str> {
        let mut ps: Vec<&str> = self.rels.iter().map(|(s, _)| s.as_str()).collect();
        ps.sort_unstable();
        ps
    }

    /// Merges all tuples of `other` into `self` (interned fast path).
    pub fn absorb(&mut self, other: &Database) -> DatalogResult<usize> {
        let mut added = 0;
        for (pred, rel) in &other.rels {
            for i in 0..rel.nrows {
                if self.insert_ivals(*pred, rel.row(i))? {
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// Tuples of `pred` matching `pattern` (`Some` = bound position,
    /// `None` = free), served from the binding-pattern index when any
    /// position is bound. This is the point probe the engines and the
    /// object processor use instead of scan-and-filter.
    pub fn probe<'a>(
        &'a self,
        pred: &str,
        pattern: &[Option<Value>],
    ) -> Box<dyn Iterator<Item = Vec<Value>> + 'a> {
        let Some(rel) = self.rel_by_name(pred) else {
            return Box::new(std::iter::empty());
        };
        if rel.arity != pattern.len() {
            return Box::new(std::iter::empty());
        }
        let mut mask: u32 = 0;
        let mut key = Vec::new();
        if rel.arity <= MAX_INDEXED_ARITY {
            for (j, slot) in pattern.iter().enumerate() {
                if let Some(v) = slot {
                    match IVal::from_value_if_known(v) {
                        // A never-interned symbol matches nothing.
                        None => return Box::new(std::iter::empty()),
                        Some(iv) => {
                            mask |= 1 << j;
                            key.push(iv);
                        }
                    }
                }
            }
        }
        if mask == 0 {
            return Box::new(
                rel.rows()
                    .map(|row| row.iter().map(|v| v.to_value()).collect()),
            );
        }
        let index = rel.index_for(mask);
        let ids = index.get(&key).cloned().unwrap_or_default();
        Box::new(
            ids.into_iter()
                .map(move |i| rel.row(i).iter().map(|v| v.to_value()).collect()),
        )
    }

    /// Number of secondary indexes built across all relations.
    pub fn index_count(&self) -> usize {
        self.rels.iter().map(|(_, r)| r.index_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        assert!(db
            .insert("edge", vec![Value::sym("a"), Value::sym("b")])
            .unwrap());
        assert!(!db
            .insert("edge", vec![Value::sym("a"), Value::sym("b")])
            .unwrap());
        assert!(db.contains("edge", &[Value::sym("a"), Value::sym("b")]));
        assert!(!db.contains("edge", &[Value::sym("b"), Value::sym("a")]));
        assert_eq!(db.count("edge"), 1);
        assert_eq!(db.count("nosuch"), 0);
    }

    #[test]
    fn arity_enforced() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Int(1)]).unwrap();
        assert!(matches!(
            db.insert("p", vec![Value::Int(1), Value::Int(2)]),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn insert_atom_requires_ground() {
        let mut db = Database::new();
        let ok = Atom::new("p", vec![Term::sym("a")]);
        let bad = Atom::new("p", vec![Term::var("X")]);
        assert!(db.insert_atom(&ok).unwrap());
        assert!(db.insert_atom(&bad).is_err());
    }

    #[test]
    fn absorb_merges() {
        let mut a = Database::new();
        let mut b = Database::new();
        a.insert("p", vec![Value::Int(1)]).unwrap();
        b.insert("p", vec![Value::Int(1)]).unwrap();
        b.insert("p", vec![Value::Int(2)]).unwrap();
        b.insert("q", vec![Value::Int(3)]).unwrap();
        let added = a.absorb(&b).unwrap();
        assert_eq!(added, 2);
        assert_eq!(a.total(), 3);
        assert_eq!(a.preds(), vec!["p", "q"]);
    }

    #[test]
    fn probe_with_bound_prefix() {
        let mut db = Database::new();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "c")] {
            db.insert("edge", vec![Value::sym(x), Value::sym(y)])
                .unwrap();
        }
        let hits: Vec<Vec<Value>> = db.probe("edge", &[Some(Value::sym("a")), None]).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|t| t[0] == Value::sym("a")));
        assert_eq!(db.index_count(), 1);
        // Second-position probe builds a second index.
        let hits: Vec<Vec<Value>> = db.probe("edge", &[None, Some(Value::sym("c"))]).collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(db.index_count(), 2);
    }

    #[test]
    fn probe_unknown_symbol_is_empty() {
        let mut db = Database::new();
        db.insert("edge", vec![Value::sym("a"), Value::sym("b")])
            .unwrap();
        let hits: Vec<_> = db
            .probe("edge", &[Some(Value::sym("zz-never-interned-zz")), None])
            .collect();
        assert!(hits.is_empty());
    }

    #[test]
    fn indexes_stay_fresh_across_inserts() {
        let mut db = Database::new();
        db.insert("edge", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        // Build the first-position index…
        assert_eq!(db.probe("edge", &[Some(Value::Int(1)), None]).count(), 1);
        // …then insert more tuples: the built index must see them.
        db.insert("edge", vec![Value::Int(1), Value::Int(3)])
            .unwrap();
        db.insert("edge", vec![Value::Int(4), Value::Int(5)])
            .unwrap();
        assert_eq!(db.probe("edge", &[Some(Value::Int(1)), None]).count(), 2);
        assert_eq!(db.probe("edge", &[Some(Value::Int(4)), None]).count(), 1);
    }

    #[test]
    fn clones_do_not_share_index_growth() {
        let mut a = Database::new();
        a.insert("p", vec![Value::Int(1)]).unwrap();
        assert_eq!(a.probe("p", &[Some(Value::Int(1))]).count(), 1);
        let b = a.clone();
        a.insert("p", vec![Value::Int(2)]).unwrap();
        assert_eq!(a.probe("p", &[Some(Value::Int(2))]).count(), 1);
        assert_eq!(b.probe("p", &[Some(Value::Int(2))]).count(), 0);
        assert_eq!(b.count("p"), 1);
    }

    #[test]
    fn remove_then_membership_and_reinsert() {
        let mut db = Database::new();
        for i in 0..3 {
            db.insert("p", vec![Value::Int(i)]).unwrap();
        }
        assert!(db.remove("p", &[Value::Int(1)]));
        assert!(
            !db.remove("p", &[Value::Int(1)]),
            "second remove is a no-op"
        );
        assert!(!db.contains("p", &[Value::Int(1)]));
        assert_eq!(db.count("p"), 2);
        // The swapped-in row (the old last row) must still be found.
        assert!(db.contains("p", &[Value::Int(2)]));
        assert!(db.insert("p", vec![Value::Int(1)]).unwrap());
        assert_eq!(db.count("p"), 3);
    }

    #[test]
    fn remove_of_absent_or_unknown_is_false() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Int(1)]).unwrap();
        assert!(!db.remove("p", &[Value::Int(9)]));
        assert!(!db.remove("nosuch", &[Value::Int(1)]));
        assert!(!db.remove("p", &[Value::sym("zz-never-interned-zz")]));
        assert_eq!(db.count("p"), 1);
    }

    #[test]
    fn indexes_stay_fresh_across_removes() {
        let mut db = Database::new();
        for (x, y) in [(1, 2), (1, 3), (4, 5), (1, 6)] {
            db.insert("edge", vec![Value::Int(x), Value::Int(y)])
                .unwrap();
        }
        // Build indexes on both positions before removing.
        assert_eq!(db.probe("edge", &[Some(Value::Int(1)), None]).count(), 3);
        assert_eq!(db.probe("edge", &[None, Some(Value::Int(5))]).count(), 1);
        // Remove a middle row: the last row (1,6) is swapped into its
        // slot and must stay probeable under both masks.
        assert!(db.remove("edge", &[Value::Int(1), Value::Int(3)]));
        assert_eq!(db.probe("edge", &[Some(Value::Int(1)), None]).count(), 2);
        assert_eq!(db.probe("edge", &[None, Some(Value::Int(6))]).count(), 1);
        assert_eq!(db.probe("edge", &[None, Some(Value::Int(3))]).count(), 0);
        // Remove the (new) last row too.
        assert!(db.remove("edge", &[Value::Int(1), Value::Int(6)]));
        assert_eq!(db.probe("edge", &[Some(Value::Int(1)), None]).count(), 1);
        assert_eq!(db.probe("edge", &[None, Some(Value::Int(6))]).count(), 0);
        // Churn: remove everything, then refill through the same index.
        assert!(db.remove("edge", &[Value::Int(1), Value::Int(2)]));
        assert!(db.remove("edge", &[Value::Int(4), Value::Int(5)]));
        assert_eq!(db.count("edge"), 0);
        db.insert("edge", vec![Value::Int(1), Value::Int(7)])
            .unwrap();
        assert_eq!(db.probe("edge", &[Some(Value::Int(1)), None]).count(), 1);
    }

    #[test]
    fn clones_do_not_observe_removes() {
        let mut a = Database::new();
        a.insert("p", vec![Value::Int(1)]).unwrap();
        a.insert("p", vec![Value::Int(2)]).unwrap();
        assert_eq!(a.probe("p", &[Some(Value::Int(1))]).count(), 1);
        let b = a.clone();
        a.remove("p", &[Value::Int(1)]);
        assert!(!a.contains("p", &[Value::Int(1)]));
        assert!(b.contains("p", &[Value::Int(1)]));
        assert_eq!(b.probe("p", &[Some(Value::Int(1))]).count(), 1);
    }

    #[test]
    fn zero_arity_relations() {
        let mut db = Database::new();
        assert!(db.insert("flag", vec![]).unwrap());
        assert!(!db.insert("flag", vec![]).unwrap());
        assert_eq!(db.count("flag"), 1);
        assert!(db.contains("flag", &[]));
        assert_eq!(db.probe("flag", &[]).count(), 1);
        assert!(db.remove("flag", &[]));
        assert!(!db.contains("flag", &[]));
        assert!(db.insert("flag", vec![]).unwrap());
    }
}
