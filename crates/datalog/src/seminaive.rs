//! Bottom-up, semi-naive fixpoint evaluation with stratified negation.
//!
//! This is the deductive-relational view of the object processor: "the
//! object processor understands the knowledge base as a deductive
//! relational database; in this way, large sets of similarly structured
//! objects can be managed more efficiently" (§3.1).
//!
//! Strata are evaluated in order; inside a stratum the classic
//! semi-naive optimization restricts one positive recursive literal per
//! rule instantiation to the previous round's delta, so each derivation
//! is attempted once.

use crate::ast::{Literal, Program, Rule, Term, Value};
use crate::db::Database;
use crate::error::{DatalogError, DatalogResult};
use crate::stratify::stratify;
use std::collections::HashMap;

/// Evaluation statistics, exposed for the benches (E-2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds across all strata.
    pub rounds: usize,
    /// Facts derived (including duplicates rediscovered).
    pub derivations: usize,
    /// Facts that were new.
    pub new_facts: usize,
}

type Env = HashMap<String, Value>;

fn bind(term: &Term, env: &Env) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(v) => env.get(v).cloned(),
    }
}

fn match_tuple(args: &[Term], tuple: &[Value], env: &Env) -> Option<Env> {
    let mut env = env.clone();
    for (t, v) in args.iter().zip(tuple) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(name) => match env.get(name) {
                Some(bound) if bound != v => return None,
                Some(_) => {}
                None => {
                    env.insert(name.clone(), v.clone());
                }
            },
        }
    }
    Some(env)
}

/// Orders body literals: positives first (source order), negatives
/// last, so safety guarantees groundness when a negation is reached.
fn ordered_body(rule: &Rule) -> Vec<&Literal> {
    let mut out: Vec<&Literal> = rule.body.iter().filter(|l| !l.negated).collect();
    out.extend(rule.body.iter().filter(|l| l.negated));
    out
}

/// Joins the rule body against `total`, with body position `delta_pos`
/// (an index into the *ordered* body) restricted to `delta` if given.
fn join_body(
    body: &[&Literal],
    pos: usize,
    env: &Env,
    total: &Database,
    delta: Option<(&Database, usize)>,
    out: &mut Vec<Env>,
    stats: &mut EvalStats,
) -> DatalogResult<()> {
    if pos == body.len() {
        out.push(env.clone());
        return Ok(());
    }
    let lit = body[pos];
    if lit.negated {
        let mut tuple = Vec::with_capacity(lit.atom.args.len());
        for t in &lit.atom.args {
            match bind(t, env) {
                Some(v) => tuple.push(v),
                None => {
                    return Err(DatalogError::NonGroundNegation(lit.atom.to_string()));
                }
            }
        }
        if !total.contains(&lit.atom.pred, &tuple) {
            join_body(body, pos + 1, env, total, delta, out, stats)?;
        }
        return Ok(());
    }
    let source = match delta {
        Some((d, dp)) if dp == pos => d,
        _ => total,
    };
    stats.derivations += 1;
    for tuple in source.tuples(&lit.atom.pred) {
        if let Some(env2) = match_tuple(&lit.atom.args, tuple, env) {
            join_body(body, pos + 1, &env2, total, delta, out, stats)?;
        }
    }
    Ok(())
}

fn head_tuple(rule: &Rule, env: &Env) -> DatalogResult<Vec<Value>> {
    rule.head
        .args
        .iter()
        .map(|t| {
            bind(t, env).ok_or_else(|| {
                DatalogError::UnsafeRule(format!("unbound head variable in `{rule}`"))
            })
        })
        .collect()
}

/// Evaluates `program` over `edb`, returning the full model (EDB +
/// derived facts) and statistics.
pub fn evaluate(program: &Program, edb: &Database) -> DatalogResult<(Database, EvalStats)> {
    program.validate()?;
    let strat = stratify(program)?;
    let mut total = edb.clone();
    let mut stats = EvalStats::default();

    for stratum_rules in &strat.rules_per_stratum {
        let rules: Vec<&Rule> = stratum_rules.iter().map(|&i| &program.rules[i]).collect();
        let idb: Vec<&str> = rules.iter().map(|r| r.head.pred.as_str()).collect();

        // Round 1: naive evaluation against everything known so far.
        let mut delta = Database::new();
        stats.rounds += 1;
        for rule in &rules {
            let body = ordered_body(rule);
            let mut envs = Vec::new();
            join_body(&body, 0, &Env::new(), &total, None, &mut envs, &mut stats)?;
            for env in envs {
                let t = head_tuple(rule, &env)?;
                if !total.contains(&rule.head.pred, &t) {
                    delta.insert(&rule.head.pred, t)?;
                }
            }
        }
        stats.new_facts += total.absorb(&delta)?;

        // Semi-naive rounds.
        while delta.total() > 0 {
            stats.rounds += 1;
            let mut next = Database::new();
            for rule in &rules {
                let body = ordered_body(rule);
                // One version per positive literal over an IDB pred of
                // this stratum.
                for (pos, lit) in body.iter().enumerate() {
                    if lit.negated || !idb.contains(&lit.atom.pred.as_str()) {
                        continue;
                    }
                    if delta.count(&lit.atom.pred) == 0 {
                        continue;
                    }
                    let mut envs = Vec::new();
                    join_body(
                        &body,
                        0,
                        &Env::new(),
                        &total,
                        Some((&delta, pos)),
                        &mut envs,
                        &mut stats,
                    )?;
                    for env in envs {
                        let t = head_tuple(rule, &env)?;
                        if !total.contains(&rule.head.pred, &t) {
                            next.insert(&rule.head.pred, t)?;
                        }
                    }
                }
            }
            stats.new_facts += total.absorb(&next)?;
            delta = next;
        }
    }
    Ok((total, stats))
}

/// Convenience: evaluates and returns the tuples of one predicate,
/// sorted for deterministic comparison.
pub fn evaluate_pred(
    program: &Program,
    edb: &Database,
    pred: &str,
) -> DatalogResult<Vec<Vec<Value>>> {
    let (model, _) = evaluate(program, edb)?;
    let mut out: Vec<Vec<Value>> = model.tuples(pred).cloned().collect();
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (a, b) in pairs {
            db.insert("edge", vec![Value::sym(*a), Value::sym(*b)])
                .unwrap();
        }
        db
    }

    const TC: &str = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).";

    #[test]
    fn transitive_closure() {
        let p = Program::parse(TC).unwrap();
        let db = edges(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let paths = evaluate_pred(&p, &db, "path").unwrap();
        assert_eq!(paths.len(), 6); // ab ac ad bc bd cd
        assert!(paths.contains(&vec![Value::sym("a"), Value::sym("d")]));
    }

    #[test]
    fn cyclic_graph_terminates() {
        let p = Program::parse(TC).unwrap();
        let db = edges(&[("a", "b"), ("b", "a")]);
        let paths = evaluate_pred(&p, &db, "path").unwrap();
        // aa ab ba bb
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn stratified_negation() {
        let p = Program::parse(
            "reach(X) :- source(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut db = edges(&[("a", "b"), ("c", "d")]);
        for n in ["a", "b", "c", "d"] {
            db.insert("node", vec![Value::sym(n)]).unwrap();
        }
        db.insert("source", vec![Value::sym("a")]).unwrap();
        let unreached = evaluate_pred(&p, &db, "unreached").unwrap();
        assert_eq!(
            unreached,
            vec![vec![Value::sym("c")], vec![Value::sym("d")]]
        );
    }

    #[test]
    fn facts_in_program() {
        let p = Program::parse(
            "edge(a, b).\nedge(b, c).\npath(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let paths = evaluate_pred(&p, &Database::new(), "path").unwrap();
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn same_generation() {
        let p = Program::parse(
            "sg(X, X) :- person(X).\n\
             sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).",
        )
        .unwrap();
        let mut db = Database::new();
        for x in ["ann", "bob", "cal", "dee"] {
            db.insert("person", vec![Value::sym(x)]).unwrap();
        }
        // ann, bob children of cal; dee child of cal? make: cal parent of ann&bob; dee parent of cal.
        db.insert("parent", vec![Value::sym("ann"), Value::sym("cal")])
            .unwrap();
        db.insert("parent", vec![Value::sym("bob"), Value::sym("cal")])
            .unwrap();
        let sg = evaluate_pred(&p, &db, "sg").unwrap();
        assert!(sg.contains(&vec![Value::sym("ann"), Value::sym("bob")]));
        assert!(sg.contains(&vec![Value::sym("bob"), Value::sym("ann")]));
        assert!(!sg.contains(&vec![Value::sym("ann"), Value::sym("dee")]));
    }

    #[test]
    fn constants_in_rule_bodies() {
        let p = Program::parse("special(X) :- edge(a, X).").unwrap();
        let db = edges(&[("a", "b"), ("b", "c")]);
        let s = evaluate_pred(&p, &db, "special").unwrap();
        assert_eq!(s, vec![vec![Value::sym("b")]]);
    }

    #[test]
    fn stats_report_semi_naive_rounds() {
        let p = Program::parse(TC).unwrap();
        // A chain of length 20 needs ~20 rounds.
        let mut db = Database::new();
        for i in 0..20 {
            db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        let (model, stats) = evaluate(&p, &db).unwrap();
        assert_eq!(model.count("path"), 20 * 21 / 2);
        assert!(stats.rounds >= 20, "rounds = {}", stats.rounds);
        assert_eq!(stats.new_facts, model.count("path"));
    }

    #[test]
    fn unstratifiable_rejected() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        assert!(evaluate(&p, &Database::new()).is_err());
    }

    #[test]
    fn empty_program_returns_edb() {
        let db = edges(&[("a", "b")]);
        let (model, stats) = evaluate(&Program::default(), &db).unwrap();
        assert_eq!(model.count("edge"), 1);
        assert_eq!(stats.new_facts, 0);
    }
}
