//! Bottom-up, semi-naive fixpoint evaluation with stratified negation.
//!
//! This is the deductive-relational view of the object processor: "the
//! object processor understands the knowledge base as a deductive
//! relational database; in this way, large sets of similarly structured
//! objects can be managed more efficiently" (§3.1).
//!
//! Strata are evaluated in order; inside a stratum the classic
//! semi-naive optimization restricts one positive recursive literal per
//! rule instantiation to the previous round's delta, so each derivation
//! is attempted once.
//!
//! # Join evaluation
//!
//! [`evaluate`] compiles each rule once per stratum: variables become
//! numbered slots, constants are interned ([`IVal`]), and every body
//! literal gets a **binding-pattern mask** — the set of argument
//! positions that are ground when the join reaches it (constants, plus
//! variables bound by earlier literals). The join core then asks the
//! [`Database`] for the secondary index on that mask and iterates only
//! the rows carrying the probe key, instead of scanning the relation
//! and unifying tuple by tuple. Delta relations are joined through the
//! same index path. The pre-index scan evaluator survives as
//! [`evaluate_scan`] for ablation benchmarks and differential tests.

use crate::ast::{Literal, Program, Rule, Term, Value};
use crate::db::Database;
use crate::error::{DatalogError, DatalogResult};
use crate::intern::{intern, IVal, Symbol};
use crate::stratify::stratify;
use std::collections::{HashMap, HashSet};

/// Evaluation statistics, exposed for the benches (E-2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds across all strata.
    pub rounds: usize,
    /// Successful rule-body instantiations (head tuples produced,
    /// including duplicates rediscovered). Always `>= new_facts`.
    pub derivations: usize,
    /// Facts that were new.
    pub new_facts: usize,
    /// Secondary-index probes issued by the join core (0 for the scan
    /// evaluator).
    pub index_probes: usize,
    /// Candidate tuples iterated while joining — index hits plus full
    /// scans where no argument was bound.
    pub tuples_scanned: usize,
}

impl EvalStats {
    /// Accumulates this evaluation's counters into the process-wide
    /// [`obs`] registry, so the per-query numbers the engines already
    /// report become cumulative service metrics.
    pub fn publish(&self) {
        obs::counter!(
            "datalog_evaluations_total",
            "Bottom-up evaluations (indexed or scan) completed"
        )
        .inc();
        obs::counter!("datalog_rounds_total", "Fixpoint rounds across all strata")
            .add(self.rounds as u64);
        obs::counter!(
            "datalog_derivations_total",
            "Successful rule-body instantiations"
        )
        .add(self.derivations as u64);
        obs::counter!("datalog_new_facts_total", "Facts newly derived").add(self.new_facts as u64);
        obs::counter!(
            "datalog_index_probes_total",
            "Secondary-index probes issued by the join cores"
        )
        .add(self.index_probes as u64);
        obs::counter!(
            "datalog_tuples_scanned_total",
            "Candidate tuples iterated while joining"
        )
        .add(self.tuples_scanned as u64);
    }
}

// ---------------------------------------------------------------------
// Compiled rules: the hash-join path.
// ---------------------------------------------------------------------

/// A compiled argument: interned constant or variable slot.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ArgSpec {
    Const(IVal),
    Var(u16),
}

/// A compiled body literal with its binding-pattern mask.
#[derive(Debug, Clone)]
pub(crate) struct CLit {
    pub(crate) pred: Symbol,
    pub(crate) negated: bool,
    pub(crate) args: Vec<ArgSpec>,
    /// Positions ground when the join reaches this literal.
    pub(crate) mask: u32,
    /// `args` at `mask`'s positions, ascending — the probe key recipe.
    pub(crate) key_spec: Vec<ArgSpec>,
}

/// A compiled rule: positives first, negatives last (as
/// [`ordered_body`] orders them), variables renamed to slots.
#[derive(Debug, Clone)]
pub(crate) struct CRule {
    pub(crate) head_pred: Symbol,
    pub(crate) head: Vec<ArgSpec>,
    pub(crate) lits: Vec<CLit>,
    pub(crate) nslots: usize,
}

pub(crate) fn compile(rule: &Rule) -> DatalogResult<CRule> {
    let body = ordered_body(rule);
    let mut slots: HashMap<&str, u16> = HashMap::new();
    let mut bound: HashSet<u16> = HashSet::new();
    let mut lits = Vec::with_capacity(body.len());
    for lit in body {
        let mut args = Vec::with_capacity(lit.atom.args.len());
        let mut mask: u32 = 0;
        let mut newly = Vec::new();
        for (j, t) in lit.atom.args.iter().enumerate() {
            match t {
                Term::Const(v) => {
                    args.push(ArgSpec::Const(IVal::from_value(v)));
                    if j < 32 {
                        mask |= 1 << j;
                    }
                }
                Term::Var(name) => {
                    let next = u16::try_from(slots.len()).expect("fewer than 2^16 variables");
                    let s = *slots.entry(name.as_str()).or_insert(next);
                    if bound.contains(&s) {
                        if j < 32 {
                            mask |= 1 << j;
                        }
                    } else {
                        // First occurrence (possibly repeated within
                        // this literal — the join checks that at match
                        // time, it cannot go into the probe key).
                        newly.push(s);
                    }
                    args.push(ArgSpec::Var(s));
                }
            }
        }
        bound.extend(newly);
        let key_spec = {
            let mut key = Vec::with_capacity(mask.count_ones() as usize);
            let mut m = mask;
            while m != 0 {
                key.push(args[m.trailing_zeros() as usize]);
                m &= m - 1;
            }
            key
        };
        lits.push(CLit {
            pred: intern(&lit.atom.pred),
            negated: lit.negated,
            args,
            mask,
            key_spec,
        });
    }
    let head = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(v) => Ok(ArgSpec::Const(IVal::from_value(v))),
            Term::Var(name) => slots
                .get(name.as_str())
                .map(|&s| ArgSpec::Var(s))
                .ok_or_else(|| {
                    DatalogError::UnsafeRule(format!("unbound head variable in `{rule}`"))
                }),
        })
        .collect::<DatalogResult<Vec<_>>>()?;
    Ok(CRule {
        head_pred: intern(&rule.head.pred),
        head,
        lits,
        nslots: slots.len(),
    })
}

/// One join invocation: `total` is everything known, and body position
/// `delta_pos` (usize::MAX for none) reads from `delta` instead.
struct JoinCtx<'a> {
    total: &'a Database,
    delta: Option<&'a Database>,
    delta_pos: usize,
}

impl JoinCtx<'_> {
    /// Extends `env` through `rule.lits[pos..]`, emitting one head row
    /// per complete instantiation. `trail` records slots bound below
    /// the caller's mark so they can be unwound.
    fn join(
        &self,
        rule: &CRule,
        pos: usize,
        env: &mut [Option<IVal>],
        trail: &mut Vec<u16>,
        stats: &mut EvalStats,
        emit: &mut dyn FnMut(&[IVal]) -> DatalogResult<()>,
    ) -> DatalogResult<()> {
        if pos == rule.lits.len() {
            stats.derivations += 1;
            let row: Vec<IVal> = rule
                .head
                .iter()
                .map(|a| match a {
                    ArgSpec::Const(c) => *c,
                    ArgSpec::Var(s) => env[*s as usize].expect("safety: head var bound"),
                })
                .collect();
            return emit(&row);
        }
        let lit = &rule.lits[pos];
        if lit.negated {
            let mut row = Vec::with_capacity(lit.args.len());
            for a in &lit.args {
                match a {
                    ArgSpec::Const(c) => row.push(*c),
                    ArgSpec::Var(s) => match env[*s as usize] {
                        Some(v) => row.push(v),
                        None => {
                            return Err(DatalogError::NonGroundNegation(
                                lit.pred.as_str().to_string(),
                            ))
                        }
                    },
                }
            }
            if !self.total.contains_ivals(lit.pred, &row) {
                self.join(rule, pos + 1, env, trail, stats, emit)?;
            }
            return Ok(());
        }
        let source = if pos == self.delta_pos {
            self.delta.expect("delta_pos implies delta")
        } else {
            self.total
        };
        // In a semi-naive round, positions before the delta position
        // must read the *old* state (total minus this round's delta):
        // an instantiation whose earlier literal also matches a delta
        // tuple belongs to the rule version whose delta position is
        // that earlier literal, so producing it here would attempt —
        // and count — the same derivation twice.
        let exclude = if pos < self.delta_pos {
            self.delta
        } else {
            None
        };
        let Some(rel) = source.rel(lit.pred) else {
            return Ok(());
        };
        if rel.arity != lit.args.len() {
            return Ok(());
        }
        let mark = trail.len();
        if lit.mask != 0 {
            let key: Vec<IVal> = lit
                .key_spec
                .iter()
                .map(|a| match a {
                    ArgSpec::Const(c) => *c,
                    ArgSpec::Var(s) => env[*s as usize].expect("masked var bound"),
                })
                .collect();
            stats.index_probes += 1;
            let index = rel.index_for(lit.mask);
            if let Some(ids) = index.get(&key) {
                stats.tuples_scanned += ids.len();
                for &id in ids {
                    let row = rel.row(id);
                    if exclude.is_some_and(|d| d.contains_ivals(lit.pred, row)) {
                        continue;
                    }
                    if match_row(&lit.args, row, env, trail) {
                        self.join(rule, pos + 1, env, trail, stats, emit)?;
                    }
                    unwind(env, trail, mark);
                }
            }
        } else {
            stats.tuples_scanned += rel.len();
            for row in rel.rows() {
                if exclude.is_some_and(|d| d.contains_ivals(lit.pred, row)) {
                    continue;
                }
                if match_row(&lit.args, row, env, trail) {
                    self.join(rule, pos + 1, env, trail, stats, emit)?;
                }
                unwind(env, trail, mark);
            }
        }
        Ok(())
    }
}

/// Matches `row` against `args`, binding fresh slots (recorded on
/// `trail`). On mismatch the caller unwinds to its mark.
pub(crate) fn match_row(
    args: &[ArgSpec],
    row: &[IVal],
    env: &mut [Option<IVal>],
    trail: &mut Vec<u16>,
) -> bool {
    for (a, &v) in args.iter().zip(row) {
        match a {
            ArgSpec::Const(c) => {
                if *c != v {
                    return false;
                }
            }
            ArgSpec::Var(s) => match env[*s as usize] {
                Some(b) => {
                    if b != v {
                        return false;
                    }
                }
                None => {
                    env[*s as usize] = Some(v);
                    trail.push(*s);
                }
            },
        }
    }
    true
}

pub(crate) fn unwind(env: &mut [Option<IVal>], trail: &mut Vec<u16>, mark: usize) {
    for &s in &trail[mark..] {
        env[s as usize] = None;
    }
    trail.truncate(mark);
}

/// Evaluates `program` over `edb` with indexed hash joins, returning
/// the full model (EDB + derived facts) and statistics.
pub fn evaluate(program: &Program, edb: &Database) -> DatalogResult<(Database, EvalStats)> {
    program.validate()?;
    let strat = stratify(program)?;
    let mut total = edb.clone();
    let mut stats = EvalStats::default();

    for stratum_rules in &strat.rules_per_stratum {
        let rules: Vec<CRule> = stratum_rules
            .iter()
            .map(|&i| compile(&program.rules[i]))
            .collect::<DatalogResult<_>>()?;
        let idb: HashSet<Symbol> = rules.iter().map(|r| r.head_pred).collect();

        // Round 1: naive evaluation against everything known so far.
        let mut delta = Database::new();
        stats.rounds += 1;
        let ctx = JoinCtx {
            total: &total,
            delta: None,
            delta_pos: usize::MAX,
        };
        for rule in &rules {
            let mut env = vec![None; rule.nslots];
            let mut trail = Vec::new();
            ctx.join(rule, 0, &mut env, &mut trail, &mut stats, &mut |row| {
                if !ctx.total.contains_ivals(rule.head_pred, row) {
                    delta.insert_ivals(rule.head_pred, row)?;
                }
                Ok(())
            })?;
        }
        stats.new_facts += total.absorb(&delta)?;

        // Semi-naive rounds: one rule version per positive literal over
        // an IDB predicate of this stratum, that literal restricted to
        // the previous round's delta.
        while delta.total() > 0 {
            stats.rounds += 1;
            let mut next = Database::new();
            for rule in &rules {
                for (pos, lit) in rule.lits.iter().enumerate() {
                    if lit.negated || !idb.contains(&lit.pred) {
                        continue;
                    }
                    if delta.rel(lit.pred).is_none_or(|r| r.len() == 0) {
                        continue;
                    }
                    let ctx = JoinCtx {
                        total: &total,
                        delta: Some(&delta),
                        delta_pos: pos,
                    };
                    let mut env = vec![None; rule.nslots];
                    let mut trail = Vec::new();
                    ctx.join(rule, 0, &mut env, &mut trail, &mut stats, &mut |row| {
                        if !ctx.total.contains_ivals(rule.head_pred, row) {
                            next.insert_ivals(rule.head_pred, row)?;
                        }
                        Ok(())
                    })?;
                }
            }
            stats.new_facts += total.absorb(&next)?;
            delta = next;
        }
    }
    stats.publish();
    Ok((total, stats))
}

// ---------------------------------------------------------------------
// The legacy scan evaluator (pre-index join core), kept verbatim for
// ablation benchmarks and differential testing.
// ---------------------------------------------------------------------

type Env = HashMap<String, Value>;

fn bind(term: &Term, env: &Env) -> Option<Value> {
    match term {
        Term::Const(v) => Some(v.clone()),
        Term::Var(v) => env.get(v).cloned(),
    }
}

fn match_tuple(args: &[Term], tuple: &[Value], env: &Env) -> Option<Env> {
    let mut env = env.clone();
    for (t, v) in args.iter().zip(tuple) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(name) => match env.get(name) {
                Some(bound) if bound != v => return None,
                Some(_) => {}
                None => {
                    env.insert(name.clone(), v.clone());
                }
            },
        }
    }
    Some(env)
}

/// Orders body literals: positives first (source order), negatives
/// last, so safety guarantees groundness when a negation is reached.
fn ordered_body(rule: &Rule) -> Vec<&Literal> {
    let mut out: Vec<&Literal> = rule.body.iter().filter(|l| !l.negated).collect();
    out.extend(rule.body.iter().filter(|l| l.negated));
    out
}

/// The planner's join order and binding-pattern masks for `rule`,
/// exposed for cost estimation: one entry per body literal in
/// evaluation order (positives first, negatives last — exactly
/// [`ordered_body`]), carrying the index of the literal in
/// `rule.body` and the bound-positions mask the join will probe with
/// (constants plus variables bound by earlier literals). Positions
/// ≥ 32 are never masked, mirroring [`compile`].
pub fn plan_masks(rule: &Rule) -> Vec<(usize, u32)> {
    let mut order: Vec<usize> = (0..rule.body.len())
        .filter(|&i| !rule.body[i].negated)
        .collect();
    order.extend((0..rule.body.len()).filter(|&i| rule.body[i].negated));
    let mut bound: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(order.len());
    for i in order {
        let lit = &rule.body[i];
        let mut mask: u32 = 0;
        let mut newly = Vec::new();
        for (j, t) in lit.atom.args.iter().enumerate() {
            match t {
                Term::Const(_) => {
                    if j < 32 {
                        mask |= 1 << j;
                    }
                }
                Term::Var(name) => {
                    if bound.contains(name.as_str()) {
                        if j < 32 {
                            mask |= 1 << j;
                        }
                    } else {
                        newly.push(name.as_str());
                    }
                }
            }
        }
        bound.extend(newly);
        out.push((i, mask));
    }
    out
}

/// Joins the rule body against `total` by scanning each relation, with
/// body position `delta_pos` restricted to `delta` if given.
fn join_body(
    body: &[&Literal],
    pos: usize,
    env: &Env,
    total: &Database,
    delta: Option<(&Database, usize)>,
    out: &mut Vec<Env>,
    stats: &mut EvalStats,
) -> DatalogResult<()> {
    if pos == body.len() {
        stats.derivations += 1;
        out.push(env.clone());
        return Ok(());
    }
    let lit = body[pos];
    if lit.negated {
        let mut tuple = Vec::with_capacity(lit.atom.args.len());
        for t in &lit.atom.args {
            match bind(t, env) {
                Some(v) => tuple.push(v),
                None => {
                    return Err(DatalogError::NonGroundNegation(lit.atom.to_string()));
                }
            }
        }
        if !total.contains(&lit.atom.pred, &tuple) {
            join_body(body, pos + 1, env, total, delta, out, stats)?;
        }
        return Ok(());
    }
    let source = match delta {
        Some((d, dp)) if dp == pos => d,
        _ => total,
    };
    // Same old-state discipline as the indexed core: positions before
    // the delta position skip tuples from this round's delta, so each
    // derivation is attempted by exactly one rule version.
    let exclude = match delta {
        Some((d, dp)) if pos < dp => Some(d),
        _ => None,
    };
    for tuple in source.tuples(&lit.atom.pred) {
        stats.tuples_scanned += 1;
        if exclude.is_some_and(|d| d.contains(&lit.atom.pred, &tuple)) {
            continue;
        }
        if let Some(env2) = match_tuple(&lit.atom.args, &tuple, env) {
            join_body(body, pos + 1, &env2, total, delta, out, stats)?;
        }
    }
    Ok(())
}

fn head_tuple(rule: &Rule, env: &Env) -> DatalogResult<Vec<Value>> {
    rule.head
        .args
        .iter()
        .map(|t| {
            bind(t, env).ok_or_else(|| {
                DatalogError::UnsafeRule(format!("unbound head variable in `{rule}`"))
            })
        })
        .collect()
}

/// Evaluates `program` over `edb` with the pre-index scan join core:
/// every literal scans its whole relation and unifies tuple by tuple.
/// Same model as [`evaluate`]; kept for ablation and differential
/// testing. `index_probes` stays 0 on this path.
pub fn evaluate_scan(program: &Program, edb: &Database) -> DatalogResult<(Database, EvalStats)> {
    program.validate()?;
    let strat = stratify(program)?;
    let mut total = edb.clone();
    let mut stats = EvalStats::default();

    for stratum_rules in &strat.rules_per_stratum {
        let rules: Vec<&Rule> = stratum_rules.iter().map(|&i| &program.rules[i]).collect();
        let idb: Vec<&str> = rules.iter().map(|r| r.head.pred.as_str()).collect();

        // Round 1: naive evaluation against everything known so far.
        let mut delta = Database::new();
        stats.rounds += 1;
        for rule in &rules {
            let body = ordered_body(rule);
            let mut envs = Vec::new();
            join_body(&body, 0, &Env::new(), &total, None, &mut envs, &mut stats)?;
            for env in envs {
                let t = head_tuple(rule, &env)?;
                if !total.contains(&rule.head.pred, &t) {
                    delta.insert(&rule.head.pred, t)?;
                }
            }
        }
        stats.new_facts += total.absorb(&delta)?;

        // Semi-naive rounds.
        while delta.total() > 0 {
            stats.rounds += 1;
            let mut next = Database::new();
            for rule in &rules {
                let body = ordered_body(rule);
                for (pos, lit) in body.iter().enumerate() {
                    if lit.negated || !idb.contains(&lit.atom.pred.as_str()) {
                        continue;
                    }
                    if delta.count(&lit.atom.pred) == 0 {
                        continue;
                    }
                    let mut envs = Vec::new();
                    join_body(
                        &body,
                        0,
                        &Env::new(),
                        &total,
                        Some((&delta, pos)),
                        &mut envs,
                        &mut stats,
                    )?;
                    for env in envs {
                        let t = head_tuple(rule, &env)?;
                        if !total.contains(&rule.head.pred, &t) {
                            next.insert(&rule.head.pred, t)?;
                        }
                    }
                }
            }
            stats.new_facts += total.absorb(&next)?;
            delta = next;
        }
    }
    stats.publish();
    Ok((total, stats))
}

/// Convenience: evaluates and returns the tuples of one predicate,
/// sorted for deterministic comparison.
pub fn evaluate_pred(
    program: &Program,
    edb: &Database,
    pred: &str,
) -> DatalogResult<Vec<Vec<Value>>> {
    let (model, _) = evaluate(program, edb)?;
    let mut out: Vec<Vec<Value>> = model.tuples(pred).collect();
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (a, b) in pairs {
            db.insert("edge", vec![Value::sym(*a), Value::sym(*b)])
                .unwrap();
        }
        db
    }

    const TC: &str = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).";

    #[test]
    fn transitive_closure() {
        let p = Program::parse(TC).unwrap();
        let db = edges(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let paths = evaluate_pred(&p, &db, "path").unwrap();
        assert_eq!(paths.len(), 6); // ab ac ad bc bd cd
        assert!(paths.contains(&vec![Value::sym("a"), Value::sym("d")]));
    }

    #[test]
    fn cyclic_graph_terminates() {
        let p = Program::parse(TC).unwrap();
        let db = edges(&[("a", "b"), ("b", "a")]);
        let paths = evaluate_pred(&p, &db, "path").unwrap();
        // aa ab ba bb
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn stratified_negation() {
        let p = Program::parse(
            "reach(X) :- source(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut db = edges(&[("a", "b"), ("c", "d")]);
        for n in ["a", "b", "c", "d"] {
            db.insert("node", vec![Value::sym(n)]).unwrap();
        }
        db.insert("source", vec![Value::sym("a")]).unwrap();
        let unreached = evaluate_pred(&p, &db, "unreached").unwrap();
        assert_eq!(
            unreached,
            vec![vec![Value::sym("c")], vec![Value::sym("d")]]
        );
    }

    #[test]
    fn facts_in_program() {
        let p = Program::parse(
            "edge(a, b).\nedge(b, c).\npath(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let paths = evaluate_pred(&p, &Database::new(), "path").unwrap();
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn same_generation() {
        let p = Program::parse(
            "sg(X, X) :- person(X).\n\
             sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).",
        )
        .unwrap();
        let mut db = Database::new();
        for x in ["ann", "bob", "cal", "dee"] {
            db.insert("person", vec![Value::sym(x)]).unwrap();
        }
        db.insert("parent", vec![Value::sym("ann"), Value::sym("cal")])
            .unwrap();
        db.insert("parent", vec![Value::sym("bob"), Value::sym("cal")])
            .unwrap();
        let sg = evaluate_pred(&p, &db, "sg").unwrap();
        assert!(sg.contains(&vec![Value::sym("ann"), Value::sym("bob")]));
        assert!(sg.contains(&vec![Value::sym("bob"), Value::sym("ann")]));
        assert!(!sg.contains(&vec![Value::sym("ann"), Value::sym("dee")]));
    }

    #[test]
    fn constants_in_rule_bodies() {
        let p = Program::parse("special(X) :- edge(a, X).").unwrap();
        let db = edges(&[("a", "b"), ("b", "c")]);
        let s = evaluate_pred(&p, &db, "special").unwrap();
        assert_eq!(s, vec![vec![Value::sym("b")]]);
    }

    #[test]
    fn repeated_head_and_body_variables() {
        // p(X, X)-style literals must check equality at match time, not
        // through the probe key (only the first occurrence binds).
        let p = Program::parse("loop(X) :- edge(X, X).\nrefl(X, X) :- node(X).").unwrap();
        let mut db = edges(&[("a", "a"), ("a", "b"), ("b", "b")]);
        db.insert("node", vec![Value::sym("n")]).unwrap();
        let loops = evaluate_pred(&p, &db, "loop").unwrap();
        assert_eq!(loops, vec![vec![Value::sym("a")], vec![Value::sym("b")]]);
        let refl = evaluate_pred(&p, &db, "refl").unwrap();
        assert_eq!(refl, vec![vec![Value::sym("n"), Value::sym("n")]]);
    }

    #[test]
    fn stats_report_semi_naive_rounds() {
        let p = Program::parse(TC).unwrap();
        // A chain of length 20 needs ~20 rounds.
        let mut db = Database::new();
        for i in 0..20 {
            db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        let (model, stats) = evaluate(&p, &db).unwrap();
        assert_eq!(model.count("path"), 20 * 21 / 2);
        assert!(stats.rounds >= 20, "rounds = {}", stats.rounds);
        assert_eq!(stats.new_facts, model.count("path"));
    }

    #[test]
    fn indexed_join_probes_indexes() {
        let p = Program::parse(TC).unwrap();
        let mut db = Database::new();
        for i in 0..20 {
            db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        let (_, stats) = evaluate(&p, &db).unwrap();
        assert!(stats.index_probes > 0, "recursive rule must probe");
        let (_, scan_stats) = evaluate_scan(&p, &db).unwrap();
        assert_eq!(scan_stats.index_probes, 0);
        assert!(
            stats.tuples_scanned < scan_stats.tuples_scanned,
            "indexed: {} vs scan: {}",
            stats.tuples_scanned,
            scan_stats.tuples_scanned
        );
    }

    #[test]
    fn stats_invariants_new_facts_bounded_by_derivations() {
        let programs = [
            TC,
            "sg(X, X) :- person(X).\nsg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).",
            "reach(X) :- source(X).\nreach(Y) :- reach(X), edge(X, Y).\n\
             unreached(X) :- node(X), not reach(X).",
        ];
        let mut db = edges(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
        for n in ["a", "b", "c", "d"] {
            db.insert("node", vec![Value::sym(n)]).unwrap();
            db.insert("person", vec![Value::sym(n)]).unwrap();
        }
        db.insert("source", vec![Value::sym("a")]).unwrap();
        db.insert("parent", vec![Value::sym("a"), Value::sym("c")])
            .unwrap();
        db.insert("parent", vec![Value::sym("b"), Value::sym("c")])
            .unwrap();
        for src in programs {
            let p = Program::parse(src).unwrap();
            let mut counts = Vec::new();
            for eval in [evaluate, evaluate_scan] {
                let (model, stats) = eval(&p, &db).unwrap();
                assert!(
                    stats.new_facts <= stats.derivations,
                    "new_facts {} > derivations {} for `{src}`",
                    stats.new_facts,
                    stats.derivations
                );
                assert!(stats.new_facts <= model.total());
                assert!(stats.rounds >= 1);
                counts.push(stats.derivations);
            }
            // Exactly-once counting is an engine invariant, not an
            // artifact of the join order: both cores must agree.
            assert_eq!(
                counts[0], counts[1],
                "indexed and scan derivation counts diverge for `{src}`"
            );
        }
    }

    #[test]
    fn derivations_count_each_instantiation_exactly_once() {
        // p is both directly derived from e and closed transitively:
        //   p(X, Y) :- e(X, Y).
        //   p(X, Z) :- p(X, Y), p(Y, Z).
        // Over the chain 1→2→3→4 the correct exactly-once count is 7:
        // three rule-1 instantiations plus the four composable pairs
        // Σ_y |p(*, y)| · |p(y, *)| = (12,23) (12,24) (13,34) (23,34).
        // A join that reads the absorbed total at every non-delta
        // position counts pairs with both sides in the same delta
        // round twice (9 here).
        let p = Program::parse("p(X, Y) :- e(X, Y).\np(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut db = Database::new();
        for i in 1..4 {
            db.insert("e", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        for eval in [evaluate, evaluate_scan] {
            let (model, stats) = eval(&p, &db).unwrap();
            assert_eq!(model.count("p"), 6);
            assert_eq!(stats.new_facts, 6);
            assert_eq!(
                stats.derivations, 7,
                "each instantiation must be attempted exactly once"
            );
        }
    }

    #[test]
    fn derivations_exactly_once_on_same_generation() {
        // The recursive literal flanked by EDB literals: the delta
        // version at position 1 must keep reading the full parent
        // relation on both sides, so the old-state discipline only
        // filters same-stratum delta tuples, never EDB tuples.
        let p = Program::parse(
            "sg(X, X) :- person(X).\n\
             sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).",
        )
        .unwrap();
        let mut db = Database::new();
        for x in ["ann", "bob", "cal"] {
            db.insert("person", vec![Value::sym(x)]).unwrap();
        }
        db.insert("parent", vec![Value::sym("ann"), Value::sym("cal")])
            .unwrap();
        db.insert("parent", vec![Value::sym("bob"), Value::sym("cal")])
            .unwrap();
        // Round 1: 3 person seeds, sg join finds nothing (sg empty).
        // Round 2 (delta = {aa, bb, cc}): rule 2 derives aa, ab, ba, bb
        // through sg(cal, cal) — 4 instantiations, each via exactly one
        // delta position. Round 3 (delta = {ab, ba}): sg(cal, ·) has no
        // new pairs. Exactly-once total: 3 + 4 = 7.
        for eval in [evaluate, evaluate_scan] {
            let (model, stats) = eval(&p, &db).unwrap();
            assert_eq!(model.count("sg"), 5); // aa bb cc ab ba
            assert_eq!(stats.derivations, 7, "seed 3 + pair joins 4");
        }
    }

    #[test]
    fn stats_rounds_monotone_in_chain_depth() {
        let p = Program::parse(TC).unwrap();
        let mut prev_rounds = 0;
        for depth in [4, 8, 16, 32] {
            let mut db = Database::new();
            for i in 0..depth {
                db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                    .unwrap();
            }
            let (_, stats) = evaluate(&p, &db).unwrap();
            assert!(
                stats.rounds > prev_rounds,
                "depth {depth}: rounds {} not > {prev_rounds}",
                stats.rounds
            );
            prev_rounds = stats.rounds;
        }
    }

    #[test]
    fn scan_and_indexed_agree() {
        let sources = [
            TC,
            "special(X) :- edge(a, X).",
            "reach(X) :- source(X).\nreach(Y) :- reach(X), edge(X, Y).\n\
             unreached(X) :- node(X), not reach(X).",
        ];
        let mut db = edges(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
        for n in ["a", "b", "c", "d", "e"] {
            db.insert("node", vec![Value::sym(n)]).unwrap();
        }
        db.insert("source", vec![Value::sym("a")]).unwrap();
        for src in sources {
            let p = Program::parse(src).unwrap();
            let (m1, _) = evaluate(&p, &db).unwrap();
            let (m2, _) = evaluate_scan(&p, &db).unwrap();
            for pred in m2.preds() {
                let mut a: Vec<Vec<Value>> = m1.tuples(pred).collect();
                let mut b: Vec<Vec<Value>> = m2.tuples(pred).collect();
                a.sort();
                b.sort();
                assert_eq!(a, b, "engines disagree on `{pred}` for `{src}`");
            }
        }
    }

    #[test]
    fn unstratifiable_rejected() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        assert!(evaluate(&p, &Database::new()).is_err());
    }

    #[test]
    fn empty_program_returns_edb() {
        let db = edges(&[("a", "b")]);
        let (model, stats) = evaluate(&Program::default(), &db).unwrap();
        assert_eq!(model.count("edge"), 1);
        assert_eq!(stats.new_facts, 0);
    }
}
