//! Incremental view maintenance: maintain the deduced model under
//! TELL/UNTELL deltas instead of recomputing it.
//!
//! The paper names deductive query efficiency as *the* open problem
//! (§4); a [`MaterializedView`] keeps the full model of a program
//! materialized and folds every extensional change into it:
//!
//! * **Counting** for non-recursive strata: each derived tuple carries
//!   the number of rule instantiations supporting it, an instantiation
//!   delta is computed exactly once per changed body position, and the
//!   tuple's presence flips only on 0↔1 support transitions.
//! * **DRed** (delete-and-rederive) for recursive strata: deletions are
//!   over-approximated through the old state, survivors with an
//!   alternative derivation in the new state are rederived, then a
//!   semi-naive insertion pass folds in the new tuples.
//!
//! Strata here are finer than [`crate::stratify`]'s negation levels:
//! each level is split into strongly connected components of the
//! head-predicate dependency graph, so `q(X) :- p(X).` stays a cheap
//! counting stratum even when `p` is recursive. Negated predicates are
//! always in an earlier stratum (guaranteed by stratification), so a
//! negated literal is a ground membership test against a finished
//! state by the time a join reaches it.
//!
//! The extensional base itself is counted: re-telling a present fact
//! raises its support, and an UNTELL only removes the fact — and
//! propagates a deletion delta — when no independent support remains.

use crate::ast::{Program, Value};
use crate::db::Database;
use crate::error::{DatalogError, DatalogResult};
use crate::intern::{intern, IVal, Symbol};
use crate::seminaive::{compile, match_row, unwind, ArgSpec, CRule};
use crate::stratify::stratify;
use std::collections::{HashMap, HashSet};

/// A ground fact addressed by predicate name: one TELL or UNTELL unit.
pub type Fact = (String, Vec<Value>);

/// Statistics for one [`MaterializedView::apply`] refresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Extensional tuples whose presence flipped to present.
    pub edb_inserts: usize,
    /// Extensional tuples whose presence flipped to absent.
    pub edb_deletes: usize,
    /// Derived tuples whose presence flipped either way.
    pub derived_changes: usize,
}

impl ApplyStats {
    /// Total presence-changing delta tuples this refresh moved.
    pub fn delta_tuples(&self) -> usize {
        self.edb_inserts + self.edb_deletes + self.derived_changes
    }

    /// Accumulates the refresh into the process-wide [`obs`] registry.
    pub fn publish(&self) {
        obs::counter!(
            "datalog_ivm_refreshes_total",
            "Incremental view refreshes applied"
        )
        .inc();
        obs::counter!(
            "datalog_ivm_delta_tuples_total",
            "Presence-changing delta tuples propagated through views"
        )
        .add(self.delta_tuples() as u64);
    }
}

/// One maintenance stratum: the rules of one SCC of the head-predicate
/// dependency graph, with the maintenance strategy chosen for it.
#[derive(Debug, Clone)]
struct Stratum {
    rules: Vec<CRule>,
    heads: HashSet<Symbol>,
    /// Recursive strata are maintained with DRed, the rest by counting.
    recursive: bool,
}

/// A materialized model of a datalog program, maintained incrementally.
///
/// Built empty from a program; the extensional database is loaded (and
/// later churned) through [`MaterializedView::apply`], which propagates
/// the change through every stratum and leaves [`MaterializedView::model`]
/// equal to what [`crate::seminaive::evaluate`] would recompute.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    program: Program,
    strata: Vec<Stratum>,
    idb: HashSet<Symbol>,
    edb: Database,
    /// TELL multiplicity per extensional tuple.
    edb_support: HashMap<(Symbol, Vec<IVal>), i64>,
    model: Database,
    /// Instantiation counts per derived tuple of the counting strata.
    idb_support: HashMap<(Symbol, Vec<IVal>), i64>,
}

impl MaterializedView {
    /// Compiles `program` into maintenance strata. The view starts with
    /// an empty extensional database: the initial load is just the
    /// first [`MaterializedView::apply`] batch.
    pub fn new(program: Program) -> DatalogResult<Self> {
        program.validate()?;
        stratify(&program)?;
        let strata = build_strata(&program)?;
        let idb = strata
            .iter()
            .flat_map(|s| s.heads.iter().copied())
            .collect();
        Ok(MaterializedView {
            program,
            strata,
            idb,
            edb: Database::new(),
            edb_support: HashMap::new(),
            model: Database::new(),
            idb_support: HashMap::new(),
        })
    }

    /// The program this view materializes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The maintained model: extensional plus derived tuples. Probe it
    /// with the usual [`Database`] reads; it is never stale between
    /// [`MaterializedView::apply`] calls.
    pub fn model(&self) -> &Database {
        &self.model
    }

    /// The current extensional database (presence, not multiplicity).
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// TELL multiplicity of an extensional tuple (0 when absent).
    pub fn support(&self, pred: &str, tuple: &[Value]) -> i64 {
        let sym = intern(pred);
        let row: Vec<IVal> = tuple.iter().map(IVal::from_value).collect();
        self.edb_support.get(&(sym, row)).copied().unwrap_or(0)
    }

    /// Folds one batch of extensional changes into the model. Deletes
    /// are processed before inserts. A delete of an absent fact is a
    /// no-op; a re-insert of a present fact only raises its support.
    /// Returns the presence-change statistics (also published to
    /// [`obs`]).
    pub fn apply(&mut self, inserts: &[Fact], deletes: &[Fact]) -> DatalogResult<ApplyStats> {
        let mut stats = ApplyStats::default();
        let mut i_all = Database::new();
        let mut d_all = Database::new();

        // Extensional support: presence flips only on 0↔1 transitions,
        // reconciled so a delete+insert of the same fact in one batch
        // nets out instead of reporting both.
        for (pred, tuple) in deletes {
            let sym = intern(pred);
            if self.idb.contains(&sym) {
                return Err(DatalogError::Parse(format!(
                    "`{pred}` is a derived predicate of this view; only extensional facts can be untold"
                )));
            }
            let row: Vec<IVal> = tuple.iter().map(IVal::from_value).collect();
            let was = self
                .edb_support
                .get(&(sym, row.clone()))
                .copied()
                .unwrap_or(0);
            if was == 0 {
                continue;
            }
            if was == 1 {
                self.edb_support.remove(&(sym, row.clone()));
                self.edb.remove_ivals(sym, &row);
                if i_all.contains_ivals(sym, &row) {
                    i_all.remove_ivals(sym, &row);
                } else {
                    d_all.insert_ivals(sym, &row)?;
                }
            } else {
                self.edb_support.insert((sym, row), was - 1);
            }
        }
        for (pred, tuple) in inserts {
            let sym = intern(pred);
            if self.idb.contains(&sym) {
                return Err(DatalogError::Parse(format!(
                    "`{pred}` is a derived predicate of this view; only extensional facts can be told"
                )));
            }
            let row: Vec<IVal> = tuple.iter().map(IVal::from_value).collect();
            let was = self
                .edb_support
                .get(&(sym, row.clone()))
                .copied()
                .unwrap_or(0);
            self.edb_support.insert((sym, row.clone()), was + 1);
            if was == 0 {
                self.edb.insert_ivals(sym, &row)?;
                if d_all.contains_ivals(sym, &row) {
                    d_all.remove_ivals(sym, &row);
                } else {
                    i_all.insert_ivals(sym, &row)?;
                }
            }
        }
        stats.edb_inserts = i_all.total();
        stats.edb_deletes = d_all.total();

        // Propagate stratum by stratum. `model` stays the old state
        // throughout; `i_all`/`d_all` carry old→new presence changes of
        // every already-processed predicate.
        let MaterializedView {
            strata,
            model,
            idb_support,
            ..
        } = self;
        for st in strata.iter() {
            stats.derived_changes += if st.recursive {
                dred_apply(st, model, &mut i_all, &mut d_all)?
            } else {
                counting_apply(st, model, &mut i_all, &mut d_all, idb_support)?
            };
        }

        // Commit: the old model becomes the new one.
        let removals: Vec<(Symbol, Vec<IVal>)> = d_all
            .iter_rels()
            .flat_map(|(sym, rel)| rel.rows().map(move |r| (sym, r.to_vec())))
            .collect();
        for (sym, row) in removals {
            self.model.remove_ivals(sym, &row);
        }
        self.model.absorb(&i_all)?;
        stats.publish();
        Ok(stats)
    }

    /// Rebuilds the model from scratch (used after changes too coarse
    /// to express as deltas); the extensional support is preserved.
    pub fn rebuild(&mut self) -> DatalogResult<()> {
        let (model, _) = crate::seminaive::evaluate(&self.program, &self.edb)?;
        self.model = model;
        self.idb_support.clear();
        let MaterializedView {
            strata,
            model,
            idb_support,
            ..
        } = self;
        for st in strata.iter().filter(|s| !s.recursive) {
            recount_stratum(st, model, idb_support)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Stratum construction: SCCs of the head-predicate dependency graph.
// ---------------------------------------------------------------------

fn build_strata(program: &Program) -> DatalogResult<Vec<Stratum>> {
    // Head predicates in first-seen order, with edges head → IDB body.
    let mut order: Vec<String> = Vec::new();
    let mut id: HashMap<String, usize> = HashMap::new();
    for r in &program.rules {
        if !id.contains_key(&r.head.pred) {
            id.insert(r.head.pred.clone(), order.len());
            order.push(r.head.pred.clone());
        }
    }
    let n = order.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in &program.rules {
        let h = id[&r.head.pred];
        for l in &r.body {
            if let Some(&b) = id.get(&l.atom.pred) {
                if !edges[h].contains(&b) {
                    edges[h].push(b);
                }
            }
        }
    }
    // Tarjan emits SCCs dependencies-first along head → body edges,
    // which is exactly evaluation order. Negated body predicates land
    // in an earlier SCC because stratification already rejected any
    // cycle through a negative edge.
    let sccs = tarjan_sccs(n, &edges);
    let mut strata = Vec::with_capacity(sccs.len());
    for scc in sccs {
        let names: HashSet<&str> = scc.iter().map(|&i| order[i].as_str()).collect();
        let mut rules = Vec::new();
        let mut recursive = scc.len() > 1;
        for r in &program.rules {
            if !names.contains(r.head.pred.as_str()) {
                continue;
            }
            if r.body.iter().any(|l| names.contains(l.atom.pred.as_str())) {
                recursive = true;
            }
            rules.push(compile(r)?);
        }
        strata.push(Stratum {
            rules,
            heads: names.iter().map(|s| intern(s)).collect(),
            recursive,
        });
    }
    Ok(strata)
}

/// Tarjan's algorithm; returns SCCs in reverse topological order of the
/// condensation (every SCC after the SCCs it depends on).
fn tarjan_sccs(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        edges: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn visit(s: &mut State, v: usize) {
        let i = s.next;
        s.next += 1;
        s.index[v] = Some(i);
        s.low[v] = i;
        s.stack.push(v);
        s.on_stack[v] = true;
        for k in 0..s.edges[v].len() {
            let w = s.edges[v][k];
            match s.index[w] {
                None => {
                    visit(s, w);
                    s.low[v] = s.low[v].min(s.low[w]);
                }
                Some(wi) if s.on_stack[w] => s.low[v] = s.low[v].min(wi),
                Some(_) => {}
            }
        }
        if s.low[v] == i {
            let mut scc = Vec::new();
            loop {
                let w = s.stack.pop().expect("tarjan stack");
                s.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            s.out.push(scc);
        }
    }
    let mut s = State {
        edges,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if s.index[v].is_none() {
            visit(&mut s, v);
        }
    }
    s.out
}

// ---------------------------------------------------------------------
// The delta join core: one join over per-position source overlays.
// ---------------------------------------------------------------------

/// Where one body position reads from during a delta join. Positive
/// sources are overlays `(∪ parts) \ (∪ minus)` with pairwise-disjoint
/// parts, so iteration never visits a tuple twice.
enum PosCfg<'a> {
    /// Positive literal over an overlay state.
    Pos {
        parts: Vec<&'a Database>,
        minus: Vec<&'a Database>,
    },
    /// Positive literal restricted to a delta relation.
    PosDelta(&'a Database),
    /// Negated literal: the ground tuple must be absent from the state.
    NegAbsent {
        parts: Vec<&'a Database>,
        minus: Vec<&'a Database>,
    },
    /// Negated literal in the delta role: the ground tuple must be in
    /// the flipped set (inserts when deleting, deletes when inserting).
    NegIn(&'a Database),
}

fn ground_lit(args: &[ArgSpec], pred: Symbol, env: &[Option<IVal>]) -> DatalogResult<Vec<IVal>> {
    let mut row = Vec::with_capacity(args.len());
    for a in args {
        match a {
            ArgSpec::Const(c) => row.push(*c),
            ArgSpec::Var(s) => match env[*s as usize] {
                Some(v) => row.push(v),
                None => return Err(DatalogError::NonGroundNegation(pred.as_str().to_string())),
            },
        }
    }
    Ok(row)
}

fn in_state(parts: &[&Database], minus: &[&Database], pred: Symbol, row: &[IVal]) -> bool {
    parts.iter().any(|d| d.contains_ivals(pred, row))
        && !minus.iter().any(|d| d.contains_ivals(pred, row))
}

/// The join order for one delta rule: the delta literal (when
/// positive) first, so the join is driven by the change rather than by
/// a scan of the full state, then the remaining positive literals in
/// rule order, then the negations — ground by rule safety once every
/// positive literal has run. The result multiset of a join does not
/// depend on literal order, so counting semantics are unaffected.
fn join_order(rule: &CRule, cfgs: &[PosCfg]) -> Vec<usize> {
    let delta_pos = cfgs.iter().position(|c| matches!(c, PosCfg::PosDelta(_)));
    let mut order = Vec::with_capacity(rule.lits.len());
    order.extend(delta_pos);
    for (i, l) in rule.lits.iter().enumerate() {
        if Some(i) != delta_pos && !l.negated {
            order.push(i);
        }
    }
    for (i, l) in rule.lits.iter().enumerate() {
        if Some(i) != delta_pos && l.negated {
            order.push(i);
        }
    }
    order
}

/// Joins the literals `order[pos..]` with each position reading its
/// configured source, pushing every complete head instantiation
/// (duplicates included — counting needs them) onto `out`.
fn join_cfg(
    rule: &CRule,
    cfgs: &[PosCfg],
    order: &[usize],
    pos: usize,
    env: &mut [Option<IVal>],
    trail: &mut Vec<u16>,
    out: &mut Vec<Vec<IVal>>,
) -> DatalogResult<()> {
    if pos == order.len() {
        let row: Vec<IVal> = rule
            .head
            .iter()
            .map(|a| match a {
                ArgSpec::Const(c) => *c,
                ArgSpec::Var(s) => env[*s as usize].expect("safety: head var bound"),
            })
            .collect();
        out.push(row);
        return Ok(());
    }
    let lit = &rule.lits[order[pos]];
    match &cfgs[order[pos]] {
        PosCfg::NegAbsent { parts, minus } => {
            let row = ground_lit(&lit.args, lit.pred, env)?;
            if !in_state(parts, minus, lit.pred, &row) {
                join_cfg(rule, cfgs, order, pos + 1, env, trail, out)?;
            }
        }
        PosCfg::NegIn(db) => {
            let row = ground_lit(&lit.args, lit.pred, env)?;
            if db.contains_ivals(lit.pred, &row) {
                join_cfg(rule, cfgs, order, pos + 1, env, trail, out)?;
            }
        }
        PosCfg::Pos { parts, minus } => {
            for part in parts {
                scan_part(rule, cfgs, order, pos, part, minus, env, trail, out)?;
            }
        }
        PosCfg::PosDelta(db) => scan_part(rule, cfgs, order, pos, db, &[], env, trail, out)?,
    }
    Ok(())
}

/// Iterates the matches of `rule.lits[order[pos]]` in one overlay
/// part, skipping rows subtracted by `minus`, and recurses.
///
/// The binding-pattern mask is computed from the *runtime* env, not
/// taken from the compiled literal: delta joins run the literals out
/// of rule order (delta first, or seeded from a head tuple during
/// rederivation), so the compile-time left-to-right mask would miss
/// bindings and degrade indexed probes to full scans of the model.
#[allow(clippy::too_many_arguments)]
fn scan_part(
    rule: &CRule,
    cfgs: &[PosCfg],
    order: &[usize],
    pos: usize,
    part: &Database,
    minus: &[&Database],
    env: &mut [Option<IVal>],
    trail: &mut Vec<u16>,
    out: &mut Vec<Vec<IVal>>,
) -> DatalogResult<()> {
    let lit = &rule.lits[order[pos]];
    let Some(rel) = part.rel(lit.pred) else {
        return Ok(());
    };
    if rel.arity != lit.args.len() {
        return Ok(());
    }
    let mut mask: u32 = 0;
    for (j, a) in lit.args.iter().enumerate() {
        let bound = match a {
            ArgSpec::Const(_) => true,
            ArgSpec::Var(s) => env[*s as usize].is_some(),
        };
        if bound {
            mask |= 1 << j;
        }
    }
    let mark = trail.len();
    if mask != 0 && mask.count_ones() as usize == lit.args.len() {
        // Fully ground: a membership probe, no index needed.
        let row = ground_lit(&lit.args, lit.pred, env)?;
        if part.contains_ivals(lit.pred, &row)
            && !minus.iter().any(|d| d.contains_ivals(lit.pred, &row))
        {
            join_cfg(rule, cfgs, order, pos + 1, env, trail, out)?;
        }
    } else if mask != 0 {
        let key: Vec<IVal> = lit
            .args
            .iter()
            .enumerate()
            .filter(|(j, _)| mask & (1 << j) != 0)
            .map(|(_, a)| match a {
                ArgSpec::Const(c) => *c,
                ArgSpec::Var(s) => env[*s as usize].expect("masked var bound"),
            })
            .collect();
        let index = rel.index_for(mask);
        if let Some(ids) = index.get(&key) {
            for &id in ids {
                let row = rel.row(id);
                if minus.iter().any(|d| d.contains_ivals(lit.pred, row)) {
                    continue;
                }
                if match_row(&lit.args, row, env, trail) {
                    join_cfg(rule, cfgs, order, pos + 1, env, trail, out)?;
                }
                unwind(env, trail, mark);
            }
        }
    } else {
        for row in rel.rows() {
            if minus.iter().any(|d| d.contains_ivals(lit.pred, row)) {
                continue;
            }
            if match_row(&lit.args, row, env, trail) {
                join_cfg(rule, cfgs, order, pos + 1, env, trail, out)?;
            }
            unwind(env, trail, mark);
        }
    }
    Ok(())
}

fn run_join(rule: &CRule, cfgs: &[PosCfg]) -> DatalogResult<Vec<Vec<IVal>>> {
    let order = join_order(rule, cfgs);
    let mut env = vec![None; rule.nslots];
    let mut trail = Vec::new();
    let mut out = Vec::new();
    join_cfg(rule, cfgs, &order, 0, &mut env, &mut trail, &mut out)?;
    Ok(out)
}

fn has_pred(db: &Database, pred: Symbol) -> bool {
    db.rel(pred).is_some_and(|r| r.len() > 0)
}

// ---------------------------------------------------------------------
// Counting maintenance (non-recursive strata).
// ---------------------------------------------------------------------

/// Maintains one counting stratum. For each rule and changed position
/// `i`, lost instantiations join old∩new before `i`, the deletions at
/// `i`, and the old state after; gained instantiations join old∩new,
/// the insertions, and the new state. With `i` ranging over the
/// *minimal* changed position, each instantiation delta is counted
/// exactly once, so the per-tuple instantiation counts stay exact and
/// presence flips exactly on 0↔1 support transitions.
fn counting_apply(
    st: &Stratum,
    model: &Database,
    i_all: &mut Database,
    d_all: &mut Database,
    support: &mut HashMap<(Symbol, Vec<IVal>), i64>,
) -> DatalogResult<usize> {
    let mut net: HashMap<(Symbol, Vec<IVal>), i64> = HashMap::new();
    for rule in &st.rules {
        for (i, lit) in rule.lits.iter().enumerate() {
            for deleting in [true, false] {
                let delta_src: &Database = match (deleting, lit.negated) {
                    (true, false) => d_all,
                    (true, true) => i_all,
                    (false, false) => i_all,
                    (false, true) => d_all,
                };
                if !has_pred(delta_src, lit.pred) {
                    continue;
                }
                let cfgs: Vec<PosCfg> = rule
                    .lits
                    .iter()
                    .enumerate()
                    .map(|(j, l)| match j.cmp(&i) {
                        std::cmp::Ordering::Less => {
                            if l.negated {
                                // Holds in both old and new: absent
                                // from old ∪ new = model ∪ inserts.
                                PosCfg::NegAbsent {
                                    parts: vec![model, i_all],
                                    minus: vec![],
                                }
                            } else {
                                // old ∩ new = model \ deletes.
                                PosCfg::Pos {
                                    parts: vec![model],
                                    minus: vec![d_all],
                                }
                            }
                        }
                        std::cmp::Ordering::Equal => {
                            if l.negated {
                                PosCfg::NegIn(delta_src)
                            } else {
                                PosCfg::PosDelta(delta_src)
                            }
                        }
                        std::cmp::Ordering::Greater => {
                            let (parts, minus): (Vec<&Database>, Vec<&Database>) = if deleting {
                                (vec![model], vec![]) // old
                            } else {
                                (vec![model, i_all], vec![d_all]) // new
                            };
                            if l.negated {
                                PosCfg::NegAbsent { parts, minus }
                            } else {
                                PosCfg::Pos { parts, minus }
                            }
                        }
                    })
                    .collect();
                let sign = if deleting { -1 } else { 1 };
                for row in run_join(rule, &cfgs)? {
                    *net.entry((rule.head_pred, row)).or_insert(0) += sign;
                }
            }
        }
    }
    let mut changes = 0;
    for ((sym, row), dn) in net {
        if dn == 0 {
            continue;
        }
        let was = support.get(&(sym, row.clone())).copied().unwrap_or(0);
        let now = was + dn;
        debug_assert!(now >= 0, "support underflow for {}", sym.as_str());
        if now <= 0 {
            support.remove(&(sym, row.clone()));
        } else {
            support.insert((sym, row.clone()), now);
        }
        if was == 0 && now > 0 {
            i_all.insert_ivals(sym, &row)?;
            changes += 1;
        } else if was > 0 && now <= 0 {
            d_all.insert_ivals(sym, &row)?;
            changes += 1;
        }
    }
    Ok(changes)
}

/// Recounts a counting stratum's supports from a settled model (used
/// by [`MaterializedView::rebuild`]).
fn recount_stratum(
    st: &Stratum,
    model: &Database,
    support: &mut HashMap<(Symbol, Vec<IVal>), i64>,
) -> DatalogResult<()> {
    for rule in &st.rules {
        let cfgs: Vec<PosCfg> = rule
            .lits
            .iter()
            .map(|l| {
                if l.negated {
                    PosCfg::NegAbsent {
                        parts: vec![model],
                        minus: vec![],
                    }
                } else {
                    PosCfg::Pos {
                        parts: vec![model],
                        minus: vec![],
                    }
                }
            })
            .collect();
        for row in run_join(rule, &cfgs)? {
            *support.entry((rule.head_pred, row)).or_insert(0) += 1;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// DRed maintenance (recursive strata).
// ---------------------------------------------------------------------

/// Maintains one recursive stratum by delete-and-rederive:
///
/// 1. **Over-delete**: a fixpoint over the *old* state marks every
///    stratum tuple with a derivation consuming a deleted tuple.
/// 2. **Rederive**: marked tuples with an alternative derivation in the
///    new state (which excludes still-marked tuples, so no tuple
///    supports itself) are kept; rederivals cascade until settled.
/// 3. **Insert**: a semi-naive pass folds in derivations enabled by
///    lower-stratum changes, restoring over-deleted tuples or adding
///    brand-new ones, and propagating through the recursion.
fn dred_apply(
    st: &Stratum,
    model: &Database,
    i_all: &mut Database,
    d_all: &mut Database,
) -> DatalogResult<usize> {
    // Over-delete.
    let mut pending = Database::new();
    let mut removed_list: Vec<(Symbol, Vec<IVal>)> = Vec::new();
    let mut frontier = Database::new();
    for rule in &st.rules {
        for (i, lit) in rule.lits.iter().enumerate() {
            if st.heads.contains(&lit.pred) {
                continue; // same-stratum deltas are handled in rounds
            }
            let delta_src: &Database = if lit.negated { i_all } else { d_all };
            if !has_pred(delta_src, lit.pred) {
                continue;
            }
            let cfgs = old_state_cfgs(rule, model, Some((i, delta_src)));
            for row in run_join(rule, &cfgs)? {
                mark_deleted(
                    rule.head_pred,
                    row,
                    model,
                    &mut pending,
                    &mut frontier,
                    &mut removed_list,
                )?;
            }
        }
    }
    while frontier.total() > 0 {
        let mut next = Database::new();
        for rule in &st.rules {
            for (i, lit) in rule.lits.iter().enumerate() {
                if lit.negated || !st.heads.contains(&lit.pred) || !has_pred(&frontier, lit.pred) {
                    continue;
                }
                let cfgs = old_state_cfgs(rule, model, Some((i, &frontier)));
                for row in run_join(rule, &cfgs)? {
                    mark_deleted(
                        rule.head_pred,
                        row,
                        model,
                        &mut pending,
                        &mut next,
                        &mut removed_list,
                    )?;
                }
            }
        }
        frontier = next;
    }

    // Rederive: keep over-deleted tuples that still have a derivation
    // in the new state. A pass can unlock further rederivals, so loop
    // to a fixpoint.
    loop {
        let mut progress = false;
        for (sym, row) in &removed_list {
            if !pending.contains_ivals(*sym, row) {
                continue;
            }
            let mut found = false;
            for rule in st.rules.iter().filter(|r| r.head_pred == *sym) {
                let mut env = vec![None; rule.nslots];
                if !seed_head(rule, row, &mut env) {
                    continue;
                }
                let cfgs = new_state_cfgs(rule, model, i_all, d_all, &pending, None, None);
                let order = join_order(rule, &cfgs);
                let mut trail = Vec::new();
                let mut out = Vec::new();
                join_cfg(rule, &cfgs, &order, 0, &mut env, &mut trail, &mut out)?;
                if !out.is_empty() {
                    found = true;
                    break;
                }
            }
            if found {
                pending.remove_ivals(*sym, row);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    // Insert: semi-naive over the new state, seeded by lower-stratum
    // changes (inserts at positive positions, deletes under negation).
    let mut inserted = Database::new();
    let mut frontier = Database::new();
    for rule in &st.rules {
        for (i, lit) in rule.lits.iter().enumerate() {
            if st.heads.contains(&lit.pred) {
                continue;
            }
            let delta_src: &Database = if lit.negated { d_all } else { i_all };
            if !has_pred(delta_src, lit.pred) {
                continue;
            }
            let out = {
                let cfgs = new_state_cfgs(
                    rule,
                    model,
                    i_all,
                    d_all,
                    &pending,
                    Some(&inserted),
                    Some((i, delta_src)),
                );
                run_join(rule, &cfgs)?
            };
            for row in out {
                admit_insert(
                    rule.head_pred,
                    row,
                    model,
                    &mut pending,
                    &mut inserted,
                    &mut frontier,
                )?;
            }
        }
    }
    while frontier.total() > 0 {
        let mut next = Database::new();
        for rule in &st.rules {
            for (i, lit) in rule.lits.iter().enumerate() {
                if lit.negated || !st.heads.contains(&lit.pred) || !has_pred(&frontier, lit.pred) {
                    continue;
                }
                let out = {
                    let cfgs = new_state_cfgs(
                        rule,
                        model,
                        i_all,
                        d_all,
                        &pending,
                        Some(&inserted),
                        Some((i, &frontier)),
                    );
                    run_join(rule, &cfgs)?
                };
                for row in out {
                    admit_insert(
                        rule.head_pred,
                        row,
                        model,
                        &mut pending,
                        &mut inserted,
                        &mut next,
                    )?;
                }
            }
        }
        frontier = next;
    }

    let changes = pending.total() + inserted.total();
    d_all.absorb(&pending)?;
    i_all.absorb(&inserted)?;
    Ok(changes)
}

/// Every position reads the old state (`model`), except an optional
/// delta position.
fn old_state_cfgs<'a>(
    rule: &CRule,
    model: &'a Database,
    delta: Option<(usize, &'a Database)>,
) -> Vec<PosCfg<'a>> {
    rule.lits
        .iter()
        .enumerate()
        .map(|(j, l)| {
            if let Some((i, d)) = delta {
                if j == i {
                    return if l.negated {
                        PosCfg::NegIn(d)
                    } else {
                        PosCfg::PosDelta(d)
                    };
                }
            }
            if l.negated {
                PosCfg::NegAbsent {
                    parts: vec![model],
                    minus: vec![],
                }
            } else {
                PosCfg::Pos {
                    parts: vec![model],
                    minus: vec![],
                }
            }
        })
        .collect()
}

/// Every position reads the in-progress new state — lower strata as
/// `(model ∪ i_all) \ d_all`, this stratum as
/// `(model \ pending) ∪ inserted` — except an optional delta position.
fn new_state_cfgs<'a>(
    rule: &CRule,
    model: &'a Database,
    i_all: &'a Database,
    d_all: &'a Database,
    pending: &'a Database,
    inserted: Option<&'a Database>,
    delta: Option<(usize, &'a Database)>,
) -> Vec<PosCfg<'a>> {
    rule.lits
        .iter()
        .enumerate()
        .map(|(j, l)| {
            if let Some((i, d)) = delta {
                if j == i {
                    return if l.negated {
                        PosCfg::NegIn(d)
                    } else {
                        PosCfg::PosDelta(d)
                    };
                }
            }
            let mut parts = vec![model, i_all];
            if let Some(ins) = inserted {
                parts.push(ins);
            }
            let minus = vec![d_all, pending];
            if l.negated {
                PosCfg::NegAbsent { parts, minus }
            } else {
                PosCfg::Pos { parts, minus }
            }
        })
        .collect()
}

/// Binds a rule's head against a concrete tuple, seeding the slots the
/// body join starts from. Fails on constant or repeated-variable
/// mismatch.
fn seed_head(rule: &CRule, row: &[IVal], env: &mut [Option<IVal>]) -> bool {
    for (a, &v) in rule.head.iter().zip(row) {
        match a {
            ArgSpec::Const(c) => {
                if *c != v {
                    return false;
                }
            }
            ArgSpec::Var(s) => match env[*s as usize] {
                Some(b) => {
                    if b != v {
                        return false;
                    }
                }
                None => env[*s as usize] = Some(v),
            },
        }
    }
    true
}

fn mark_deleted(
    head: Symbol,
    row: Vec<IVal>,
    model: &Database,
    pending: &mut Database,
    frontier: &mut Database,
    removed_list: &mut Vec<(Symbol, Vec<IVal>)>,
) -> DatalogResult<()> {
    if model.contains_ivals(head, &row) && !pending.contains_ivals(head, &row) {
        pending.insert_ivals(head, &row)?;
        frontier.insert_ivals(head, &row)?;
        removed_list.push((head, row));
    }
    Ok(())
}

fn admit_insert(
    head: Symbol,
    row: Vec<IVal>,
    model: &Database,
    pending: &mut Database,
    inserted: &mut Database,
    frontier: &mut Database,
) -> DatalogResult<()> {
    let present = inserted.contains_ivals(head, &row)
        || (model.contains_ivals(head, &row) && !pending.contains_ivals(head, &row));
    if present {
        return Ok(());
    }
    if pending.contains_ivals(head, &row) {
        // Over-deleted, now rederived through an insert: net no-op at
        // commit time, but the recursion must still see it as new.
        pending.remove_ivals(head, &row);
    } else {
        inserted.insert_ivals(head, &row)?;
    }
    frontier.insert_ivals(head, &row)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::evaluate;

    fn fact(pred: &str, vals: &[i64]) -> Fact {
        (
            pred.to_string(),
            vals.iter().map(|&v| Value::Int(v)).collect(),
        )
    }

    fn sfact(pred: &str, vals: &[&str]) -> Fact {
        (
            pred.to_string(),
            vals.iter().map(|v| Value::sym(*v)).collect(),
        )
    }

    /// The view's model must equal a from-scratch evaluation over the
    /// same extensional database, predicate by predicate.
    fn assert_matches_recompute(view: &MaterializedView) {
        let (expect, _) = evaluate(view.program(), view.edb()).unwrap();
        let mut preds: Vec<&str> = expect.preds();
        preds.extend(view.model().preds());
        preds.sort_unstable();
        preds.dedup();
        for pred in preds {
            let mut a: Vec<Vec<Value>> = view.model().tuples(pred).collect();
            let mut b: Vec<Vec<Value>> = expect.tuples(pred).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "view and recompute disagree on `{pred}`");
        }
    }

    const TC: &str = "p(X, Y) :- e(X, Y).\np(X, Z) :- p(X, Y), p(Y, Z).";

    #[test]
    fn strata_split_into_sccs() {
        // p is recursive, q on top of it is not: the level-based
        // stratification lumps both into level 0, but maintenance must
        // count q and DRed p.
        let prog = Program::parse(&format!("{TC}\nq(X) :- p(X, X).")).unwrap();
        let v = MaterializedView::new(prog).unwrap();
        assert_eq!(v.strata.len(), 2);
        assert!(v.strata[0].recursive, "p is recursive");
        assert!(!v.strata[1].recursive, "q is not");
    }

    #[test]
    fn initial_load_is_incremental_build() {
        let prog = Program::parse(TC).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        let inserts: Vec<Fact> = (1..5).map(|i| fact("e", &[i, i + 1])).collect();
        let stats = v.apply(&inserts, &[]).unwrap();
        assert_eq!(stats.edb_inserts, 4);
        assert_eq!(v.model().count("p"), 10);
        assert_matches_recompute(&v);
    }

    #[test]
    fn counting_insert_and_delete() {
        let prog = Program::parse("q(X) :- e(X, Y).\nr(X) :- q(X), n(X).").unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        v.apply(
            &[fact("e", &[1, 2]), fact("e", &[1, 3]), fact("n", &[1])],
            &[],
        )
        .unwrap();
        assert!(v.model().contains("r", &[Value::Int(1)]));
        // q(1) has two supports; deleting one edge must not drop it.
        v.apply(&[], &[fact("e", &[1, 2])]).unwrap();
        assert!(v.model().contains("q", &[Value::Int(1)]));
        assert!(v.model().contains("r", &[Value::Int(1)]));
        assert_matches_recompute(&v);
        // Deleting the second support drops the chain.
        v.apply(&[], &[fact("e", &[1, 3])]).unwrap();
        assert!(!v.model().contains("q", &[Value::Int(1)]));
        assert!(!v.model().contains("r", &[Value::Int(1)]));
        assert_matches_recompute(&v);
    }

    #[test]
    fn tell_untell_idempotence_on_edb_support() {
        let prog = Program::parse(TC).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        // TELL the same fact twice: presence once, support 2.
        v.apply(&[fact("e", &[1, 2]), fact("e", &[1, 2])], &[])
            .unwrap();
        assert_eq!(v.support("e", &[Value::Int(1), Value::Int(2)]), 2);
        assert_eq!(v.model().count("e"), 1);
        // One UNTELL must not delete a fact with independent support.
        let stats = v.apply(&[], &[fact("e", &[1, 2])]).unwrap();
        assert_eq!(stats.delta_tuples(), 0, "no presence change");
        assert!(v.model().contains("p", &[Value::Int(1), Value::Int(2)]));
        // The second UNTELL removes it; a third is a no-op.
        v.apply(&[], &[fact("e", &[1, 2])]).unwrap();
        assert!(!v.model().contains("p", &[Value::Int(1), Value::Int(2)]));
        let stats = v.apply(&[], &[fact("e", &[1, 2])]).unwrap();
        assert_eq!(stats.delta_tuples(), 0, "UNTELL of an absent fact");
        assert_matches_recompute(&v);
    }

    #[test]
    fn dred_deletes_paths_but_keeps_rederivable() {
        let prog = Program::parse(TC).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        // Diamond plus tail: 1→2→4, 1→3→4, 4→5.
        v.apply(
            &[
                fact("e", &[1, 2]),
                fact("e", &[2, 4]),
                fact("e", &[1, 3]),
                fact("e", &[3, 4]),
                fact("e", &[4, 5]),
            ],
            &[],
        )
        .unwrap();
        assert!(v.model().contains("p", &[Value::Int(1), Value::Int(5)]));
        // Cutting 2→4 over-deletes p(1,4) and p(1,5), but both are
        // rederivable through 3.
        v.apply(&[], &[fact("e", &[2, 4])]).unwrap();
        assert!(v.model().contains("p", &[Value::Int(1), Value::Int(4)]));
        assert!(v.model().contains("p", &[Value::Int(1), Value::Int(5)]));
        assert!(!v.model().contains("p", &[Value::Int(2), Value::Int(4)]));
        assert_matches_recompute(&v);
        // Cutting the second branch actually severs them.
        v.apply(&[], &[fact("e", &[3, 4])]).unwrap();
        assert!(!v.model().contains("p", &[Value::Int(1), Value::Int(4)]));
        assert!(!v.model().contains("p", &[Value::Int(1), Value::Int(5)]));
        assert_matches_recompute(&v);
    }

    #[test]
    fn dred_cycles_collapse_on_cut() {
        let prog = Program::parse(TC).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        v.apply(
            &[fact("e", &[1, 2]), fact("e", &[2, 3]), fact("e", &[3, 1])],
            &[],
        )
        .unwrap();
        assert_eq!(v.model().count("p"), 9, "full 3-cycle closure");
        // Cutting one cycle edge must not leave mutually-supporting
        // ghosts alive (the classic DRed trap).
        v.apply(&[], &[fact("e", &[3, 1])]).unwrap();
        assert_matches_recompute(&v);
        assert_eq!(v.model().count("p"), 3); // 12 13 23
    }

    #[test]
    fn stratified_negation_maintained() {
        let prog = Program::parse(
            "reach(Y) :- source(Y).\n\
             reach(Y) :- reach(X), e(X, Y).\n\
             island(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        v.apply(
            &[
                sfact("node", &["a"]),
                sfact("node", &["b"]),
                sfact("node", &["c"]),
                sfact("source", &["a"]),
                sfact("e", &["a", "b"]),
            ],
            &[],
        )
        .unwrap();
        assert!(v.model().contains("island", &[Value::sym("c")]));
        assert!(!v.model().contains("island", &[Value::sym("b")]));
        assert_matches_recompute(&v);
        // Connecting c flips the negation; cutting a→b flips b back.
        v.apply(&[sfact("e", &["b", "c"])], &[]).unwrap();
        assert!(!v.model().contains("island", &[Value::sym("c")]));
        assert_matches_recompute(&v);
        v.apply(&[], &[sfact("e", &["a", "b"])]).unwrap();
        assert!(v.model().contains("island", &[Value::sym("b")]));
        assert!(v.model().contains("island", &[Value::sym("c")]));
        assert_matches_recompute(&v);
    }

    #[test]
    fn mixed_strata_propagate_in_order() {
        // DRed stratum (isaT) feeding a counting stratum (inT) — the
        // shape the object base's deductive closure takes.
        let prog = Program::parse(
            "isaT(X, Y) :- isa(X, Y).\n\
             isaT(X, Z) :- isa(X, Y), isaT(Y, Z).\n\
             inT(X, C) :- in_(X, C).\n\
             inT(X, C) :- in_(X, B), isaT(B, C).",
        )
        .unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        v.apply(
            &[
                sfact("isa", &["Emp", "Agent"]),
                sfact("isa", &["Agent", "Obj"]),
                sfact("in_", &["mary", "Emp"]),
            ],
            &[],
        )
        .unwrap();
        assert!(v
            .model()
            .contains("inT", &[Value::sym("mary"), Value::sym("Obj")]));
        assert_matches_recompute(&v);
        // Cutting the middle ISA link prunes the transitive membership.
        v.apply(&[], &[sfact("isa", &["Agent", "Obj"])]).unwrap();
        assert!(!v
            .model()
            .contains("inT", &[Value::sym("mary"), Value::sym("Obj")]));
        assert!(v
            .model()
            .contains("inT", &[Value::sym("mary"), Value::sym("Agent")]));
        assert_matches_recompute(&v);
    }

    #[test]
    fn batch_delete_and_insert_nets_out() {
        let prog = Program::parse(TC).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        v.apply(&[fact("e", &[1, 2])], &[]).unwrap();
        // Same fact deleted and re-inserted in one batch: no churn.
        let stats = v
            .apply(&[fact("e", &[1, 2])], &[fact("e", &[1, 2])])
            .unwrap();
        assert_eq!(stats.delta_tuples(), 0);
        assert!(v.model().contains("p", &[Value::Int(1), Value::Int(2)]));
        assert_matches_recompute(&v);
    }

    #[test]
    fn telling_a_derived_predicate_is_refused() {
        let prog = Program::parse(TC).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        assert!(v.apply(&[fact("p", &[1, 2])], &[]).is_err());
        assert!(v.apply(&[], &[fact("p", &[1, 2])]).is_err());
    }

    #[test]
    fn rebuild_agrees_with_maintained_state() {
        let prog = Program::parse(TC).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        v.apply(
            &[fact("e", &[1, 2]), fact("e", &[2, 3]), fact("e", &[3, 4])],
            &[],
        )
        .unwrap();
        v.apply(&[], &[fact("e", &[2, 3])]).unwrap();
        let maintained: Vec<Vec<Value>> = {
            let mut t: Vec<_> = v.model().tuples("p").collect();
            t.sort();
            t
        };
        v.rebuild().unwrap();
        let rebuilt: Vec<Vec<Value>> = {
            let mut t: Vec<_> = v.model().tuples("p").collect();
            t.sort();
            t
        };
        assert_eq!(maintained, rebuilt);
    }

    #[test]
    fn unstratifiable_program_rejected() {
        let prog = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        assert!(MaterializedView::new(prog).is_err());
    }

    #[test]
    fn random_churn_matches_recompute() {
        // A deterministic xorshift walk over a small universe: the
        // cheap in-crate cousin of the differential proptest.
        let prog = Program::parse(&format!("{TC}\nq(X) :- p(X, X).")).unwrap();
        let mut v = MaterializedView::new(prog).unwrap();
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        let mut step = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..200 {
            let x = (step() % 5) as i64;
            let y = (step() % 5) as i64;
            let f = fact("e", &[x, y]);
            if step() % 3 == 0 {
                v.apply(&[], &[f]).unwrap();
            } else {
                v.apply(&[f], &[]).unwrap();
            }
            if round % 20 == 19 {
                assert_matches_recompute(&v);
            }
        }
        assert_matches_recompute(&v);
    }
}
