//! Goal-directed SLD resolution with tabling (lemma generation).
//!
//! §3.1: "The inference engines may enhance their performance by lemma
//! generation; this capability is, e.g., used in creating dependency
//! graph objects of the GKBMS." Here lemmas are *tables*: answers to a
//! canonicalized subgoal are stored and reused, which (a) avoids
//! re-derivation and (b) guarantees termination on recursive rules,
//! where plain SLD resolution would loop.
//!
//! Tabling can be switched off ([`TopDown::without_tabling`]) for the
//! E-2 ablation bench; in that mode evaluation is depth-bounded to keep
//! left-recursive programs from diverging.

use crate::ast::{Atom, Literal, Program, Rule, Term, Value};
use crate::db::Database;
use crate::error::{DatalogError, DatalogResult};
use std::collections::{HashMap, HashSet};

type Env = HashMap<String, Value>;

/// Canonical key of a subgoal: predicate plus bound-argument pattern.
/// `path(a, X)` and `path(a, Y)` share a key; `path(b, X)` does not.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CallKey {
    pred: String,
    bound: Vec<Option<Value>>,
}

/// The top-down engine.
pub struct TopDown<'a> {
    program: &'a Program,
    edb: &'a Database,
    rules_by_pred: HashMap<&'a str, Vec<&'a Rule>>,
    tabling: bool,
    /// Answer tables (lemmas): full argument tuples per call key.
    tables: HashMap<CallKey, HashSet<Vec<Value>>>,
    complete: HashSet<CallKey>,
    active: HashSet<CallKey>,
    /// Call stack of active keys, innermost last (for SCC detection).
    active_stack: Vec<CallKey>,
    /// Keys observed to participate in recursion (re-entered, or on the
    /// stack above a re-entered key).
    scc_pending: HashSet<CallKey>,
    /// Recursion-involved keys finished but not yet promotable;
    /// promoted to `complete` en bloc at the SCC leader.
    touched: HashSet<CallKey>,
    /// Depth bound used only when tabling is off.
    depth_limit: usize,
    /// Statistics: subgoal invocations.
    pub calls: u64,
    /// Statistics: answers served from tables.
    pub lemma_hits: u64,
    /// Statistics: EDB index probes issued (one per subgoal reaching
    /// the extensional database).
    pub index_probes: u64,
    fresh: u64,
}

impl<'a> TopDown<'a> {
    /// A tabling engine over `program` and `edb`.
    pub fn new(program: &'a Program, edb: &'a Database) -> Self {
        let mut rules_by_pred: HashMap<&str, Vec<&Rule>> = HashMap::new();
        for r in &program.rules {
            rules_by_pred
                .entry(r.head.pred.as_str())
                .or_default()
                .push(r);
        }
        TopDown {
            program,
            edb,
            rules_by_pred,
            tabling: true,
            tables: HashMap::new(),
            complete: HashSet::new(),
            active: HashSet::new(),
            active_stack: Vec::new(),
            scc_pending: HashSet::new(),
            touched: HashSet::new(),
            depth_limit: 64,
            calls: 0,
            lemma_hits: 0,
            index_probes: 0,
            fresh: 0,
        }
    }

    /// Disables tabling (plain depth-bounded SLD) for ablation.
    pub fn without_tabling(mut self, depth_limit: usize) -> Self {
        self.tabling = false;
        self.depth_limit = depth_limit;
        self
    }

    /// Number of tabled lemmas.
    pub fn lemma_count(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    fn key_of(goal: &Atom, env: &Env) -> CallKey {
        CallKey {
            pred: goal.pred.clone(),
            bound: goal
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(v) => Some(v.clone()),
                    Term::Var(v) => env.get(v).cloned(),
                })
                .collect(),
        }
    }

    /// All answers to `goal` under `env`: returns extended
    /// environments, one per solution.
    pub fn query(&mut self, goal: &Atom) -> DatalogResult<Vec<Env>> {
        self.program.validate()?;
        crate::stratify::stratify(self.program)?;
        self.solve(goal, &Env::new(), 0)
    }

    /// Ground query: does `goal` (fully bound) hold?
    pub fn holds(&mut self, goal: &Atom) -> DatalogResult<bool> {
        Ok(!self.query(goal)?.is_empty())
    }

    fn solve(&mut self, goal: &Atom, env: &Env, depth: usize) -> DatalogResult<Vec<Env>> {
        self.calls += 1;
        let mut out = Vec::new();

        // EDB tuples first, via a binding-pattern index probe: argument
        // positions that are constants (or goal variables already bound
        // in `env`) key the relation's secondary index, so only the
        // matching tuples are unified.
        let pattern: Vec<Option<Value>> = goal
            .args
            .iter()
            .map(|t| match t {
                Term::Const(v) => Some(v.clone()),
                Term::Var(v) => env.get(v).cloned(),
            })
            .collect();
        self.index_probes += 1;
        for tuple in self.edb.probe(&goal.pred, &pattern) {
            if let Some(env2) = unify_tuple(&goal.args, &tuple, env) {
                out.push(env2);
            }
        }
        if !self.rules_by_pred.contains_key(goal.pred.as_str()) {
            return Ok(out);
        }

        if !self.tabling {
            if depth >= self.depth_limit {
                return Ok(out);
            }
            let rules = self.rules_by_pred[goal.pred.as_str()].clone();
            for rule in rules {
                let (head, body) = self.rename(rule);
                if let Some(env2) = unify_atoms(&head, goal, env) {
                    self.solve_body(&body, 0, &env2, depth + 1, &mut |e| {
                        out.push(project(goal, e, env));
                    })?;
                }
            }
            return Ok(out);
        }

        // Tabled evaluation: compute (or reuse) the answer table for the
        // canonicalized call, then unify each answer tuple with the goal.
        let key = Self::key_of(goal, env);
        if self.complete.contains(&key) {
            self.lemma_hits += 1;
            obs::counter!(
                "datalog_lemma_hits_total",
                "Subgoals answered from a completed lemma table"
            )
            .inc();
        } else if let Some(at) = self.active_stack.iter().position(|k| *k == key) {
            // Recursive re-entry: serve current (partial) answers; the
            // enclosing fixpoint loop will pick up growth. Every key
            // from the re-entered one up the stack belongs to a
            // potential SCC and may only complete at the SCC leader.
            for k in self.active_stack[at..].iter() {
                self.scc_pending.insert(k.clone());
            }
        } else {
            self.active.insert(key.clone());
            self.active_stack.push(key.clone());
            loop {
                // Global quiescence: iterate until *no* table grew in a
                // full pass, so the en-bloc promotion at the SCC leader
                // is sound even for mutual recursion across keys.
                let before: usize = self.tables.values().map(|t| t.len()).sum();
                let rules = self.rules_by_pred[goal.pred.as_str()].clone();
                for rule in rules {
                    let (head, body) = self.rename(rule);
                    if let Some(env2) = unify_atoms(&head, goal, env) {
                        let mut answers: Vec<Vec<Value>> = Vec::new();
                        self.solve_body(&body, 0, &env2, depth + 1, &mut |e| {
                            if let Some(t) = ground_atom(&head, e) {
                                answers.push(t);
                            }
                        })?;
                        let table = self.tables.entry(key.clone()).or_default();
                        let mut tabled = 0u64;
                        for t in answers {
                            if table.insert(t) {
                                tabled += 1;
                            }
                        }
                        obs::counter!(
                            "datalog_lemmas_tabled_total",
                            "Answer tuples added to lemma tables"
                        )
                        .add(tabled);
                    }
                }
                let after: usize = self.tables.values().map(|t| t.len()).sum();
                if after == before {
                    break;
                }
            }
            self.active_stack.pop();
            self.active.remove(&key);
            if !self.scc_pending.contains(&key) {
                // Never re-entered: the table is already a final lemma.
                self.complete.insert(key.clone());
            } else {
                self.touched.insert(key.clone());
                if self.active.is_empty() {
                    // SCC leader finished: the global fixpoint over the
                    // pending keys has been reached, so their tables
                    // are final lemmas too.
                    self.complete.extend(self.touched.drain());
                    self.scc_pending.clear();
                }
            }
        }
        if let Some(table) = self.tables.get(&key) {
            for tuple in table.clone() {
                if let Some(env2) = unify_tuple(&goal.args, &tuple, env) {
                    out.push(env2);
                }
            }
        }
        // Dedup environments (EDB facts may coincide with derived ones).
        dedup_envs(&mut out);
        Ok(out)
    }

    fn solve_body(
        &mut self,
        body: &[Literal],
        pos: usize,
        env: &Env,
        depth: usize,
        emit: &mut dyn FnMut(&Env),
    ) -> DatalogResult<()> {
        if pos == body.len() {
            emit(env);
            return Ok(());
        }
        let lit = &body[pos];
        if lit.negated {
            match ground_atom(&lit.atom, env) {
                None => return Err(DatalogError::NonGroundNegation(lit.atom.to_string())),
                Some(tuple) => {
                    let ground = Atom::new(
                        lit.atom.pred.clone(),
                        tuple.into_iter().map(Term::Const).collect(),
                    );
                    let holds = !self.solve(&ground, &Env::new(), depth)?.is_empty();
                    if !holds {
                        self.solve_body(body, pos + 1, env, depth, emit)?;
                    }
                    return Ok(());
                }
            }
        }
        let solutions = self.solve(&lit.atom, env, depth)?;
        for env2 in solutions {
            self.solve_body(body, pos + 1, &env2, depth, emit)?;
        }
        Ok(())
    }

    /// Renames rule variables apart with a fresh suffix.
    fn rename(&mut self, rule: &Rule) -> (Atom, Vec<Literal>) {
        self.fresh += 1;
        let suffix = format!("#{}", self.fresh);
        let fix = |t: &Term| match t {
            Term::Var(v) => Term::Var(format!("{v}{suffix}")),
            c => c.clone(),
        };
        let head = Atom::new(
            rule.head.pred.clone(),
            rule.head.args.iter().map(fix).collect(),
        );
        let body = rule
            .body
            .iter()
            .map(|l| Literal {
                atom: Atom::new(l.atom.pred.clone(), l.atom.args.iter().map(fix).collect()),
                negated: l.negated,
            })
            .collect();
        (head, body)
    }
}

fn unify_tuple(args: &[Term], tuple: &[Value], env: &Env) -> Option<Env> {
    if args.len() != tuple.len() {
        return None;
    }
    let mut env = env.clone();
    for (t, v) in args.iter().zip(tuple) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(name) => match env.get(name) {
                Some(b) if b != v => return None,
                Some(_) => {}
                None => {
                    env.insert(name.clone(), v.clone());
                }
            },
        }
    }
    Some(env)
}

/// Unifies a renamed head with a goal atom under `env` (goal vars may
/// be bound in env; head vars are fresh).
fn unify_atoms(head: &Atom, goal: &Atom, env: &Env) -> Option<Env> {
    if head.pred != goal.pred || head.args.len() != goal.args.len() {
        return None;
    }
    let mut env = env.clone();
    for (h, g) in head.args.iter().zip(&goal.args) {
        let gval = match g {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) => env.get(v).cloned(),
        };
        match (h, gval) {
            (Term::Const(hv), Some(gv)) => {
                if *hv != gv {
                    return None;
                }
            }
            (Term::Const(hv), None) => {
                if let Term::Var(gv) = g {
                    env.insert(gv.clone(), hv.clone());
                }
            }
            (Term::Var(hv), Some(gv)) => match env.get(hv) {
                Some(b) if *b != gv => return None,
                Some(_) => {}
                None => {
                    env.insert(hv.clone(), gv);
                }
            },
            (Term::Var(_), None) => {
                // Both free: answers are projected from ground heads, so
                // leaving this unlinked is sound for datalog (no function
                // symbols; every successful body grounds the head).
            }
        }
    }
    Some(env)
}

fn ground_atom(atom: &Atom, env: &Env) -> Option<Vec<Value>> {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) => env.get(v).cloned(),
        })
        .collect()
}

/// Projects the solved (renamed) environment back onto the goal's
/// variables.
fn project(goal: &Atom, solved: &Env, base: &Env) -> Env {
    let mut out = base.clone();
    for t in &goal.args {
        if let Term::Var(v) = t {
            if let Some(val) = solved.get(v) {
                out.insert(v.clone(), val.clone());
            }
        }
    }
    out
}

fn dedup_envs(envs: &mut Vec<Env>) {
    let mut seen: HashSet<Vec<(String, Value)>> = HashSet::new();
    envs.retain(|e| {
        let mut key: Vec<(String, Value)> = e.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        key.sort();
        seen.insert(key)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (a, b) in pairs {
            db.insert("edge", vec![Value::sym(*a), Value::sym(*b)])
                .unwrap();
        }
        db
    }

    const TC_RIGHT: &str = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).";
    const TC_LEFT: &str = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).";

    #[test]
    fn ground_queries() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let db = edges(&[("a", "b"), ("b", "c")]);
        let mut td = TopDown::new(&p, &db);
        assert!(td
            .holds(&Atom::new("path", vec![Term::sym("a"), Term::sym("c")]))
            .unwrap());
        assert!(!td
            .holds(&Atom::new("path", vec![Term::sym("c"), Term::sym("a")]))
            .unwrap());
    }

    #[test]
    fn open_queries_enumerate_answers() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let db = edges(&[("a", "b"), ("b", "c"), ("b", "d")]);
        let mut td = TopDown::new(&p, &db);
        let answers = td
            .query(&Atom::new("path", vec![Term::sym("a"), Term::var("X")]))
            .unwrap();
        let mut xs: Vec<String> = answers.iter().map(|e| e["X"].to_string()).collect();
        xs.sort();
        assert_eq!(xs, vec!["b", "c", "d"]);
    }

    #[test]
    fn left_recursion_terminates_with_tabling() {
        let p = Program::parse(TC_LEFT).unwrap();
        let db = edges(&[("a", "b"), ("b", "c"), ("c", "a")]); // cycle
        let mut td = TopDown::new(&p, &db);
        let answers = td
            .query(&Atom::new("path", vec![Term::sym("a"), Term::var("X")]))
            .unwrap();
        assert_eq!(answers.len(), 3, "a reaches a, b, c");
    }

    #[test]
    fn fully_open_query() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let db = edges(&[("a", "b"), ("b", "c")]);
        let mut td = TopDown::new(&p, &db);
        let answers = td
            .query(&Atom::new("path", vec![Term::var("X"), Term::var("Y")]))
            .unwrap();
        assert_eq!(answers.len(), 3); // ab bc ac
    }

    #[test]
    fn agrees_with_bottom_up() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let db = edges(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]);
        let bottom = crate::seminaive::evaluate_pred(&p, &db, "path").unwrap();
        let mut td = TopDown::new(&p, &db);
        let mut top: Vec<Vec<Value>> = td
            .query(&Atom::new("path", vec![Term::var("X"), Term::var("Y")]))
            .unwrap()
            .into_iter()
            .map(|e| vec![e["X"].clone(), e["Y"].clone()])
            .collect();
        top.sort();
        top.dedup();
        assert_eq!(top, bottom);
    }

    #[test]
    fn negation_on_ground_subgoals() {
        let p = Program::parse(
            "reach(X) :- source(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut db = edges(&[("a", "b")]);
        for n in ["a", "b", "c"] {
            db.insert("node", vec![Value::sym(n)]).unwrap();
        }
        db.insert("source", vec![Value::sym("a")]).unwrap();
        let mut td = TopDown::new(&p, &db);
        let answers = td
            .query(&Atom::new("unreached", vec![Term::var("X")]))
            .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0]["X"], Value::sym("c"));
    }

    #[test]
    fn lemmas_are_reused_across_queries() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let mut db = Database::new();
        for i in 0..30 {
            db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        let mut td = TopDown::new(&p, &db);
        let g = Atom::new("path", vec![Term::int(0), Term::var("X")]);
        td.query(&g).unwrap();
        let calls_first = td.calls;
        td.query(&g).unwrap();
        let calls_second = td.calls - calls_first;
        assert!(
            calls_second * 4 < calls_first,
            "second query should be served from the table: {calls_first} vs {calls_second}"
        );
        assert!(td.lemma_hits > 0);
        assert!(td.lemma_count() > 0);
    }

    #[test]
    fn lemma_hits_and_count_agree() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let mut db = Database::new();
        for i in 0..20 {
            db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        let mut td = TopDown::new(&p, &db);
        let g = Atom::new("path", vec![Term::int(0), Term::var("X")]);
        let first = td.query(&g).unwrap();
        let lemmas_after_first = td.lemma_count();
        assert!(lemmas_after_first >= first.len(), "answers are tabled");
        assert!(td.index_probes > 0, "EDB subgoals go through index probes");
        // Re-asking the same goal must be answered from the tables:
        // lemma_hits grows, the lemma store does not.
        let hits_before = td.lemma_hits;
        let second = td.query(&g).unwrap();
        assert_eq!(first.len(), second.len());
        assert!(td.lemma_hits > hits_before);
        assert_eq!(td.lemma_count(), lemmas_after_first);
    }

    #[test]
    fn without_tabling_terminates_on_dag() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let db = edges(&[("a", "b"), ("b", "c")]);
        let mut td = TopDown::new(&p, &db).without_tabling(32);
        assert!(td
            .holds(&Atom::new("path", vec![Term::sym("a"), Term::sym("c")]))
            .unwrap());
    }

    #[test]
    fn bound_second_argument() {
        let p = Program::parse(TC_RIGHT).unwrap();
        let db = edges(&[("a", "b"), ("b", "c"), ("x", "c")]);
        let mut td = TopDown::new(&p, &db);
        let answers = td
            .query(&Atom::new("path", vec![Term::var("X"), Term::sym("c")]))
            .unwrap();
        let mut xs: Vec<String> = answers.iter().map(|e| e["X"].to_string()).collect();
        xs.sort();
        assert_eq!(xs, vec!["a", "b", "x"]);
    }

    #[test]
    fn unstratifiable_rejected() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).").unwrap();
        let db = Database::new();
        let mut td = TopDown::new(&p, &db);
        assert!(td.query(&Atom::new("win", vec![Term::var("X")])).is_err());
    }
}
