//! Differential testing of the inference engines (ISSUE 1).
//!
//! Random stratified programs and fact sets are thrown at all
//! evaluation paths — indexed semi-naive ([`seminaive::evaluate`]),
//! the pre-index scan core ([`seminaive::evaluate_scan`]), top-down
//! with tabling, and magic sets — and the answer sets must be
//! identical. The generator builds programs that are stratified and
//! safe *by construction*: predicates carry levels, positive literals
//! may reference any level up to the head's (so recursion is
//! generated), negated literals only strictly lower levels, and head /
//! negated-literal variables are drawn from the positive body
//! variables.

use datalog::ast::{Atom, Literal, Program, Rule, Term, Value};
use datalog::db::Database;
use datalog::{magic, seminaive, topdown};
use proptest::prelude::*;

// -------------------------------------------------------------------
// Random stratified program generation
// -------------------------------------------------------------------

/// splitmix64 over a case seed: program shape must be a pure function
/// of the generated inputs so failures reproduce.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

const VARS: [&str; 4] = ["X", "Y", "Z", "W"];
const CONSTS: [&str; 5] = ["c0", "c1", "c2", "c3", "c4"];

/// `(name, arity, level)`: EDB predicates are level 0, IDB levels 1-3.
const EDB_PREDS: [(&str, usize); 2] = [("edge", 2), ("node", 1)];
const IDB_PREDS: [(&str, usize, u8); 3] = [("p", 2, 1), ("q", 1, 2), ("r", 2, 3)];

fn gen_rule(g: &mut Gen, head: (&str, usize), level: u8, allow_neg: bool) -> Rule {
    // Positive pool: EDB plus IDB predicates up to this level
    // (including the head's own level, so recursion happens).
    let pos_pool: Vec<(&str, usize)> = EDB_PREDS
        .iter()
        .copied()
        .chain(
            IDB_PREDS
                .iter()
                .filter(|&&(_, _, l)| l <= level)
                .map(|&(n, a, _)| (n, a)),
        )
        .collect();
    let mut body: Vec<Literal> = Vec::new();
    let mut posvars: Vec<&str> = Vec::new();
    let npos = 1 + g.below(2);
    for _ in 0..npos {
        let (pred, arity) = pos_pool[g.below(pos_pool.len())];
        let args: Vec<Term> = (0..arity)
            .map(|_| {
                if g.chance(7, 10) {
                    let v = VARS[g.below(VARS.len())];
                    if !posvars.contains(&v) {
                        posvars.push(v);
                    }
                    Term::var(v)
                } else {
                    Term::sym(CONSTS[g.below(CONSTS.len())])
                }
            })
            .collect();
        body.push(Literal {
            atom: Atom::new(pred, args),
            negated: false,
        });
    }
    if posvars.is_empty() {
        // Guarantee at least one binding literal so heads stay safe.
        posvars.push("X");
        body.push(Literal {
            atom: Atom::new("node", vec![Term::var("X")]),
            negated: false,
        });
    }
    // Optional negated literal over a strictly lower stratum, its
    // variables drawn from the positives so it is ground when reached.
    if allow_neg && level > 1 && g.chance(1, 3) {
        let neg_pool: Vec<(&str, usize)> = EDB_PREDS
            .iter()
            .copied()
            .chain(
                IDB_PREDS
                    .iter()
                    .filter(|&&(_, _, l)| l < level)
                    .map(|&(n, a, _)| (n, a)),
            )
            .collect();
        let (pred, arity) = neg_pool[g.below(neg_pool.len())];
        let args: Vec<Term> = (0..arity)
            .map(|_| {
                if g.chance(3, 4) {
                    Term::var(posvars[g.below(posvars.len())])
                } else {
                    Term::sym(CONSTS[g.below(CONSTS.len())])
                }
            })
            .collect();
        body.push(Literal {
            atom: Atom::new(pred, args),
            negated: true,
        });
    }
    let head_args: Vec<Term> = (0..head.1)
        .map(|_| {
            if g.chance(17, 20) {
                Term::var(posvars[g.below(posvars.len())])
            } else {
                Term::sym(CONSTS[g.below(CONSTS.len())])
            }
        })
        .collect();
    Rule::new(Atom::new(head.0, head_args), body)
}

/// A random stratified, safe program with up to two rules per IDB
/// predicate. With `allow_neg` false the program is purely positive
/// (magic sets supports only those).
fn gen_program(seed: u64, allow_neg: bool) -> Program {
    let mut g = Gen::new(seed);
    let mut rules = Vec::new();
    for &(name, arity, level) in &IDB_PREDS {
        let n = if level == 1 {
            1 + g.below(2)
        } else {
            g.below(3) // possibly none
        };
        for _ in 0..n {
            rules.push(gen_rule(&mut g, (name, arity), level, allow_neg));
        }
    }
    Program { rules }
}

fn build_edb(edges: &[(u8, u8)], nodes: &[u8]) -> Database {
    let c = |n: u8| Value::sym(format!("c{}", n % 5));
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert("edge", vec![c(a), c(b)]).unwrap();
    }
    for &n in nodes {
        db.insert("node", vec![c(n)]).unwrap();
    }
    db
}

fn program_text(program: &Program) -> String {
    program
        .rules
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn sorted_tuples(db: &Database, pred: &str) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = db.tuples(pred).collect();
    out.sort();
    out
}

/// All answers to the fully-open goal for `pred/arity` via tabled
/// top-down resolution, as sorted ground tuples.
fn topdown_tuples(program: &Program, edb: &Database, pred: &str, arity: usize) -> Vec<Vec<Value>> {
    let mut td = topdown::TopDown::new(program, edb);
    let goal = Atom::new(
        pred,
        (0..arity).map(|i| Term::var(format!("V{i}"))).collect(),
    );
    let answers = td.query(&goal).expect("stratified program evaluates");
    let mut out: Vec<Vec<Value>> = answers
        .iter()
        .map(|env| {
            (0..arity)
                .map(|i| {
                    env.get(&format!("V{i}"))
                        .cloned()
                        .expect("datalog answers are ground")
                })
                .collect()
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The indexed join core computes exactly the model of the scan
    /// core, on every predicate, for random stratified programs.
    #[test]
    fn indexed_and_scan_semi_naive_agree(
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..25),
        nodes in prop::collection::vec(0u8..5, 0..8),
        seed in any::<u64>(),
    ) {
        let program = gen_program(seed, true);
        let edb = build_edb(&edges, &nodes);
        let (indexed, _) = seminaive::evaluate(&program, &edb).expect("indexed");
        let (scan, _) = seminaive::evaluate_scan(&program, &edb).expect("scan");
        for pred in scan.preds() {
            prop_assert_eq!(
                sorted_tuples(&indexed, pred),
                sorted_tuples(&scan, pred),
                "pred `{}` differs for program:\n{}", pred, program_text(&program)
            );
        }
        prop_assert_eq!(indexed.total(), scan.total());
    }

    /// Tabled top-down resolution enumerates exactly the bottom-up
    /// model of each IDB predicate.
    #[test]
    fn topdown_agrees_with_bottom_up(
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..20),
        nodes in prop::collection::vec(0u8..5, 0..8),
        seed in any::<u64>(),
    ) {
        let program = gen_program(seed, true);
        let edb = build_edb(&edges, &nodes);
        let (model, _) = seminaive::evaluate(&program, &edb).expect("bottom-up");
        for &(pred, arity, _) in &IDB_PREDS {
            prop_assert_eq!(
                topdown_tuples(&program, &edb, pred, arity),
                sorted_tuples(&model, pred),
                "pred `{}` differs for program:\n{}", pred, program_text(&program)
            );
        }
    }

    /// Magic-sets evaluation answers open and bound queries exactly
    /// like full bottom-up evaluation (positive programs).
    #[test]
    fn magic_agrees_with_bottom_up(
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..20),
        nodes in prop::collection::vec(0u8..5, 0..8),
        seed in any::<u64>(),
    ) {
        let program = gen_program(seed, false);
        let edb = build_edb(&edges, &nodes);
        let (model, _) = seminaive::evaluate(&program, &edb).expect("bottom-up");
        for &(pred, arity, _) in &IDB_PREDS {
            let expected = sorted_tuples(&model, pred);
            // Fully open query.
            let open = Atom::new(
                pred,
                (0..arity).map(|i| Term::var(format!("V{i}"))).collect(),
            );
            let open_answers = magic::magic_evaluate(&program, &edb, &open).expect("magic open");
            prop_assert_eq!(
                &open_answers, &expected,
                "open query on `{}` differs for program:\n{}", pred, program_text(&program)
            );
            // Bound query on the first answer's first argument.
            if let Some(first) = expected.first() {
                let mut args: Vec<Term> = (0..arity)
                    .map(|i| Term::var(format!("V{i}")))
                    .collect();
                args[0] = Term::Const(first[0].clone());
                let bound = Atom::new(pred, args);
                let bound_answers =
                    magic::magic_evaluate(&program, &edb, &bound).expect("magic bound");
                let filtered: Vec<Vec<Value>> = expected
                    .iter()
                    .filter(|t| t[0] == first[0])
                    .cloned()
                    .collect();
                prop_assert_eq!(
                    &bound_answers, &filtered,
                    "bound query on `{}` differs for program:\n{}", pred, program_text(&program)
                );
            }
        }
    }

    /// `Database::probe` returns exactly the scan-and-filter answer for
    /// every binding pattern of a binary relation.
    #[test]
    fn probe_equals_scan_filter(
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..30),
        qx in 0u8..5,
        qy in 0u8..5,
    ) {
        let edb = build_edb(&edges, &[]);
        let x = Value::sym(format!("c{qx}"));
        let y = Value::sym(format!("c{qy}"));
        let all: Vec<Vec<Value>> = edb.tuples("edge").collect();
        let patterns: [Vec<Option<Value>>; 4] = [
            vec![None, None],
            vec![Some(x.clone()), None],
            vec![None, Some(y.clone())],
            vec![Some(x.clone()), Some(y.clone())],
        ];
        for pattern in patterns {
            let mut probed: Vec<Vec<Value>> = edb.probe("edge", &pattern).collect();
            probed.sort();
            let mut filtered: Vec<Vec<Value>> = all
                .iter()
                .filter(|t| {
                    pattern
                        .iter()
                        .zip(t.iter())
                        .all(|(p, v)| p.as_ref().is_none_or(|pv| pv == v))
                })
                .cloned()
                .collect();
            filtered.sort();
            prop_assert_eq!(probed, filtered, "pattern {:?}", pattern);
        }
    }
}

// -------------------------------------------------------------------
// Regression cases
// -------------------------------------------------------------------

/// Negation written *first* in the body: the bottom-up engines reorder
/// positives before negatives, so the rule still evaluates, and the
/// indexed and scan cores agree on the result.
#[test]
fn regression_negation_ordering() {
    let program = Program::parse(
        "reach(X) :- source(X).\n\
         reach(Y) :- reach(X), edge(X, Y).\n\
         dead(X) :- not reach(X), node(X).",
    )
    .unwrap();
    let mut edb = Database::new();
    for (a, b) in [("a", "b"), ("c", "d")] {
        edb.insert("edge", vec![Value::sym(a), Value::sym(b)])
            .unwrap();
    }
    for n in ["a", "b", "c", "d"] {
        edb.insert("node", vec![Value::sym(n)]).unwrap();
    }
    edb.insert("source", vec![Value::sym("a")]).unwrap();
    let (indexed, _) = seminaive::evaluate(&program, &edb).unwrap();
    let (scan, _) = seminaive::evaluate_scan(&program, &edb).unwrap();
    let expected = vec![vec![Value::sym("c")], vec![Value::sym("d")]];
    assert_eq!(sorted_tuples(&indexed, "dead"), expected);
    assert_eq!(sorted_tuples(&scan, "dead"), expected);
    // Negation sandwiched between positives reorders identically.
    let sandwich = Program::parse(
        "reach(X) :- source(X).\n\
         reach(Y) :- reach(X), edge(X, Y).\n\
         dead2(X) :- node(X), not reach(X), node(X).",
    )
    .unwrap();
    let (m1, _) = seminaive::evaluate(&sandwich, &edb).unwrap();
    let (m2, _) = seminaive::evaluate_scan(&sandwich, &edb).unwrap();
    assert_eq!(sorted_tuples(&m1, "dead2"), expected);
    assert_eq!(sorted_tuples(&m2, "dead2"), expected);
}

/// Repeated variables — `p(X, X)` in bodies and heads — must be
/// checked at match time on every path; only the first occurrence may
/// enter a probe key.
#[test]
fn regression_repeated_variables() {
    let program = Program::parse(
        "loop(X) :- edge(X, X).\n\
         refl(X, X) :- node(X).\n\
         both(X) :- edge(X, Y), edge(Y, X).",
    )
    .unwrap();
    let mut edb = Database::new();
    for (a, b) in [("a", "a"), ("a", "b"), ("b", "a"), ("b", "c")] {
        edb.insert("edge", vec![Value::sym(a), Value::sym(b)])
            .unwrap();
    }
    edb.insert("node", vec![Value::sym("n")]).unwrap();

    let (indexed, _) = seminaive::evaluate(&program, &edb).unwrap();
    let (scan, _) = seminaive::evaluate_scan(&program, &edb).unwrap();
    for pred in ["loop", "refl", "both"] {
        assert_eq!(
            sorted_tuples(&indexed, pred),
            sorted_tuples(&scan, pred),
            "scan/indexed disagree on `{pred}`"
        );
    }
    assert_eq!(sorted_tuples(&indexed, "loop"), vec![vec![Value::sym("a")]]);
    assert_eq!(
        sorted_tuples(&indexed, "refl"),
        vec![vec![Value::sym("n"), Value::sym("n")]]
    );
    assert_eq!(
        sorted_tuples(&indexed, "both"),
        vec![vec![Value::sym("a")], vec![Value::sym("b")]]
    );

    // Top-down and magic agree, including on a goal with a repeated
    // variable: loop-style goals `edge(V, V)`.
    assert_eq!(
        topdown_tuples(&program, &edb, "loop", 1),
        sorted_tuples(&indexed, "loop")
    );
    assert_eq!(
        topdown_tuples(&program, &edb, "both", 1),
        sorted_tuples(&indexed, "both")
    );
    let open = Atom::new("both", vec![Term::var("V")]);
    assert_eq!(
        magic::magic_evaluate(&program, &edb, &open).unwrap(),
        sorted_tuples(&indexed, "both")
    );
    let mut td = topdown::TopDown::new(&program, &edb);
    let same_var_goal = Atom::new("edge", vec![Term::var("V"), Term::var("V")]);
    let hits = td.query(&same_var_goal).unwrap();
    assert_eq!(hits.len(), 1, "only edge(a, a) matches edge(V, V)");
}
