//! Error type of the object processor.

use std::fmt;

/// Errors raised by the object processor.
#[derive(Debug)]
pub enum ObError {
    /// Frame syntax error.
    Parse(String),
    /// A TELL or ASK referenced an unknown object.
    Unknown(String),
    /// The underlying proposition processor failed.
    Telos(telos::TelosError),
    /// The inference engine failed.
    Datalog(datalog::DatalogError),
    /// A consistency check failed; the batch was rejected.
    Inconsistent(Vec<String>),
}

/// Convenient alias used throughout the crate.
pub type ObResult<T> = Result<T, ObError>;

impl fmt::Display for ObError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObError::Parse(m) => write!(f, "frame parse error: {m}"),
            ObError::Unknown(m) => write!(f, "unknown object: {m}"),
            ObError::Telos(e) => write!(f, "proposition processor: {e}"),
            ObError::Datalog(e) => write!(f, "inference engine: {e}"),
            ObError::Inconsistent(v) => {
                write!(
                    f,
                    "inconsistent state ({} violations): {}",
                    v.len(),
                    v.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for ObError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObError::Telos(e) => Some(e),
            ObError::Datalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<telos::TelosError> for ObError {
    fn from(e: telos::TelosError) -> Self {
        ObError::Telos(e)
    }
}

impl From<datalog::DatalogError> for ObError {
    fn from(e: datalog::DatalogError) -> Self {
        ObError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = ObError::Inconsistent(vec!["a".into(), "b".into()]);
        assert!(e.to_string().contains("2 violations"));
        assert!(ObError::Parse("x".into()).to_string().contains('x'));
    }
}
