//! The CML frame syntax.
//!
//! Frames are the user-facing notation the Object Transformer maps to
//! propositions (fig 3-2):
//!
//! ```text
//! TELL Class Invitation in TDL_EntityClass isA Paper with
//!   attribute
//!     sender : Person;
//!     receivers : Person
//!   constraint
//!     hasSender : $ forall i/Invitation i.sender defined $
//!   rule
//!     r1 : $ exists p/Person p = p $
//! end
//! ```
//!
//! The level keyword after `TELL` (`Class`, `Token`, `Individual`) is
//! optional and purely documentary. Assertion texts are enclosed in
//! `$ … $`.

use crate::error::{ObError, ObResult};
use std::fmt;

/// One attribute entry: `label : value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameAttr {
    /// Attribute label.
    pub label: String,
    /// Value / target object name.
    pub value: String,
}

/// A parsed frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectFrame {
    /// Object name.
    pub name: String,
    /// Classes after `in`.
    pub classes: Vec<String>,
    /// Superclasses after `isA`.
    pub isa: Vec<String>,
    /// `attribute` section.
    pub attrs: Vec<FrameAttr>,
    /// `constraint` section: `(name, assertion text)`.
    pub constraints: Vec<(String, String)>,
    /// `rule` section: `(name, assertion text)`.
    pub rules: Vec<(String, String)>,
}

impl ObjectFrame {
    /// A frame with just a name.
    pub fn named(name: impl Into<String>) -> Self {
        ObjectFrame {
            name: name.into(),
            ..ObjectFrame::default()
        }
    }

    /// Parses one `TELL … end` frame.
    pub fn parse(src: &str) -> ObResult<ObjectFrame> {
        let mut frames = parse_frames(src)?;
        match frames.len() {
            1 => Ok(frames.remove(0)),
            n => Err(ObError::Parse(format!("expected 1 frame, found {n}"))),
        }
    }

    /// Parses a sequence of frames.
    pub fn parse_all(src: &str) -> ObResult<Vec<ObjectFrame>> {
        parse_frames(src)
    }
}

impl fmt::Display for ObjectFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TELL {}", self.name)?;
        if !self.classes.is_empty() {
            write!(f, " in {}", self.classes.join(", "))?;
        }
        if !self.isa.is_empty() {
            write!(f, " isA {}", self.isa.join(", "))?;
        }
        let has_body =
            !self.attrs.is_empty() || !self.constraints.is_empty() || !self.rules.is_empty();
        if has_body {
            writeln!(f, " with")?;
            if !self.attrs.is_empty() {
                writeln!(f, "  attribute")?;
                for (i, a) in self.attrs.iter().enumerate() {
                    let sep = if i + 1 < self.attrs.len() { ";" } else { "" };
                    writeln!(f, "    {} : {}{}", a.label, a.value, sep)?;
                }
            }
            if !self.constraints.is_empty() {
                writeln!(f, "  constraint")?;
                for (i, (n, t)) in self.constraints.iter().enumerate() {
                    let sep = if i + 1 < self.constraints.len() {
                        ";"
                    } else {
                        ""
                    };
                    writeln!(f, "    {n} : $ {t} ${sep}")?;
                }
            }
            if !self.rules.is_empty() {
                writeln!(f, "  rule")?;
                for (i, (n, t)) in self.rules.iter().enumerate() {
                    let sep = if i + 1 < self.rules.len() { ";" } else { "" };
                    writeln!(f, "    {n} : $ {t} ${sep}")?;
                }
            }
            write!(f, "end")
        } else {
            write!(f, " end")
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Tok {
    Word(String),
    Colon,
    Semi,
    Comma,
    Assertion(String),
}

fn lex(src: &str) -> ObResult<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut cur = String::new();
    let flush = |cur: &mut String, out: &mut Vec<Tok>| {
        if !cur.is_empty() {
            out.push(Tok::Word(std::mem::take(cur)));
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '$' => {
                flush(&mut cur, &mut out);
                let mut text = String::new();
                let mut closed = false;
                for c2 in chars.by_ref() {
                    if c2 == '$' {
                        closed = true;
                        break;
                    }
                    text.push(c2);
                }
                if !closed {
                    return Err(ObError::Parse("unterminated assertion `$ … $`".into()));
                }
                out.push(Tok::Assertion(text.trim().to_string()));
            }
            ':' => {
                flush(&mut cur, &mut out);
                out.push(Tok::Colon);
            }
            ';' => {
                flush(&mut cur, &mut out);
                out.push(Tok::Semi);
            }
            ',' => {
                flush(&mut cur, &mut out);
                out.push(Tok::Comma);
            }
            c if c.is_whitespace() => flush(&mut cur, &mut out),
            c => cur.push(c),
        }
    }
    flush(&mut cur, &mut out);
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek_word(&self) -> Option<&str> {
        match self.toks.get(self.pos) {
            Some(Tok::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn word(&mut self) -> ObResult<String> {
        match self.toks.get(self.pos) {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            other => Err(ObError::Parse(format!("expected word, found {other:?}"))),
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word() == Some(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, t: Tok) -> bool {
        if self.toks.get(self.pos) == Some(&t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> ObResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ObError::Parse(format!(
                "expected punctuation at token {}",
                self.pos
            )))
        }
    }

    fn name_list(&mut self) -> ObResult<Vec<String>> {
        let mut out = vec![self.word()?];
        while self.eat(Tok::Comma) {
            out.push(self.word()?);
        }
        Ok(out)
    }

    fn assertion(&mut self) -> ObResult<String> {
        match self.toks.get(self.pos) {
            Some(Tok::Assertion(t)) => {
                let t = t.clone();
                self.pos += 1;
                Ok(t)
            }
            other => Err(ObError::Parse(format!(
                "expected `$ … $` assertion, found {other:?}"
            ))),
        }
    }
}

fn parse_frames(src: &str) -> ObResult<Vec<ObjectFrame>> {
    let mut p = P {
        toks: lex(src)?,
        pos: 0,
    };
    let mut frames = Vec::new();
    while p.pos < p.toks.len() {
        if !p.eat_word("TELL") {
            return Err(ObError::Parse("expected `TELL`".into()));
        }
        // Optional level keyword.
        if matches!(
            p.peek_word(),
            Some("Class") | Some("Token") | Some("Individual")
        ) {
            p.pos += 1;
        }
        let mut frame = ObjectFrame::named(p.word()?);
        if p.eat_word("in") {
            frame.classes = p.name_list()?;
        }
        if p.eat_word("isA") || p.eat_word("isa") {
            frame.isa = p.name_list()?;
        }
        if p.eat_word("with") {
            loop {
                if p.eat_word("end") {
                    break;
                }
                if p.eat_word("attribute") {
                    while p.peek_word().is_some()
                        && !matches!(
                            p.peek_word(),
                            Some("attribute") | Some("constraint") | Some("rule") | Some("end")
                        )
                    {
                        let label = p.word()?;
                        p.expect(Tok::Colon)?;
                        let value = p.word()?;
                        frame.attrs.push(FrameAttr { label, value });
                        p.eat(Tok::Semi);
                    }
                } else if p.eat_word("constraint") {
                    while p.peek_word().is_some()
                        && !matches!(
                            p.peek_word(),
                            Some("attribute") | Some("constraint") | Some("rule") | Some("end")
                        )
                    {
                        let name = p.word()?;
                        p.expect(Tok::Colon)?;
                        frame.constraints.push((name, p.assertion()?));
                        p.eat(Tok::Semi);
                    }
                } else if p.eat_word("rule") {
                    while p.peek_word().is_some()
                        && !matches!(
                            p.peek_word(),
                            Some("attribute") | Some("constraint") | Some("rule") | Some("end")
                        )
                    {
                        let name = p.word()?;
                        p.expect(Tok::Colon)?;
                        frame.rules.push((name, p.assertion()?));
                        p.eat(Tok::Semi);
                    }
                } else {
                    return Err(ObError::Parse(format!(
                        "expected section keyword or `end`, found {:?}",
                        p.peek_word()
                    )));
                }
            }
        } else if !p.eat_word("end") {
            return Err(ObError::Parse("expected `with` or `end`".into()));
        }
        frames.push(frame);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_frame() {
        let f = ObjectFrame::parse(
            "TELL Class Invitation in TDL_EntityClass isA Paper with\n\
               attribute\n\
                 sender : Person;\n\
                 receivers : Person\n\
               constraint\n\
                 hasSender : $ forall i/Invitation i.sender defined $\n\
             end",
        )
        .unwrap();
        assert_eq!(f.name, "Invitation");
        assert_eq!(f.classes, vec!["TDL_EntityClass"]);
        assert_eq!(f.isa, vec!["Paper"]);
        assert_eq!(f.attrs.len(), 2);
        assert_eq!(f.attrs[0].label, "sender");
        assert_eq!(f.constraints.len(), 1);
        assert_eq!(f.constraints[0].0, "hasSender");
        assert!(f.constraints[0].1.contains("forall"));
    }

    #[test]
    fn minimal_frames() {
        let f = ObjectFrame::parse("TELL Paper end").unwrap();
        assert_eq!(f.name, "Paper");
        assert!(f.classes.is_empty());
        let f = ObjectFrame::parse("TELL Token inv42 in Invitation end").unwrap();
        assert_eq!(f.name, "inv42");
        assert_eq!(f.classes, vec!["Invitation"]);
    }

    #[test]
    fn multiple_classes_and_supers() {
        let f = ObjectFrame::parse("TELL X in A, B isA C, D end").unwrap();
        assert_eq!(f.classes, vec!["A", "B"]);
        assert_eq!(f.isa, vec!["C", "D"]);
    }

    #[test]
    fn multiple_frames() {
        let fs = ObjectFrame::parse_all("TELL Paper end\nTELL Invitation isA Paper end").unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[1].isa, vec!["Paper"]);
    }

    #[test]
    fn rules_section() {
        let f = ObjectFrame::parse("TELL C with rule r1 : $ true $; r2 : $ x = x $ end").unwrap();
        assert_eq!(f.rules.len(), 2);
        assert_eq!(f.rules[1].1, "x = x");
    }

    #[test]
    fn interleaved_sections() {
        let f = ObjectFrame::parse(
            "TELL C with attribute a : B constraint k : $ true $ attribute b : D end",
        )
        .unwrap();
        assert_eq!(f.attrs.len(), 2);
        assert_eq!(f.constraints.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(
            ObjectFrame::parse("Invitation end").is_err(),
            "missing TELL"
        );
        assert!(ObjectFrame::parse("TELL X with").is_err(), "missing end");
        assert!(ObjectFrame::parse("TELL X with attribute a Person end").is_err());
        assert!(ObjectFrame::parse("TELL X with constraint c : $ unterminated end").is_err());
        assert!(ObjectFrame::parse("TELL A end TELL B end TELL").is_err());
        assert!(
            ObjectFrame::parse("TELL A end TELL B end").is_err(),
            "parse() wants one"
        );
    }

    #[test]
    fn display_reparses() {
        let src = "TELL Invitation in TDL_EntityClass isA Paper with\n\
                   attribute sender : Person; receivers : Person\n\
                   constraint c : $ true $\n\
                   rule r : $ x = x $\n\
                   end";
        let f1 = ObjectFrame::parse(src).unwrap();
        let f2 = ObjectFrame::parse(&f1.to_string()).unwrap();
        assert_eq!(f1, f2);
    }
}
