//! The Consistency Checker (§3.1, \[GALL86\]).
//!
//! "After executing a decision, the knowledge base must be in a
//! consistent state (satisfying all the axioms of CML and the
//! constraints imposed on certain objects in the knowledge base)."
//!
//! Two entry points:
//!
//! * [`check_full`] — validate every axiom and every class constraint;
//! * [`check_touched`] — the set-oriented optimization: "since a whole
//!   set of operations is passed to the proposition processor,
//!   set-oriented optimization of the consistency check is being
//!   studied." Given the batch of propositions a decision created, only
//!   the constraints of classes reachable from the touched objects are
//!   re-evaluated. Bench E-1 quantifies the difference.

use crate::transform::constraints_of;
use std::collections::HashSet;
use telos::assertion::{eval, parse, Env};
use telos::axioms;
use telos::{Kb, PropId};

/// A consistency violation: an axiom violation or a failed constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A CML axiom violation (from `telos::axioms`).
    Axiom(String),
    /// A class constraint evaluated to false.
    Constraint {
        /// Class carrying the constraint.
        class: String,
        /// Constraint name.
        name: String,
        /// Constraint text.
        text: String,
    },
    /// A constraint could not be evaluated (unknown reference).
    Unevaluable {
        /// Class carrying the constraint.
        class: String,
        /// Constraint name.
        name: String,
        /// Error message.
        message: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Axiom(m) => write!(f, "axiom: {m}"),
            Violation::Constraint { class, name, text } => {
                write!(f, "constraint `{name}` on `{class}` violated: {text}")
            }
            Violation::Unevaluable {
                class,
                name,
                message,
            } => {
                write!(f, "constraint `{name}` on `{class}` unevaluable: {message}")
            }
        }
    }
}

/// Statistics of one check run (for bench E-1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Classes whose constraints were considered.
    pub classes_visited: usize,
    /// Constraints evaluated.
    pub constraints_evaluated: usize,
}

fn check_class_constraints(
    kb: &Kb,
    class: PropId,
    out: &mut Vec<Violation>,
    stats: &mut CheckStats,
) {
    let class_name = kb.display(class);
    for (name, text) in constraints_of(kb, class) {
        stats.constraints_evaluated += 1;
        match parse(&text) {
            Err(e) => out.push(Violation::Unevaluable {
                class: class_name.clone(),
                name,
                message: e.to_string(),
            }),
            Ok(expr) => match eval(kb, &expr, &mut Env::new()) {
                Err(e) => out.push(Violation::Unevaluable {
                    class: class_name.clone(),
                    name,
                    message: e.to_string(),
                }),
                Ok(true) => {}
                Ok(false) => out.push(Violation::Constraint {
                    class: class_name.clone(),
                    name,
                    text,
                }),
            },
        }
    }
}

/// Full check: all CML axioms plus every constraint of every believed
/// class that has one.
pub fn check_full(kb: &Kb) -> (Vec<Violation>, CheckStats) {
    let mut out: Vec<Violation> = axioms::check_all(kb)
        .into_iter()
        .map(|v| Violation::Axiom(v.to_string()))
        .collect();
    let mut stats = CheckStats::default();
    for id in 0..kb.len() {
        let id = PropId(id as u32);
        let Ok(p) = kb.get(id) else { continue };
        if !p.is_believed() || !p.is_individual() {
            continue;
        }
        stats.classes_visited += 1;
        check_class_constraints(kb, id, &mut out, &mut stats);
    }
    (out, stats)
}

/// Set-oriented check: only the constraints of classes *relevant to
/// the batch* — the classes (transitive, through isa) of every touched
/// object, and touched objects that are themselves classes. CML axioms
/// are likewise validated only for the batch (`axioms::check_props`).
pub fn check_touched(kb: &Kb, touched: &[PropId]) -> (Vec<Violation>, CheckStats) {
    check_touched_via(kb, touched, |obj| kb.all_classes_of(obj))
}

/// [`check_touched`] with the class closure supplied by the caller.
///
/// The closure answers "which classes is `obj` an instance of,
/// transitively through isa?". The default walks the Kb
/// (`Kb::all_classes_of`); a caller holding a materialized `inT` view
/// can answer from the view instead, turning the closure step into a
/// hash lookup.
pub fn check_touched_via<F>(
    kb: &Kb,
    touched: &[PropId],
    classes_of: F,
) -> (Vec<Violation>, CheckStats)
where
    F: Fn(PropId) -> Vec<PropId>,
{
    let mut stats = CheckStats::default();
    if touched.is_empty() {
        return (Vec::new(), stats);
    }
    let mut out: Vec<Violation> = axioms::check_props(kb, touched)
        .into_iter()
        .map(|v| Violation::Axiom(v.to_string()))
        .collect();
    let mut classes: HashSet<PropId> = HashSet::new();
    for &t in touched {
        let Ok(p) = kb.get(t) else { continue };
        // For links, the relevant objects are their endpoints.
        let objects = if p.is_individual() {
            vec![t]
        } else {
            vec![p.source, p.dest]
        };
        for obj in objects {
            classes.insert(obj); // the object may itself be a class
            for c in classes_of(obj) {
                classes.insert(c);
            }
        }
    }
    let mut ordered: Vec<PropId> = classes.into_iter().collect();
    ordered.sort();
    for class in ordered {
        let Ok(p) = kb.get(class) else { continue };
        if !p.is_believed() || !p.is_individual() {
            continue;
        }
        stats.classes_visited += 1;
        check_class_constraints(kb, class, &mut out, &mut stats);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ObjectFrame;
    use crate::transform::{tell, tell_all};

    fn scenario_kb() -> Kb {
        let mut kb = Kb::new();
        let frames = ObjectFrame::parse_all(
            "TELL Person end\n\
             TELL Paper with attribute author : Person end\n\
             TELL Invitation isA Paper with\n\
               attribute sender : Person\n\
               constraint hasSender : $ forall i/Invitation i.sender defined $\n\
             end\n\
             TELL maria in Person end",
        )
        .unwrap();
        tell_all(&mut kb, &frames).unwrap();
        kb
    }

    #[test]
    fn clean_kb_checks_clean() {
        let kb = scenario_kb();
        let (violations, stats) = check_full(&kb);
        assert_eq!(violations, Vec::new());
        assert!(stats.constraints_evaluated >= 1);
        assert!(stats.classes_visited > 3);
    }

    #[test]
    fn violated_constraint_reported() {
        let mut kb = scenario_kb();
        // An invitation without a sender violates hasSender.
        tell(
            &mut kb,
            &ObjectFrame::parse("TELL inv1 in Invitation end").unwrap(),
        )
        .unwrap();
        let (violations, _) = check_full(&kb);
        assert_eq!(violations.len(), 1);
        match &violations[0] {
            Violation::Constraint { class, name, .. } => {
                assert_eq!(class, "Invitation");
                assert_eq!(name, "hasSender");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Fixing the object clears the violation.
        tell(
            &mut kb,
            &ObjectFrame::parse("TELL inv1 with attribute sender : maria end").unwrap(),
        )
        .unwrap();
        let (violations, _) = check_full(&kb);
        assert!(violations.is_empty());
    }

    #[test]
    fn touched_check_visits_fewer_classes() {
        let mut kb = scenario_kb();
        // Many unrelated constrained classes.
        for i in 0..20 {
            tell(
                &mut kb,
                &ObjectFrame::parse(&format!("TELL Other{i} with constraint c : $ true $ end"))
                    .unwrap(),
            )
            .unwrap();
        }
        let receipt = tell(
            &mut kb,
            &ObjectFrame::parse("TELL inv1 in Invitation with attribute sender : maria end")
                .unwrap(),
        )
        .unwrap();
        let (v_full, s_full) = check_full(&kb);
        let (v_touched, s_touched) = check_touched(&kb, &receipt.created);
        assert!(v_full.is_empty() && v_touched.is_empty());
        assert!(
            s_touched.constraints_evaluated < s_full.constraints_evaluated,
            "touched {s_touched:?} vs full {s_full:?}"
        );
        assert!(s_touched.classes_visited < s_full.classes_visited);
    }

    #[test]
    fn touched_check_still_catches_relevant_violation() {
        let mut kb = scenario_kb();
        let receipt = tell(
            &mut kb,
            &ObjectFrame::parse("TELL inv1 in Invitation end").unwrap(),
        )
        .unwrap();
        let (violations, _) = check_touched(&kb, &receipt.created);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn touched_via_custom_closure_matches_default() {
        let mut kb = scenario_kb();
        let receipt = tell(
            &mut kb,
            &ObjectFrame::parse("TELL inv1 in Invitation end").unwrap(),
        )
        .unwrap();
        let (v_default, s_default) = check_touched(&kb, &receipt.created);
        let (v_via, s_via) = check_touched_via(&kb, &receipt.created, |o| kb.all_classes_of(o));
        assert_eq!(v_default, v_via);
        assert_eq!(s_default, s_via);
        // A closure that answers nothing still checks the touched
        // objects themselves (and the batch axioms).
        let (v_none, _) = check_touched_via(&kb, &receipt.created, |_| Vec::new());
        assert!(v_none.len() <= v_default.len());
    }

    #[test]
    fn empty_batch_checks_nothing() {
        let kb = scenario_kb();
        let (violations, stats) = check_touched(&kb, &[]);
        assert!(violations.is_empty());
        assert_eq!(stats.constraints_evaluated, 0);
    }

    #[test]
    fn axiom_violations_surface() {
        let mut kb = scenario_kb();
        let inv1 = kb.individual("inv1").unwrap();
        let invitation = kb.lookup("Invitation").unwrap();
        kb.instantiate(inv1, invitation).unwrap();
        let maria = kb.lookup("maria").unwrap();
        kb.put_attr(inv1, "sender", maria).unwrap();
        // An undeclared attribute on a classified object.
        let ghost = kb.individual("ghostvalue").unwrap();
        let bad = kb.put_attr(inv1, "bogus", ghost).unwrap();
        let (violations, _) = check_touched(&kb, &[bad]);
        assert!(violations.iter().any(|v| matches!(v, Violation::Axiom(_))));
    }

    #[test]
    fn unevaluable_constraint_reported_not_crashed() {
        let mut kb = scenario_kb();
        // Reference a name that is later untold.
        tell(
            &mut kb,
            &ObjectFrame::parse("TELL Fragile with constraint c : $ ghostname in Person $ end")
                .unwrap(),
        )
        .unwrap();
        let (violations, _) = check_full(&kb);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::Unevaluable { .. })));
    }
}
