//! The Object Transformer: frames ⇄ propositions (fig 3-2).
//!
//! `TELL` turns a frame into propositions: one individual for the
//! object, `instanceof` links for its classes, `isa` links, attribute
//! propositions classified under matching attribute classes, and
//! constraint/rule links to assertion objects. `frame_of` is the
//! inverse: it groups the propositions around an object identifier
//! back into a frame.

use crate::error::{ObError, ObResult};
use crate::frame::{FrameAttr, ObjectFrame};
use telos::{Kb, PropId, TelosResult};

/// Marker individuals installed on first use.
pub mod markers {
    /// Class of constraint assertion objects.
    pub const CONSTRAINT: &str = "ConstraintAssertion";
    /// Class of rule assertion objects.
    pub const RULE: &str = "RuleAssertion";
    /// Label of the text attribute on assertion objects.
    pub const TEXT: &str = "text";
}

fn marker(kb: &mut Kb, name: &str) -> TelosResult<PropId> {
    if let Some(id) = kb.lookup(name) {
        return Ok(id);
    }
    let id = kb.individual(name)?;
    let assertion = kb.builtins().assertion;
    kb.specialize(id, assertion)?;
    // Declare the `text` attribute class once, on Assertion itself, so
    // assertion objects' text links are well-typed under aggregation.
    if kb.attr_values(assertion, markers::TEXT).is_empty() {
        let proposition = kb.builtins().proposition;
        kb.put_attr(assertion, markers::TEXT, proposition)?;
    }
    Ok(id)
}

/// What a TELL created.
#[derive(Debug, Clone)]
pub struct TellReceipt {
    /// The told object.
    pub object: PropId,
    /// Every proposition created by this TELL (object, links,
    /// assertion objects), in creation order.
    pub created: Vec<PropId>,
}

/// TELLs a frame into the KB.
pub fn tell(kb: &mut Kb, frame: &ObjectFrame) -> ObResult<TellReceipt> {
    let mark = kb.len();
    let object = kb.individual(&frame.name)?;
    for class in &frame.classes {
        let c = kb
            .lookup(class)
            .ok_or_else(|| ObError::Unknown(format!("class `{class}`")))?;
        kb.instantiate(object, c)?;
    }
    for sup in &frame.isa {
        let s = kb
            .lookup(sup)
            .ok_or_else(|| ObError::Unknown(format!("superclass `{sup}`")))?;
        kb.specialize(object, s)?;
    }
    for FrameAttr { label, value } in &frame.attrs {
        let v = kb
            .lookup(value)
            .ok_or_else(|| ObError::Unknown(format!("attribute value `{value}`")))?;
        match kb.find_attr_class(object, label) {
            Some(ac) => {
                kb.put_attr_typed(object, label, v, ac)?;
            }
            None => {
                kb.put_attr(object, label, v)?;
            }
        }
    }
    for (name, text) in &frame.constraints {
        tell_assertion(kb, object, name, text, markers::CONSTRAINT)?;
    }
    for (name, text) in &frame.rules {
        tell_assertion(kb, object, name, text, markers::RULE)?;
    }
    let created = (mark..kb.len()).map(|i| PropId(i as u32)).collect();
    kb.tick();
    Ok(TellReceipt { object, created })
}

/// Whether an assertion text is a deductive rule in datalog notation
/// (`head :- body.`) rather than the assertion language.
pub fn is_datalog_text(text: &str) -> bool {
    text.contains(":-")
}

fn tell_assertion(
    kb: &mut Kb,
    object: PropId,
    name: &str,
    text: &str,
    kind: &str,
) -> ObResult<PropId> {
    // Validate the assertion text eagerly: a malformed constraint must
    // be rejected at TELL time, not at check time. Rule sections may
    // carry deductive rules in datalog notation, validated by the
    // datalog parser instead.
    if kind == markers::RULE && is_datalog_text(text) {
        let text = text.trim();
        let dotted = if text.ends_with('.') {
            text.to_string()
        } else {
            format!("{text}.")
        };
        datalog::Program::parse(&dotted)?;
    } else {
        telos::assertion::parse(text)?;
    }
    let owner_name = kb.display(object);
    let obj_name = format!("{owner_name}!{name}");
    let assertion_obj = kb.individual(&obj_name)?;
    let kind_class = marker(kb, kind)?;
    kb.instantiate(assertion_obj, kind_class)?;
    let text_obj = kb.individual(text)?;
    kb.put_attr(assertion_obj, markers::TEXT, text_obj)?;
    kb.put_attr(object, name, assertion_obj)?;
    Ok(assertion_obj)
}

/// TELLs several frames, in order.
pub fn tell_all(kb: &mut Kb, frames: &[ObjectFrame]) -> ObResult<Vec<TellReceipt>> {
    frames.iter().map(|f| tell(kb, f)).collect()
}

/// UNTELLs an object and all propositions depending on it.
pub fn untell_object(kb: &mut Kb, name: &str) -> ObResult<Vec<PropId>> {
    let id = kb
        .lookup(name)
        .ok_or_else(|| ObError::Unknown(format!("object `{name}`")))?;
    Ok(kb.untell_cascade(id)?)
}

/// The constraint assertions attached to `class` (name, text pairs).
pub fn constraints_of(kb: &Kb, class: PropId) -> Vec<(String, String)> {
    assertions_of(kb, class, markers::CONSTRAINT)
}

/// The rule assertions attached to `class`.
pub fn rules_of(kb: &Kb, class: PropId) -> Vec<(String, String)> {
    assertions_of(kb, class, markers::RULE)
}

fn assertions_of(kb: &Kb, class: PropId, kind: &str) -> Vec<(String, String)> {
    let Some(kind_class) = kb.lookup(kind) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for attr in kb.attrs_of(class) {
        let Ok(p) = kb.get(attr) else { continue };
        if !kb.is_instance_of(p.dest, kind_class) {
            continue;
        }
        let label = kb.resolve(p.label).to_string();
        let texts = kb.attr_values(p.dest, markers::TEXT);
        if let Some(&t) = texts.first() {
            out.push((label, kb.display(t)));
        }
    }
    out
}

/// Every stored deductive rule in datalog notation, across all rule
/// assertion objects in the KB. Used by the static analyzer to check a
/// newly admitted rule against the rule base it joins (a negative
/// cycle can close over an old rule).
pub fn stored_datalog_rules(kb: &Kb) -> Vec<String> {
    let Some(rule_class) = kb.lookup(markers::RULE) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in kb.all_instances_of(rule_class) {
        for &t in &kb.attr_values(obj, markers::TEXT) {
            let text = kb.display(t);
            if is_datalog_text(&text) {
                out.push(text);
            }
        }
    }
    out
}

/// The inverse transformation: groups the propositions around an
/// object identifier back into a frame.
pub fn frame_of(kb: &Kb, object: PropId) -> ObResult<ObjectFrame> {
    let prop = kb.get(object)?;
    if !prop.is_individual() {
        return Err(ObError::Unknown(format!(
            "{} is a link, not an object",
            kb.display(object)
        )));
    }
    let mut frame = ObjectFrame::named(kb.display(object));
    frame.classes = kb
        .classes_of(object)
        .into_iter()
        .map(|c| kb.display(c))
        .collect();
    frame.isa = kb
        .isa_parents(object)
        .into_iter()
        .map(|c| kb.display(c))
        .collect();
    let constraint_class = kb.lookup(markers::CONSTRAINT);
    let rule_class = kb.lookup(markers::RULE);
    for attr in kb.attrs_of(object) {
        let p = kb.get(attr)?;
        let label = kb.resolve(p.label).to_string();
        let is_constraint = constraint_class.is_some_and(|c| kb.is_instance_of(p.dest, c));
        let is_rule = rule_class.is_some_and(|c| kb.is_instance_of(p.dest, c));
        if is_constraint || is_rule {
            let texts = kb.attr_values(p.dest, markers::TEXT);
            if let Some(&t) = texts.first() {
                let entry = (label, kb.display(t));
                if is_constraint {
                    frame.constraints.push(entry);
                } else {
                    frame.rules.push(entry);
                }
            }
        } else {
            frame.attrs.push(FrameAttr {
                label,
                value: kb.display(p.dest),
            });
        }
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb_with_document_classes() -> Kb {
        let mut kb = Kb::new();
        let frames = ObjectFrame::parse_all(
            "TELL TDL_EntityClass isA Class end\n\
             TELL Person end\n\
             TELL Paper in TDL_EntityClass with attribute author : Person end\n\
             TELL Invitation in TDL_EntityClass isA Paper with\n\
               attribute sender : Person\n\
             end",
        )
        .unwrap();
        tell_all(&mut kb, &frames).unwrap();
        kb
    }

    #[test]
    fn fig_3_2_propositional_representation() {
        // "Consider a class TDL_EntityClass called Invitation, which
        // relates invitations to persons by an attribute sender."
        let kb = kb_with_document_classes();
        let invitation = kb.lookup("Invitation").unwrap();
        let tdl = kb.lookup("TDL_EntityClass").unwrap();
        let person = kb.lookup("Person").unwrap();
        let paper = kb.lookup("Paper").unwrap();
        // Invitation instanceof TDL_EntityClass (fig 3-2's unlabeled link).
        assert!(kb.classes_of(invitation).contains(&tdl));
        // Invitation isa Paper.
        assert!(kb.isa_parents(invitation).contains(&paper));
        // The attribute proposition <Invitation, sender, Person>.
        let sender_attrs = kb.attr_values(invitation, "sender");
        assert_eq!(sender_attrs, vec![person]);
        // The attribute proposition itself is an object with a
        // believed identity, per "nodes are also propositions".
        let attr_id = kb.attrs_of(invitation)[0];
        assert!(kb.get(attr_id).unwrap().is_believed());
        assert_eq!(kb.display(attr_id), "<Invitation sender Person>");
    }

    #[test]
    fn token_attributes_are_classified() {
        let mut kb = kb_with_document_classes();
        tell(
            &mut kb,
            &ObjectFrame::parse("TELL maria in Person end").unwrap(),
        )
        .unwrap();
        tell(
            &mut kb,
            &ObjectFrame::parse("TELL inv42 in Invitation with attribute sender : maria end")
                .unwrap(),
        )
        .unwrap();
        let inv42 = kb.lookup("inv42").unwrap();
        let attr = kb.attrs_of(inv42)[0];
        // Classified under <Invitation, sender, Person> as fig 3-2 shows.
        let ac = kb.attr_class_of(attr).unwrap();
        assert_eq!(kb.display(ac), "<Invitation sender Person>");
    }

    #[test]
    fn unknown_references_rejected() {
        let mut kb = Kb::new();
        let f = ObjectFrame::parse("TELL x in Ghost end").unwrap();
        assert!(matches!(tell(&mut kb, &f), Err(ObError::Unknown(_))));
        let f = ObjectFrame::parse("TELL x isA Ghost end").unwrap();
        assert!(matches!(tell(&mut kb, &f), Err(ObError::Unknown(_))));
        let f = ObjectFrame::parse("TELL x with attribute a : Ghost end").unwrap();
        assert!(matches!(tell(&mut kb, &f), Err(ObError::Unknown(_))));
    }

    #[test]
    fn constraints_stored_and_retrieved() {
        let mut kb = kb_with_document_classes();
        let f = ObjectFrame::parse(
            "TELL Minutes in TDL_EntityClass isA Paper with\n\
               constraint approved : $ forall m/Minutes m.approvedBy defined $\n\
             end",
        )
        .unwrap();
        tell(&mut kb, &f).unwrap();
        let minutes = kb.lookup("Minutes").unwrap();
        let cs = constraints_of(&kb, minutes);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].0, "approved");
        assert!(cs[0].1.contains("approvedBy"));
        assert!(rules_of(&kb, minutes).is_empty());
    }

    #[test]
    fn malformed_constraint_rejected_at_tell_time() {
        let mut kb = kb_with_document_classes();
        let f = ObjectFrame::parse(
            "TELL Bad in TDL_EntityClass with constraint c : $ forall broken $ end",
        )
        .unwrap();
        assert!(tell(&mut kb, &f).is_err());
    }

    #[test]
    fn frame_roundtrip() {
        let mut kb = kb_with_document_classes();
        let src = ObjectFrame::parse(
            "TELL Minutes in TDL_EntityClass isA Paper with\n\
               attribute approvedBy : Person\n\
               constraint c : $ true $\n\
               rule r : $ true $\n\
             end",
        )
        .unwrap();
        tell(&mut kb, &src).unwrap();
        let minutes = kb.lookup("Minutes").unwrap();
        let back = frame_of(&kb, minutes).unwrap();
        assert_eq!(back.name, "Minutes");
        assert_eq!(back.classes, vec!["TDL_EntityClass"]);
        assert_eq!(back.isa, vec!["Paper"]);
        assert_eq!(back.attrs.len(), 1);
        assert_eq!(back.attrs[0].label, "approvedBy");
        assert_eq!(
            back.constraints,
            vec![("c".to_string(), "true".to_string())]
        );
        assert_eq!(back.rules, vec![("r".to_string(), "true".to_string())]);
    }

    #[test]
    fn frame_of_rejects_links() {
        let kb = kb_with_document_classes();
        let invitation = kb.lookup("Invitation").unwrap();
        let attr = kb.attrs_of(invitation)[0];
        assert!(frame_of(&kb, attr).is_err());
    }

    #[test]
    fn untell_object_cascades() {
        let mut kb = kb_with_document_classes();
        let receipt = tell(
            &mut kb,
            &ObjectFrame::parse("TELL maria in Person end").unwrap(),
        )
        .unwrap();
        let untold = untell_object(&mut kb, "maria").unwrap();
        assert!(untold.contains(&receipt.object));
        assert!(kb.lookup("maria").is_none());
        assert!(untell_object(&mut kb, "maria").is_err());
    }

    #[test]
    fn receipt_lists_created_propositions() {
        let mut kb = kb_with_document_classes();
        let before = kb.len();
        let receipt = tell(
            &mut kb,
            &ObjectFrame::parse("TELL maria in Person end").unwrap(),
        )
        .unwrap();
        assert_eq!(receipt.created.len(), kb.len() - before);
        assert!(receipt.created.contains(&receipt.object));
        // maria + instanceof link
        assert_eq!(receipt.created.len(), 2);
    }

    #[test]
    fn retell_existing_object_is_additive() {
        let mut kb = kb_with_document_classes();
        tell(
            &mut kb,
            &ObjectFrame::parse("TELL maria in Person end").unwrap(),
        )
        .unwrap();
        // Telling more about maria adds to the same object.
        let receipt = tell(
            &mut kb,
            &ObjectFrame::parse("TELL maria in Person end").unwrap(),
        )
        .unwrap();
        assert_eq!(kb.display(receipt.object), "maria");
        assert_eq!(receipt.created.len(), 0, "nothing new to create");
    }
}
