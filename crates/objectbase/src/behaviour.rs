//! Behaviours (§3.1): "Behaviours … are much like methods of classes
//! in SMALLTALK. They associate operations such as create or display
//! to the instances of a class by appropriate behaviour links."
//!
//! A [`BehaviourRegistry`] binds named operations (Rust closures) to
//! classes; the binding is documented in the KB as an attribute link
//! from the class to a behaviour object (an instance of the builtin
//! `Behaviour`). Invocation on an instance dispatches along its
//! classes, most specific first (direct classes before isa ancestors),
//! mirroring method lookup.

use crate::error::{ObError, ObResult};
use std::collections::HashMap;
use telos::{Kb, PropId};

/// The result type of a behaviour body.
pub type BehaviourResult = ObResult<String>;

/// A behaviour body: receives the KB and the receiver object.
pub type BehaviourFn = Box<dyn Fn(&Kb, PropId) -> BehaviourResult>;

/// Registry of behaviour implementations keyed by `(class, operation)`.
#[derive(Default)]
pub struct BehaviourRegistry {
    bodies: HashMap<(PropId, String), BehaviourFn>,
}

impl BehaviourRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BehaviourRegistry::default()
    }

    /// Binds `operation` on `class`: documents the behaviour link in
    /// the KB and stores the body. Rebinding replaces the body.
    pub fn bind(
        &mut self,
        kb: &mut Kb,
        class: &str,
        operation: &str,
        body: impl Fn(&Kb, PropId) -> BehaviourResult + 'static,
    ) -> ObResult<()> {
        let class_id = kb
            .lookup(class)
            .ok_or_else(|| ObError::Unknown(format!("class `{class}`")))?;
        // Document the link: class --operation--> behaviour object.
        let obj_name = format!("{class}!{operation}");
        let already = kb.lookup(&obj_name).is_some();
        let b_obj = kb.individual(&obj_name)?;
        if !already {
            let behaviour_class = kb.builtins().behaviour;
            kb.instantiate(b_obj, behaviour_class)?;
            kb.put_attr(class_id, operation, b_obj)?;
        }
        self.bodies
            .insert((class_id, operation.to_string()), Box::new(body));
        Ok(())
    }

    /// The classes of `obj` in dispatch order: direct classes first (in
    /// KB order), then their isa ancestors breadth-first.
    fn dispatch_order(kb: &Kb, obj: PropId) -> Vec<PropId> {
        let mut out = Vec::new();
        let direct = kb.classes_of(obj);
        for &c in &direct {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        for &c in &direct {
            for a in kb.isa_ancestors(c) {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Invokes `operation` on the object named `receiver`, dispatching
    /// along its classes. Errors if no class of the receiver binds the
    /// operation (a "message not understood").
    pub fn invoke(&self, kb: &Kb, receiver: &str, operation: &str) -> BehaviourResult {
        let obj = kb
            .lookup(receiver)
            .ok_or_else(|| ObError::Unknown(format!("object `{receiver}`")))?;
        for class in Self::dispatch_order(kb, obj) {
            if let Some(body) = self.bodies.get(&(class, operation.to_string())) {
                return body(kb, obj);
            }
        }
        Err(ObError::Unknown(format!(
            "no behaviour `{operation}` understood by `{receiver}`"
        )))
    }

    /// The operations the object understands, sorted.
    pub fn understood(&self, kb: &Kb, receiver: &str) -> ObResult<Vec<String>> {
        let obj = kb
            .lookup(receiver)
            .ok_or_else(|| ObError::Unknown(format!("object `{receiver}`")))?;
        let mut out: Vec<String> = Vec::new();
        for class in Self::dispatch_order(kb, obj) {
            for ((c, op), _) in self.bodies.iter() {
                if *c == class && !out.contains(op) {
                    out.push(op.clone());
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ObjectFrame;
    use crate::transform::{frame_of, tell_all};

    fn kb() -> Kb {
        let mut kb = Kb::new();
        tell_all(
            &mut kb,
            &ObjectFrame::parse_all(
                "TELL Paper isA Class end\n\
                 TELL Invitation isA Paper end\n\
                 TELL inv1 in Invitation end",
            )
            .unwrap(),
        )
        .unwrap();
        kb
    }

    #[test]
    fn display_behaviour_dispatches() {
        let mut kb = kb();
        let mut reg = BehaviourRegistry::new();
        reg.bind(&mut kb, "Paper", "display", |kb, obj| {
            Ok(frame_of(kb, obj)?.to_string())
        })
        .unwrap();
        // inv1 is an Invitation, display is inherited from Paper.
        let shown = reg.invoke(&kb, "inv1", "display").unwrap();
        assert!(shown.contains("TELL inv1 in Invitation"));
    }

    #[test]
    fn most_specific_class_wins() {
        let mut kb = kb();
        let mut reg = BehaviourRegistry::new();
        reg.bind(&mut kb, "Paper", "kind", |_, _| Ok("paper".into()))
            .unwrap();
        reg.bind(
            &mut kb,
            "Invitation",
            "kind",
            |_, _| Ok("invitation".into()),
        )
        .unwrap();
        assert_eq!(reg.invoke(&kb, "inv1", "kind").unwrap(), "invitation");
    }

    #[test]
    fn message_not_understood() {
        let mut kb = kb();
        let reg = BehaviourRegistry::new();
        assert!(reg.invoke(&kb, "inv1", "fly").is_err());
        assert!(reg.invoke(&kb, "ghost", "display").is_err());
        let mut reg = BehaviourRegistry::new();
        reg.bind(&mut kb, "Paper", "display", |_, _| Ok("ok".into()))
            .unwrap();
        assert!(reg
            .bind(&mut kb, "Ghost", "x", |_, _| Ok(String::new()))
            .is_err());
    }

    #[test]
    fn behaviour_links_documented_in_kb() {
        let mut kb = kb();
        let mut reg = BehaviourRegistry::new();
        reg.bind(&mut kb, "Paper", "display", |_, _| Ok(String::new()))
            .unwrap();
        let paper = kb.lookup("Paper").unwrap();
        let targets = kb.attr_values(paper, "display");
        assert_eq!(targets.len(), 1);
        let behaviour = kb.builtins().behaviour;
        assert!(kb.is_instance_of(targets[0], behaviour));
        // Rebinding does not duplicate the link.
        reg.bind(&mut kb, "Paper", "display", |_, _| Ok("v2".into()))
            .unwrap();
        assert_eq!(kb.attr_values(paper, "display").len(), 1);
        assert_eq!(reg.invoke(&kb, "inv1", "display").unwrap(), "v2");
    }

    #[test]
    fn understood_lists_operations() {
        let mut kb = kb();
        let mut reg = BehaviourRegistry::new();
        reg.bind(&mut kb, "Paper", "display", |_, _| Ok(String::new()))
            .unwrap();
        reg.bind(&mut kb, "Invitation", "send", |_, _| Ok(String::new()))
            .unwrap();
        assert_eq!(
            reg.understood(&kb, "inv1").unwrap(),
            vec!["display".to_string(), "send".to_string()]
        );
    }
}
