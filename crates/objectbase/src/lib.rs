#![warn(missing_docs)]

//! The **object processor** of ConceptBase (paper §3.1).
//!
//! "The Object Processor groups propositions around a common source —
//! the object identifier. … The Object Transformer transforms this
//! class into a set of propositions. … After executing a decision, the
//! knowledge base must be in a consistent state … verified by a
//! Consistency Checker."
//!
//! * [`frame`] — the CML frame syntax (`TELL Class Invitation in
//!   TDL_EntityClass isA Paper with attribute sender : Person end`);
//! * [`transform`] — the Object Transformer: frames ⇄ proposition sets
//!   (fig 3-2);
//! * [`consistency`] — the Consistency Checker: CML axioms plus class
//!   constraints, with the set-oriented batch optimization §3.1 says
//!   "is being studied" (benchmarked as E-1);
//! * [`query`] — ASK evaluation and the deductive-relational bridge to
//!   the `datalog` inference engines.

pub mod behaviour;
pub mod consistency;
pub mod error;
pub mod frame;
pub mod query;
pub mod transform;

pub use error::{ObError, ObResult};
pub use frame::ObjectFrame;
pub use transform::{frame_of, tell, untell_object, TellReceipt};
