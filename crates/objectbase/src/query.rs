//! ASK evaluation and the deductive-relational bridge (§3.1).
//!
//! "The object processor understands the knowledge base as a deductive
//! relational database." [`to_edb`] exports the believed propositions
//! as datalog relations (`in_/2`, `isa/2`, `attr/3`), [`base_program`]
//! supplies the CML closure rules (transitive specialization, instance
//! inheritance), and [`DeductiveView`] runs user rules on top with a
//! choice of inference engine — bottom-up, top-down with lemmas, or
//! magic sets.

use crate::error::ObResult;
use datalog::ast::{Atom, Program, Term, Value};
use datalog::db::Database;
use datalog::seminaive::EvalStats;
use datalog::{magic, seminaive, topdown};
use telos::assertion;
use telos::{Kb, KbRead, KbVersion, PropId, PropStore, TelosError};

/// EDB predicate names exported from the KB.
pub mod preds {
    /// `in_(X, C)` — direct classification.
    pub const IN: &str = "in_";
    /// `isa(C, D)` — direct specialization.
    pub const ISA: &str = "isa";
    /// `attr(X, L, Y)` — believed attribute.
    pub const ATTR: &str = "attr";
}

/// Exports the believed network as an extensional database. Objects
/// are identified by their display names; anonymous links are skipped
/// (they reappear as `attr` tuples of their endpoints).
pub fn to_edb(kb: &Kb) -> ObResult<Database> {
    edb_where(kb, |p| p.is_believed())
}

/// Like [`to_edb`], but exporting the network as believed at tick `at`
/// — the deductive view of a belief-time snapshot.
pub fn to_edb_at(kb: &Kb, at: i64) -> ObResult<Database> {
    to_edb_at_store(kb, at)
}

/// [`to_edb_at`] over any [`PropStore`] — in particular an immutable
/// [`KbVersion`], so the server's MVCC read path builds its EDB from a
/// pinned version without touching the live KB.
pub fn to_edb_at_store<S: PropStore>(store: &S, at: i64) -> ObResult<Database> {
    edb_where(store, |p| p.believed_at(at))
}

fn edb_where<S: PropStore>(
    store: &S,
    live: impl Fn(&telos::Proposition) -> bool,
) -> ObResult<Database> {
    let mut db = Database::new();
    for id in 0..store.prop_count() {
        let id = PropId(id as u32);
        let Some(p) = store.prop(id) else { continue };
        if !live(p) {
            continue;
        }
        if let Some((pred, tuple)) = edb_fact_for(store, id) {
            db.insert(&pred, tuple)?;
        }
    }
    Ok(db)
}

/// The extensional fact one proposition contributes: `in_(X, C)`,
/// `isa(C, D)` or `attr(X, L, Y)` keyed by display names, or `None`
/// for individuals (they reappear as the endpoints of their links).
/// Belief is *not* checked — the caller decides which belief state it
/// is mapping. This is the per-proposition delta unit the incremental
/// view-maintenance path feeds into registered views on TELL/UNTELL.
pub fn edb_fact_for<S: PropStore>(store: &S, id: PropId) -> Option<(String, Vec<Value>)> {
    let p = store.prop(id)?;
    if p.is_individual() {
        return None;
    }
    let label = store.resolve_sym(p.label).to_string();
    let src = Value::sym(store.display_prop(p.source));
    let dst = Value::sym(store.display_prop(p.dest));
    Some(match label.as_str() {
        telos::kb::L_INSTANCEOF => (preds::IN.to_string(), vec![src, dst]),
        telos::kb::L_ISA => (preds::ISA.to_string(), vec![src, dst]),
        _ => (preds::ATTR.to_string(), vec![src, Value::sym(label), dst]),
    })
}

/// One extensional fact per believed proposition, duplicates kept:
/// two distinct propositions asserting the same link yield the same
/// fact twice, which is exactly the multiplicity a counting view needs
/// so that untelling one of them does not delete the other's support.
pub fn edb_facts(kb: &Kb) -> Vec<(String, Vec<Value>)> {
    (0..kb.prop_count())
        .filter_map(|i| {
            let id = PropId(i as u32);
            let p = kb.prop(id)?;
            if !p.is_believed() {
                return None;
            }
            edb_fact_for(kb, id)
        })
        .collect()
}

/// The CML closure rules: transitive isa and instance inheritance.
pub fn base_program() -> Program {
    Program::parse(
        "isaT(C, D) :- isa(C, D).\n\
         isaT(C, E) :- isa(C, D), isaT(D, E).\n\
         inT(X, C) :- in_(X, C).\n\
         inT(X, D) :- in_(X, C), isaT(C, D).",
    )
    .expect("base program parses")
}

/// Which inference engine evaluates a deductive query (the "various
/// proof strategies" of §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Bottom-up semi-naive evaluation of the whole program.
    BottomUp,
    /// Top-down SLD with tabling (lemma generation).
    TopDown,
    /// Magic-sets transformation, then bottom-up.
    Magic,
}

/// A deductive view: the KB's EDB plus the base rules plus user rules.
pub struct DeductiveView {
    edb: Database,
    program: Program,
}

impl DeductiveView {
    /// Builds the view from the current KB state with optional extra
    /// rules (datalog source).
    pub fn new(kb: &Kb, extra_rules: &str) -> ObResult<Self> {
        let edb = to_edb(kb)?;
        let mut program = base_program();
        if !extra_rules.trim().is_empty() {
            let extra = Program::parse(extra_rules)?;
            program.rules.extend(extra.rules);
        }
        program.validate()?;
        Ok(DeductiveView { edb, program })
    }

    /// The extensional database.
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// The full rule program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Answers `query` with the chosen engine, returning sorted tuples.
    pub fn query(&self, query: &Atom, engine: Engine) -> ObResult<Vec<Vec<Value>>> {
        match engine {
            Engine::BottomUp => {
                let (model, _) = seminaive::evaluate(&self.program, &self.edb)?;
                // Indexed point probe on the query's bound positions
                // instead of scanning and filtering the whole relation.
                let pattern: Vec<Option<Value>> = query
                    .args
                    .iter()
                    .map(|a| match a {
                        Term::Const(c) => Some(c.clone()),
                        Term::Var(_) => None,
                    })
                    .collect();
                let mut out: Vec<Vec<Value>> = model.probe(&query.pred, &pattern).collect();
                out.sort();
                Ok(out)
            }
            Engine::TopDown => {
                let mut td = topdown::TopDown::new(&self.program, &self.edb);
                let answers = td.query(query)?;
                let mut out: Vec<Vec<Value>> = answers
                    .iter()
                    .map(|env| {
                        query
                            .args
                            .iter()
                            .map(|a| match a {
                                Term::Const(c) => c.clone(),
                                Term::Var(v) => {
                                    env.get(v).cloned().unwrap_or_else(|| Value::sym("?"))
                                }
                            })
                            .collect()
                    })
                    .collect();
                out.sort();
                out.dedup();
                Ok(out)
            }
            Engine::Magic => Ok(magic::magic_evaluate(&self.program, &self.edb, query)?),
        }
    }

    /// All instances of `class`, deductively (with inheritance).
    pub fn instances_of(&self, class: &str, engine: Engine) -> ObResult<Vec<String>> {
        let q = Atom::new("inT", vec![Term::var("X"), Term::sym(class)]);
        let mut out: Vec<String> = self
            .query(&q, engine)?
            .into_iter()
            .map(|t| t[0].to_string())
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }
}

/// ASK with the assertion language: the believed instances of `class`
/// satisfying `body` (an open query, §3.1). Generic over [`KbRead`]:
/// pass a [`Kb`] for current-belief answers or a
/// [`telos::Snapshot`] for answers pinned at a belief tick (the
/// server's snapshot-isolated sessions).
pub fn ask<V: KbRead>(kb: &V, var: &str, class: &str, body: &str) -> ObResult<Vec<String>> {
    let expr = assertion::parse(body)?;
    let hits = assertion::find(kb, var, class, &expr)?;
    Ok(hits.into_iter().map(|h| kb.display(h)).collect())
}

/// ASK through the deductive-relational bridge, reporting the
/// [`EvalStats`] of the underlying join evaluation (`index_probes`,
/// `tuples_scanned`, …). Candidate instances of `class` are enumerated
/// by the semi-naive engine (the `inT` closure), then filtered with
/// the assertion body — so the stats reflect real index-probe work,
/// which `cbshell`'s `\stats` command surfaces.
pub fn ask_with_stats(
    kb: &Kb,
    var: &str,
    class: &str,
    body: &str,
) -> ObResult<(Vec<String>, EvalStats)> {
    ask_deductive(kb, to_edb(kb)?, var, class, body)
}

/// [`ask_with_stats`] pinned at belief tick `at`: candidates come from
/// the snapshot EDB ([`to_edb_at`]) and the assertion body is filtered
/// against the [`telos::Snapshot`] view, so a server session gets both
/// snapshot-consistent answers and the deductive counters.
pub fn ask_with_stats_at(
    kb: &Kb,
    at: i64,
    var: &str,
    class: &str,
    body: &str,
) -> ObResult<(Vec<String>, EvalStats)> {
    let snap = kb.snapshot_at(at);
    ask_deductive(&snap, to_edb_at(kb, at)?, var, class, body)
}

/// [`ask_with_stats_at`] against an immutable [`KbVersion`]: identical
/// semantics, but the candidate EDB and the assertion filter both read
/// the pinned version, so the query runs entirely without the writer
/// lock. This is the server's MVCC ASK path.
pub fn ask_with_stats_version(
    version: &KbVersion,
    at: i64,
    var: &str,
    class: &str,
    body: &str,
) -> ObResult<(Vec<String>, EvalStats)> {
    let snap = version.snapshot_at(at);
    ask_deductive(&snap, to_edb_at_store(version, at)?, var, class, body)
}

fn ask_deductive<V: KbRead>(
    view: &V,
    edb: Database,
    var: &str,
    class: &str,
    body: &str,
) -> ObResult<(Vec<String>, EvalStats)> {
    let start = std::time::Instant::now();
    obs::counter!("objectbase_asks_total", "Deductive ASK queries evaluated").inc();
    let result = ask_deductive_inner(view, edb, var, class, body);
    obs::histogram!(
        "objectbase_ask_seconds",
        "Wall-clock latency of deductive ASK evaluation"
    )
    .observe(start.elapsed());
    if result.is_err() {
        obs::counter!(
            "objectbase_ask_errors_total",
            "Deductive ASK queries that failed (parse/eval errors)"
        )
        .inc();
    }
    result
}

fn ask_deductive_inner<V: KbRead>(
    view: &V,
    edb: Database,
    var: &str,
    class: &str,
    body: &str,
) -> ObResult<(Vec<String>, EvalStats)> {
    let expr = assertion::parse(body)?;
    if view.lookup(class).is_none() {
        return Err(TelosError::Assertion(format!("unknown class `{class}`")).into());
    }
    let program = base_program();
    let (model, stats) = seminaive::evaluate(&program, &edb)?;
    let pattern = vec![None, Some(Value::sym(class))];
    let mut names: Vec<String> = model
        .probe("inT", &pattern)
        .map(|t| t[0].to_string())
        .collect();
    names.sort();
    names.dedup();
    let mut out = Vec::new();
    let mut env = assertion::Env::new();
    for name in names {
        let Some(id) = view.lookup(&name) else {
            continue;
        };
        env.insert(var.to_string(), id);
        if assertion::eval(view, &expr, &mut env)? {
            out.push(name);
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ObjectFrame;
    use crate::transform::tell_all;

    fn scenario_kb() -> Kb {
        let mut kb = Kb::new();
        let frames = ObjectFrame::parse_all(
            "TELL Person end\n\
             TELL Paper end\n\
             TELL Invitation isA Paper end\n\
             TELL Minutes isA Paper end\n\
             TELL maria in Person end\n\
             TELL inv1 in Invitation end\n\
             TELL inv2 in Invitation end\n\
             TELL min1 in Minutes end",
        )
        .unwrap();
        tell_all(&mut kb, &frames).unwrap();
        let maria = kb.lookup("maria").unwrap();
        let inv1 = kb.lookup("inv1").unwrap();
        kb.put_attr(inv1, "sender", maria).unwrap();
        kb
    }

    #[test]
    fn edb_exports_believed_links() {
        let kb = scenario_kb();
        let db = to_edb(&kb).unwrap();
        assert!(db.contains(preds::ISA, &[Value::sym("Invitation"), Value::sym("Paper")]));
        assert!(db.contains(preds::IN, &[Value::sym("inv1"), Value::sym("Invitation")]));
        assert!(db.contains(
            preds::ATTR,
            &[
                Value::sym("inv1"),
                Value::sym("sender"),
                Value::sym("maria")
            ]
        ));
    }

    #[test]
    fn all_engines_agree_on_inheritance() {
        let kb = scenario_kb();
        let view = DeductiveView::new(&kb, "").unwrap();
        let expected = vec!["inv1".to_string(), "inv2".into(), "min1".into()];
        for engine in [Engine::BottomUp, Engine::TopDown, Engine::Magic] {
            let papers = view.instances_of("Paper", engine).unwrap();
            assert_eq!(papers, expected, "{engine:?}");
        }
    }

    #[test]
    fn deductive_matches_kb_closure() {
        let kb = scenario_kb();
        let view = DeductiveView::new(&kb, "").unwrap();
        let paper = kb.lookup("Paper").unwrap();
        let mut from_kb: Vec<String> = kb
            .all_instances_of(paper)
            .into_iter()
            .map(|x| kb.display(x))
            .collect();
        from_kb.sort();
        let from_dl = view.instances_of("Paper", Engine::BottomUp).unwrap();
        assert_eq!(from_kb, from_dl);
    }

    #[test]
    fn user_rules_extend_the_view() {
        let kb = scenario_kb();
        let view = DeductiveView::new(
            &kb,
            "senderOf(P, S) :- attr(I, sender, S), in_(I, P_CLASS), isaT(P_CLASS, Paper), in_(I, P_CLASS).\n\
             hasSender(I) :- attr(I, sender, _S).",
        );
        // The first rule is deliberately odd; validate separately with a
        // simpler one if it fails safety. hasSender is the useful one.
        let view = match view {
            Ok(v) => v,
            Err(_) => DeductiveView::new(&kb, "hasSender(I) :- attr(I, sender, _S).").unwrap(),
        };
        let q = Atom::new("hasSender", vec![Term::var("I")]);
        let hits = view.query(&q, Engine::BottomUp).unwrap();
        assert_eq!(hits, vec![vec![Value::sym("inv1")]]);
    }

    #[test]
    fn ask_open_queries() {
        let kb = scenario_kb();
        let with_sender = ask(&kb, "i", "Invitation", "i.sender defined").unwrap();
        assert_eq!(with_sender, vec!["inv1"]);
        let papers = ask(&kb, "p", "Paper", "true").unwrap();
        assert_eq!(papers.len(), 3);
        assert!(ask(&kb, "x", "Ghost", "true").is_err());
    }

    #[test]
    fn ask_against_snapshot_is_pinned() {
        let mut kb = scenario_kb();
        let t = kb.now();
        // TELL a new invitation after the watermark; the tick is the
        // transaction boundary that moves past the pinned watermark
        // (the server's write path does the same).
        kb.tick();
        let frames = ObjectFrame::parse_all("TELL inv3 in Invitation end").unwrap();
        tell_all(&mut kb, &frames).unwrap();
        let live = ask(&kb, "p", "Paper", "true").unwrap();
        assert_eq!(live.len(), 4);
        let snap = kb.snapshot_at(t);
        let pinned = ask(&snap, "p", "Paper", "true").unwrap();
        assert_eq!(pinned.len(), 3, "snapshot does not see the new TELL");
        assert!(!pinned.contains(&"inv3".to_string()));
    }

    #[test]
    fn snapshot_edb_is_pinned() {
        let mut kb = scenario_kb();
        let t = kb.now();
        kb.tick();
        let frames = ObjectFrame::parse_all("TELL inv3 in Invitation end").unwrap();
        tell_all(&mut kb, &frames).unwrap();
        let now_db = to_edb(&kb).unwrap();
        let then_db = to_edb_at(&kb, t).unwrap();
        let at_inv3 = [Value::sym("inv3"), Value::sym("Invitation")];
        assert!(now_db.contains(preds::IN, &at_inv3));
        assert!(!then_db.contains(preds::IN, &at_inv3));
    }

    #[test]
    fn ask_with_stats_matches_ask_and_counts_probes() {
        let kb = scenario_kb();
        let (hits, stats) = ask_with_stats(&kb, "p", "Paper", "true").unwrap();
        assert_eq!(hits, ask(&kb, "p", "Paper", "true").unwrap());
        assert!(stats.index_probes > 0, "join core probed indexes");
        assert!(stats.tuples_scanned > 0);
        let (with_sender, _) = ask_with_stats(&kb, "i", "Invitation", "i.sender defined").unwrap();
        assert_eq!(with_sender, vec!["inv1"]);
        assert!(ask_with_stats(&kb, "x", "Ghost", "true").is_err());
    }

    #[test]
    fn ask_with_stats_at_is_pinned() {
        let mut kb = scenario_kb();
        let t = kb.now();
        kb.tick();
        let frames = ObjectFrame::parse_all("TELL inv3 in Invitation end").unwrap();
        tell_all(&mut kb, &frames).unwrap();
        let (live, _) = ask_with_stats(&kb, "p", "Paper", "true").unwrap();
        assert_eq!(live.len(), 4);
        let (pinned, stats) = ask_with_stats_at(&kb, t, "p", "Paper", "true").unwrap();
        assert_eq!(pinned.len(), 3);
        assert!(!pinned.contains(&"inv3".to_string()));
        assert!(stats.index_probes > 0);
    }

    #[test]
    fn ask_with_stats_version_matches_live_kb() {
        let mut kb = scenario_kb();
        let t = kb.now();
        let version = kb.version();
        kb.tick();
        let frames = ObjectFrame::parse_all("TELL inv3 in Invitation end").unwrap();
        tell_all(&mut kb, &frames).unwrap();
        // The captured version answers at `t` byte-identically to a
        // temporal query against the live (now further evolved) KB.
        let (pinned_live, _) = ask_with_stats_at(&kb, t, "p", "Paper", "true").unwrap();
        let (pinned_version, stats) =
            ask_with_stats_version(&version, t, "p", "Paper", "true").unwrap();
        assert_eq!(pinned_version, pinned_live);
        assert_eq!(pinned_version.len(), 3);
        assert!(!pinned_version.contains(&"inv3".to_string()));
        assert!(stats.index_probes > 0);
        let (with_sender, _) =
            ask_with_stats_version(&version, t, "i", "Invitation", "i.sender defined").unwrap();
        assert_eq!(with_sender, vec!["inv1"]);
    }

    #[test]
    fn bound_queries_use_constants() {
        let kb = scenario_kb();
        let view = DeductiveView::new(&kb, "").unwrap();
        let q = Atom::new("inT", vec![Term::sym("inv1"), Term::var("C")]);
        for engine in [Engine::BottomUp, Engine::TopDown, Engine::Magic] {
            let classes: Vec<String> = view
                .query(&q, engine)
                .unwrap()
                .into_iter()
                .map(|t| t[1].to_string())
                .collect();
            assert!(classes.contains(&"Invitation".to_string()), "{engine:?}");
            assert!(classes.contains(&"Paper".to_string()), "{engine:?}");
        }
    }
}
