//! **Fig 3-2** — the Object Transformer: frames ⇄ propositions.
//!
//! TELL throughput for class and token frames, and the inverse
//! (`frame_of`) used by every browser display.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use objectbase::frame::ObjectFrame;
use objectbase::transform::{frame_of, tell, tell_all};
use std::time::Duration;
use telos::Kb;

fn class_frames(n: usize) -> Vec<ObjectFrame> {
    let mut src = String::from("TELL TDL_EntityClass isA Class end\nTELL Person end\n");
    for i in 0..n {
        src.push_str(&format!(
            "TELL Class{i} in TDL_EntityClass with attribute a{i} : Person end\n"
        ));
    }
    ObjectFrame::parse_all(&src).expect("parse")
}

fn bench_tell(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform/tell");
    for n in [10usize, 100] {
        let frames = class_frames(n);
        group.bench_with_input(BenchmarkId::new("class_frames", n), &n, |b, _| {
            b.iter_batched(
                Kb::new,
                |mut kb| {
                    let receipts = tell_all(&mut kb, &frames).expect("tell");
                    std::hint::black_box(receipts.len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    // Token frames against a fixed schema.
    let mut schema_kb = Kb::new();
    tell_all(&mut schema_kb, &class_frames(5)).expect("tell");
    group.bench_function("token_frame", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let f = ObjectFrame::parse(&format!("TELL tok{i} in Class0 end")).expect("parse");
            std::hint::black_box(tell(&mut schema_kb, &f).expect("tell").created.len())
        })
    });
    group.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let mut kb = Kb::new();
    tell_all(&mut kb, &class_frames(50)).expect("tell");
    let target = kb.lookup("Class25").expect("exists");
    let mut group = c.benchmark_group("transform/inverse");
    group.bench_function("frame_of", |b| {
        b.iter(|| std::hint::black_box(frame_of(&kb, target).expect("frame").attrs.len()))
    });
    group.bench_function("frame_of_and_print", |b| {
        b.iter(|| {
            let f = frame_of(&kb, target).expect("frame");
            std::hint::black_box(f.to_string().len())
        })
    });
    group.finish();
}

fn bench_frame_parse(c: &mut Criterion) {
    let src = "TELL Invitation in TDL_EntityClass isA Paper with\n\
               attribute sender : Person; receivers : Person\n\
               constraint hasSender : $ forall i/Invitation i.sender defined $\n\
               rule r1 : $ true $\n\
               end";
    c.bench_function("transform/frame_parse", |b| {
        b.iter(|| std::hint::black_box(ObjectFrame::parse(src).expect("parse").attrs.len()))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tell, bench_inverse, bench_frame_parse
}
criterion_main!(benches);
