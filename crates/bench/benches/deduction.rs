//! **E-2** — "the inference engines may enhance their performance by
//! lemma generation" (§3.1).
//!
//! Transitive-closure queries over isa chains of growing depth,
//! comparing: bottom-up semi-naive, top-down with tabling (lemmas),
//! top-down without tabling, and magic sets. The expected shape:
//! tabling beats plain SLD as soon as subgoals repeat; magic beats
//! full bottom-up on bound queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog::ast::{Atom, Program, Term, Value};
use datalog::db::Database;
use datalog::{magic, seminaive, topdown};
use objectbase::query::{DeductiveView, Engine};
use std::time::Duration;

const TC: &str = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).";

fn chain_db(n: i64) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
            .expect("insert");
    }
    db
}

fn bench_engines(c: &mut Criterion) {
    let program = Program::parse(TC).expect("parse");
    let mut group = c.benchmark_group("deduction/engines");
    for n in [20i64, 60, 120] {
        let db = chain_db(n);
        group.bench_with_input(BenchmarkId::new("bottom_up_full", n), &n, |b, _| {
            b.iter(|| {
                let (model, _) = seminaive::evaluate(&program, &db).expect("eval");
                std::hint::black_box(model.count("path"))
            })
        });
        let bound = Atom::new("path", vec![Term::int(0), Term::var("Y")]);
        group.bench_with_input(BenchmarkId::new("topdown_tabled", n), &n, |b, _| {
            b.iter(|| {
                let mut td = topdown::TopDown::new(&program, &db);
                std::hint::black_box(td.query(&bound).expect("query").len())
            })
        });
        group.bench_with_input(BenchmarkId::new("magic_bound", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    magic::magic_evaluate(&program, &db, &bound)
                        .expect("magic")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

/// A ladder graph: between consecutive rungs there are two parallel
/// 2-edge routes, so `path(rung 0, rung n)` has 2^n derivations. Plain
/// SLD enumerates every derivation; tabling dedupes answers.
fn ladder_db(rungs: i64) -> (Database, i64) {
    let mut db = Database::new();
    let mut add = |a: i64, b: i64| {
        db.insert("edge", vec![Value::Int(a), Value::Int(b)])
            .expect("insert");
    };
    for i in 0..rungs {
        let (l, a, bn, next) = (i * 3, i * 3 + 1, i * 3 + 2, (i + 1) * 3);
        add(l, a);
        add(a, next);
        add(l, bn);
        add(bn, next);
    }
    (db, rungs * 3)
}

fn bench_derivation_blowup(c: &mut Criterion) {
    // E-2's core ablation: lemma generation versus derivation
    // enumeration on a workload with exponentially many proofs.
    let program = Program::parse(TC).expect("parse");
    let mut group = c.benchmark_group("deduction/derivation_blowup");
    for rungs in [6i64, 8, 10] {
        let (db, goal_node) = ladder_db(rungs);
        let bound = Atom::new("path", vec![Term::int(0), Term::int(goal_node)]);
        group.bench_with_input(BenchmarkId::new("tabled", rungs), &rungs, |b, _| {
            b.iter(|| {
                let mut td = topdown::TopDown::new(&program, &db);
                std::hint::black_box(td.holds(&bound).expect("query"))
            })
        });
        group.bench_with_input(BenchmarkId::new("untabled", rungs), &rungs, |b, &r| {
            b.iter(|| {
                let mut td =
                    topdown::TopDown::new(&program, &db).without_tabling(2 * r as usize + 2);
                std::hint::black_box(td.query(&bound).expect("query").len())
            })
        });
    }
    group.finish();
}

fn bench_lemma_reuse(c: &mut Criterion) {
    // Repeated queries: lemmas amortize across queries.
    let program = Program::parse(TC).expect("parse");
    let db = chain_db(40);
    let goals: Vec<Atom> = (0..10)
        .map(|i| Atom::new("path", vec![Term::int(i), Term::var("Y")]))
        .collect();
    let mut group = c.benchmark_group("deduction/lemma_reuse");
    group.bench_function("10_queries_one_engine", |b| {
        b.iter(|| {
            let mut td = topdown::TopDown::new(&program, &db);
            let mut total = 0;
            for g in &goals {
                total += td.query(g).expect("query").len();
            }
            std::hint::black_box(total)
        })
    });
    group.bench_function("10_queries_fresh_engines", |b| {
        b.iter(|| {
            let mut total = 0;
            for g in &goals {
                let mut td = topdown::TopDown::new(&program, &db);
                total += td.query(g).expect("query").len();
            }
            std::hint::black_box(total)
        })
    });
    group.finish();
}

fn bench_index_ablation(c: &mut Criterion) {
    // ISSUE 1: hash-join evaluation through binding-pattern indexes
    // versus the pre-index scan core, on the CML closure rules over
    // deep isa chains.
    use objectbase::query::{base_program, to_edb};
    let program = base_program();
    let mut group = c.benchmark_group("deduction/index_ablation");
    for (depth, fanout) in [(16usize, 250usize), (64, 1000)] {
        let kb = bench::isa_chain_kb(depth, fanout);
        let edb = to_edb(&kb).expect("edb");
        let label = format!("d{depth}_f{fanout}");
        group.bench_with_input(BenchmarkId::new("indexed", &label), &edb, |b, edb| {
            b.iter(|| {
                let (model, _) = seminaive::evaluate(&program, edb).expect("eval");
                std::hint::black_box(model.count("inT"))
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", &label), &edb, |b, edb| {
            b.iter(|| {
                let (model, _) = seminaive::evaluate_scan(&program, edb).expect("eval");
                std::hint::black_box(model.count("inT"))
            })
        });
    }
    group.finish();
}

fn bench_kb_deduction(c: &mut Criterion) {
    // The deductive-relational view over a real KB (object processor).
    let kb = bench::isa_chain_kb(30, 300);
    let view = DeductiveView::new(&kb, "").expect("view");
    let mut group = c.benchmark_group("deduction/kb_view");
    for engine in [Engine::BottomUp, Engine::TopDown, Engine::Magic] {
        group.bench_function(format!("{engine:?}"), |b| {
            b.iter(|| {
                std::hint::black_box(view.instances_of("C30", engine).expect("instances").len())
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engines, bench_derivation_blowup, bench_lemma_reuse, bench_index_ablation, bench_kb_deduction
}
criterion_main!(benches);
