//! **E-6** — proposition store throughput (§3.1's "Proposition Base").
//!
//! Compares the in-memory and log-backed physical representations on
//! TELL throughput, and measures the four access paths.

use bench::isa_chain_kb;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;
use telos::backend::KbBackend;
use telos::Kb;

fn tell_n(kb: &mut Kb, n: usize) {
    let class = kb.individual("TokenClass").expect("fresh");
    for i in 0..n {
        let t = kb.individual(&format!("tok{i}")).expect("fresh");
        kb.instantiate(t, class).expect("classify");
    }
}

fn bench_tell(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop_store/tell");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("memory", n), &n, |b, &n| {
            b.iter_batched(Kb::new, |mut kb| tell_n(&mut kb, n), BatchSize::SmallInput);
        });
        group.bench_with_input(BenchmarkId::new("log", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut path = std::env::temp_dir();
                    path.push(format!("cb-bench-{}-{n}.log", std::process::id()));
                    let _ = std::fs::remove_file(&path);
                    (
                        Kb::with_backend(KbBackend::log(&path).expect("open")).expect("boot"),
                        path,
                    )
                },
                |(mut kb, path)| {
                    tell_n(&mut kb, n);
                    drop(kb);
                    let _ = std::fs::remove_file(path);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_access_paths(c: &mut Criterion) {
    let kb = isa_chain_kb(20, 500);
    let c0 = kb.lookup("C0").expect("exists");
    let c20 = kb.lookup("C20").expect("exists");
    let tok = kb.lookup("t250").expect("exists");
    let mut group = c.benchmark_group("prop_store/access");
    group.bench_function("by_name_lookup", |b| {
        b.iter(|| std::hint::black_box(kb.lookup("t250")))
    });
    group.bench_function("direct_instances", |b| {
        b.iter(|| std::hint::black_box(kb.instances_of(c0).len()))
    });
    group.bench_function("inherited_instances", |b| {
        b.iter(|| std::hint::black_box(kb.all_instances_of(c20).len()))
    });
    group.bench_function("classes_closure", |b| {
        b.iter(|| std::hint::black_box(kb.all_classes_of(tok).len()))
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    // Replay cost: reopen a 2000-proposition log.
    let mut path = std::env::temp_dir();
    path.push(format!("cb-bench-recover-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut kb = Kb::with_backend(KbBackend::log(&path).expect("open")).expect("boot");
        tell_n(&mut kb, 1000);
        kb.sync().expect("sync");
    }
    c.bench_function("prop_store/recovery_1000", |b| {
        b.iter(|| {
            let kb = Kb::with_backend(KbBackend::log(&path).expect("open")).expect("replay");
            std::hint::black_box(kb.len())
        })
    });
    let _ = std::fs::remove_file(&path);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tell, bench_access_paths, bench_recovery
}
criterion_main!(benches);
