//! **E-3** — "current RMS can handle only fairly small dependency
//! networks efficiently \[DEKL86\]; we are studying their combination
//! with the abstraction mechanisms of the GKBMS" (§3.3.3).
//!
//! Sweeps dependency-network size for JTMS relabeling and ATMS label
//! computation, and contrasts a *flat* network (one RMS node per
//! proposition) against the *abstracted* network the GKBMS actually
//! builds (one node per design object, justifications at decision
//! granularity). Expected shape: ATMS cost grows much faster than
//! JTMS; the abstracted network is far smaller and proportionally
//! cheaper — the paper's motivation for combining RMS with GKBMS
//! abstraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rms::atms::Atms;
use rms::jtms::Jtms;
use std::time::Duration;

/// A layered JTMS: `layers × width` nodes, each justified by two nodes
/// of the previous layer; returns the network and the base assumptions.
fn layered_jtms(layers: usize, width: usize) -> (Jtms, Vec<rms::jtms::JtmsNodeId>) {
    let mut tms = Jtms::new();
    let base: Vec<_> = (0..width)
        .map(|i| tms.assumption(format!("a{i}")))
        .collect();
    let mut prev = base.clone();
    for l in 1..layers {
        let mut cur = Vec::with_capacity(width);
        for i in 0..width {
            let n = tms.node(format!("n{l}_{i}"));
            tms.justify(n, &[prev[i], prev[(i + 1) % width]], &[]);
            cur.push(n);
        }
        prev = cur;
    }
    (tms, base)
}

fn bench_jtms(c: &mut Criterion) {
    let mut group = c.benchmark_group("rms/jtms_retract_enable");
    for (layers, width) in [(4usize, 8usize), (8, 16), (12, 24)] {
        let size = layers * width;
        group.bench_with_input(
            BenchmarkId::from_parameter(size),
            &(layers, width),
            |b, &(layers, width)| {
                let (mut tms, base) = layered_jtms(layers, width);
                b.iter(|| {
                    tms.retract(base[0]);
                    tms.enable(base[0]);
                    std::hint::black_box(tms.in_nodes().len())
                })
            },
        );
    }
    group.finish();
}

fn bench_atms(c: &mut Criterion) {
    let mut group = c.benchmark_group("rms/atms_justify");
    for width in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            b.iter(|| {
                let mut atms = Atms::new();
                let base: Vec<_> = (0..width)
                    .map(|i| atms.assumption(format!("a{i}")))
                    .collect();
                let mut prev = base.clone();
                for l in 1..4 {
                    let mut cur = Vec::with_capacity(width);
                    for i in 0..width {
                        let n = atms.node(format!("n{l}_{i}"));
                        atms.justify(n, &[prev[i], prev[(i + 1) % width]]);
                        cur.push(n);
                    }
                    prev = cur;
                }
                std::hint::black_box(atms.label_updates)
            })
        });
    }
    group.finish();
}

fn bench_abstraction_ablation(c: &mut Criterion) {
    // Flat network: every generated DBPL declaration is an RMS node
    // justified individually (what a naive RMS coupling would do).
    // Abstracted: the GKBMS's decision-granularity network — one
    // justification per decision covering all its outputs.
    const OBJECTS: usize = 40;
    const PROPS_PER_OBJECT: usize = 8; // propositions per design object
    let mut group = c.benchmark_group("rms/abstraction");
    group.bench_function("flat_per_proposition", |b| {
        b.iter(|| {
            let mut tms = Jtms::new();
            let d = tms.assumption("decision");
            let mut nodes = Vec::new();
            for i in 0..OBJECTS * PROPS_PER_OBJECT {
                let n = tms.node(format!("p{i}"));
                tms.justify(n, &[d], &[]);
                nodes.push(n);
            }
            tms.retract(d);
            std::hint::black_box(tms.propagations)
        })
    });
    group.bench_function("abstracted_per_object", |b| {
        b.iter(|| {
            let mut tms = Jtms::new();
            let d = tms.assumption("decision");
            let mut nodes = Vec::new();
            for i in 0..OBJECTS {
                let n = tms.node(format!("o{i}"));
                tms.justify(n, &[d], &[]);
                nodes.push(n);
            }
            tms.retract(d);
            std::hint::black_box(tms.propagations)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_jtms, bench_atms, bench_abstraction_ablation
}
criterion_main!(benches);
