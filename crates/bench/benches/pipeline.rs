//! **Fig 1-1 + figs 2-1…2-4** — the full DAIDA pipeline and the
//! complete §2.1 scenario, end to end.
//!
//! The scenario bench is the closest thing to the paper's overall
//! "evaluation": one complete maintenance episode — browse, map,
//! normalize, substitute keys, hit the inconsistency, selectively
//! backtrack — through every layer of the system.

use criterion::{criterion_group, criterion_main, Criterion};
use gkbms::scenario::Scenario;
use langs::dbpl::DbplModule;
use langs::mapping::{MappingStrategy, MoveDown};
use langs::world::meeting_world;
use std::time::Duration;

fn bench_world_to_dbpl(c: &mut Criterion) {
    c.bench_function("pipeline/world_to_dbpl", |b| {
        b.iter(|| {
            let world = meeting_world().expect("world");
            let tdl = world.derive_taxisdl().expect("derive");
            let out = MoveDown.map_hierarchy(&tdl, "Paper").expect("map");
            let mut module = DbplModule::new("DocumentDB");
            for d in out.decls {
                module.add(d).expect("add");
            }
            std::hint::black_box(module.decls.len())
        })
    });
}

fn bench_scenario_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/scenario");
    group.bench_function("setup", |b| {
        b.iter(|| std::hint::black_box(Scenario::setup().expect("setup").tdl.entities.len()))
    });
    group.bench_function("full_episode", |b| {
        b.iter(|| std::hint::black_box(Scenario::run_all().expect("episode").len()))
    });
    group.bench_function("detection_and_backtrack_only", |b| {
        b.iter_batched(
            || {
                let mut s = Scenario::setup().expect("setup");
                s.step2_map_invitations().expect("map");
                s.step3_normalize().expect("normalize");
                s.step4_substitute_keys().expect("keys");
                s
            },
            |mut s| {
                let (_, conflicts) = s.step5_map_minutes().expect("minutes");
                assert!(!conflicts.is_empty());
                s.step6_backtrack().expect("backtrack");
                std::hint::black_box(s.gkbms.records().len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_world_to_dbpl, bench_scenario_steps
}
criterion_main!(benches);
