//! **E-7** — the embedded time calculus (§3.1 cites \[ALLE83\] and
//! \[KS86\]).
//!
//! Path-consistency propagation cost vs network size (Allen), event-
//! calculus query cost vs event count, and temporal KB queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use telos::time::allen::{AllenNetwork, AllenRel, RelSet};
use telos::time::events::{EventCalculus, Fluent};

fn bench_path_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal/path_consistency");
    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // A chain of `before` constraints plus one `during`.
                let mut net = AllenNetwork::new(n);
                for i in 0..n - 1 {
                    net.assert_rel(i, i + 1, RelSet::of(AllenRel::Before));
                }
                net.assert_rel(n - 1, 0, RelSet::of(AllenRel::After));
                let ok = net.propagate();
                std::hint::black_box((ok, net.get(0, n - 1)))
            })
        });
    }
    group.finish();
}

fn bench_inconsistency_detection(c: &mut Criterion) {
    c.bench_function("temporal/detect_inconsistent_cycle", |b| {
        b.iter(|| {
            let mut net = AllenNetwork::new(6);
            for i in 0..5 {
                net.assert_rel(i, i + 1, RelSet::of(AllenRel::Before));
            }
            net.assert_rel(5, 0, RelSet::of(AllenRel::Before));
            std::hint::black_box(net.propagate())
        })
    });
}

fn bench_event_calculus(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal/event_calculus");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("holds_at", n), &n, |b, &n| {
            let mut ec = EventCalculus::new();
            let f = Fluent(0);
            for i in 0..n as i64 {
                if i % 2 == 0 {
                    ec.happens(i, &[f], &[]);
                } else {
                    ec.happens(i, &[], &[f]);
                }
            }
            ec.holds_at(f, 0); // build the timeline once
            b.iter(|| std::hint::black_box(ec.holds_at(f, (n / 2) as i64)))
        });
        group.bench_with_input(BenchmarkId::new("periods", n), &n, |b, &n| {
            let mut ec = EventCalculus::new();
            let f = Fluent(0);
            for i in 0..n as i64 {
                if i % 2 == 0 {
                    ec.happens(i, &[f], &[]);
                } else {
                    ec.happens(i, &[], &[f]);
                }
            }
            ec.holds_at(f, 0);
            b.iter(|| std::hint::black_box(ec.periods(f).len()))
        });
    }
    group.finish();
}

fn bench_temporal_kb_queries(c: &mut Criterion) {
    // `*_at` retrieval over a KB with churn (tell + untell).
    let mut kb = telos::Kb::new();
    let class = kb.individual("C").expect("fresh");
    let mut links = Vec::new();
    for i in 0..500 {
        let t = kb.individual(&format!("t{i}")).expect("fresh");
        links.push(kb.instantiate(t, class).expect("link"));
        kb.tick();
    }
    let mid = kb.now() / 2;
    for l in links.iter().take(250) {
        kb.untell(*l).expect("untell");
    }
    let mut group = c.benchmark_group("temporal/kb");
    group.bench_function("instances_now", |b| {
        b.iter(|| std::hint::black_box(kb.instances_of(class).len()))
    });
    group.bench_function("believed_at_mid", |b| {
        b.iter(|| std::hint::black_box(kb.believed_at(mid).len()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_path_consistency, bench_inconsistency_detection, bench_event_calculus, bench_temporal_kb_queries
}
criterion_main!(benches);
