//! **E-1** — "set-oriented optimization of the consistency check is
//! being studied" (§3.1).
//!
//! A KB with many constrained classes; one batch of TELLs touches a
//! single class. Compares full checking against the set-oriented
//! touched-only check, sweeping the number of unrelated constrained
//! classes. Expected shape: full checking grows linearly with KB
//! size, touched-only stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use objectbase::consistency::{check_full, check_touched};
use objectbase::frame::ObjectFrame;
use objectbase::transform::tell;
use std::time::Duration;
use telos::{Kb, PropId};

/// A KB with `n` constrained classes plus the Invitation class, and a
/// fresh invitation token whose TELL batch is returned.
fn kb_with_classes(n: usize) -> (Kb, Vec<PropId>) {
    let mut kb = Kb::new();
    tell(
        &mut kb,
        &ObjectFrame::parse("TELL Person end").expect("parse"),
    )
    .expect("tell");
    tell(
        &mut kb,
        &ObjectFrame::parse("TELL maria in Person end").expect("parse"),
    )
    .expect("tell");
    for i in 0..n {
        tell(
            &mut kb,
            &ObjectFrame::parse(&format!(
                "TELL Other{i} with constraint c : $ forall x/Other{i} x = x $ end"
            ))
            .expect("parse"),
        )
        .expect("tell");
    }
    tell(
        &mut kb,
        &ObjectFrame::parse(
            "TELL Invitation with\n\
               attribute sender : Person\n\
               constraint hasSender : $ forall i/Invitation i.sender defined $\n\
             end",
        )
        .expect("parse"),
    )
    .expect("tell");
    let receipt = tell(
        &mut kb,
        &ObjectFrame::parse("TELL inv1 in Invitation with attribute sender : maria end")
            .expect("parse"),
    )
    .expect("tell");
    (kb, receipt.created)
}

fn bench_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency");
    for n in [10usize, 50, 200] {
        let (kb, batch) = kb_with_classes(n);
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| {
                let (v, stats) = check_full(&kb);
                std::hint::black_box((v.len(), stats.constraints_evaluated))
            })
        });
        group.bench_with_input(BenchmarkId::new("set_oriented", n), &n, |b, _| {
            b.iter(|| {
                let (v, stats) = check_touched(&kb, &batch);
                std::hint::black_box((v.len(), stats.constraints_evaluated))
            })
        });
    }
    group.finish();
}

fn bench_per_update_vs_batch(c: &mut Criterion) {
    // One decision creates k propositions: checking after each update
    // vs once for the whole set.
    let mut group = c.benchmark_group("consistency/batching");
    let (kb, batch) = kb_with_classes(50);
    group.bench_function("once_per_batch", |b| {
        b.iter(|| {
            let (v, _) = check_touched(&kb, &batch);
            std::hint::black_box(v.len())
        })
    });
    group.bench_function("once_per_proposition", |b| {
        b.iter(|| {
            let mut total = 0;
            for &p in &batch {
                let (v, _) = check_touched(&kb, &[p]);
                total += v.len();
            }
            std::hint::black_box(total)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_checking, bench_per_update_vs_batch
}
criterion_main!(benches);
