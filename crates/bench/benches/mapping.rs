//! **Figs 2-2 / 2-3** — the mapping and normalization assistants.
//!
//! Sweeps hierarchy width for both mapping strategies and measures the
//! normalization decision. Expected shape: move-down generates fewer
//! declarations than distribute on flat hierarchies (no inclusion
//! selectors), both linear in hierarchy size.

use bench::random_hierarchy;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use langs::dbpl::DbplModule;
use langs::mapping::{Distribute, MappingStrategy, MoveDown};
use langs::normalize::{normalize, NormalizeNames};
use std::time::Duration;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/strategies");
    for width in [5usize, 20, 60] {
        let model = random_hierarchy(width, 4, 11);
        group.bench_with_input(BenchmarkId::new("move_down", width), &width, |b, _| {
            b.iter(|| {
                let out = MoveDown.map_hierarchy(&model, "Root").expect("map");
                std::hint::black_box(out.decls.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("distribute", width), &width, |b, _| {
            b.iter(|| {
                let out = Distribute.map_hierarchy(&model, "Root").expect("map");
                std::hint::black_box(out.decls.len())
            })
        });
    }
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    // Normalize every set-valued column produced by a mapping.
    let model = random_hierarchy(20, 4, 11);
    let out = MoveDown.map_hierarchy(&model, "Root").expect("map");
    let mut base = DbplModule::new("M");
    for d in out.decls {
        base.add(d).expect("add");
    }
    let targets: Vec<(String, String)> = base
        .decls
        .iter()
        .filter_map(|d| match d {
            langs::dbpl::Decl::Relation(r) => r
                .set_valued_columns()
                .first()
                .map(|col| (r.name.clone(), col.name.clone())),
            _ => None,
        })
        .collect();
    c.benchmark_group("mapping/normalize")
        .sample_size(10)
        .bench_function(format!("{}_relations", targets.len()), |b| {
            b.iter_batched(
                || base.clone(),
                |mut module| {
                    let mut created = 0;
                    for (rel, attr) in &targets {
                        let names = NormalizeNames::defaults(rel, attr);
                        created += normalize(&mut module, rel, attr, names)
                            .expect("normalize")
                            .created
                            .len();
                    }
                    std::hint::black_box(created)
                },
                BatchSize::SmallInput,
            );
        });
}

fn bench_parsers(c: &mut Criterion) {
    // Round-trip cost of the language layer (code frames are
    // regenerated on every display).
    let model = random_hierarchy(30, 4, 11);
    let out = MoveDown.map_hierarchy(&model, "Root").expect("map");
    let mut module = DbplModule::new("M");
    for d in out.decls {
        module.add(d).expect("add");
    }
    let dbpl_src = module.to_string();
    let tdl_src = model.to_string();
    let mut group = c.benchmark_group("mapping/parsers");
    group.bench_function("dbpl_parse", |b| {
        b.iter(|| std::hint::black_box(DbplModule::parse(&dbpl_src).expect("parse").decls.len()))
    });
    group.bench_function("tdl_parse", |b| {
        b.iter(|| {
            std::hint::black_box(
                langs::taxisdl::TdlModel::parse(&tdl_src)
                    .expect("parse")
                    .entities
                    .len(),
            )
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_strategies, bench_normalization, bench_parsers
}
criterion_main!(benches);
