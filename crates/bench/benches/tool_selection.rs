//! **Figs 2-1 / 2-6** — system-guided tool selection: matching a focus
//! object against decision-class input classes and preconditions.
//!
//! Sweeps the number of registered decision classes. Expected shape:
//! linear in the number of classes, with precondition evaluation
//! dominating.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gkbms::metamodel::kernel;
use gkbms::{DecisionClass, DecisionDimension, Gkbms, ToolSpec};
use std::time::Duration;

fn gkbms_with_classes(n: usize, with_preconditions: bool) -> Gkbms {
    let mut g = Gkbms::new().expect("bootstrap");
    for i in 0..n {
        let mut dc = DecisionClass::new(format!("Dec{i}"), DecisionDimension::Refinement)
            .from_classes(&[kernel::DBPL_REL])
            .to_classes(&[kernel::DBPL_REL]);
        if with_preconditions {
            dc = dc.precondition("x in DBPL_Rel");
        }
        g.define_decision_class(dc).expect("fresh");
        g.register_tool(ToolSpec::new(format!("Tool{i}"), true).executes(&format!("Dec{i}")))
            .expect("fresh");
    }
    g.register_object("InvitationRel", kernel::DBPL_REL, "src")
        .expect("register");
    g
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("tool_selection");
    for n in [5usize, 25, 100] {
        let plain = gkbms_with_classes(n, false);
        group.bench_with_input(BenchmarkId::new("class_match_only", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    plain
                        .applicable_decisions("InvitationRel")
                        .expect("menu")
                        .len(),
                )
            })
        });
        let with_pre = gkbms_with_classes(n, true);
        group.bench_with_input(BenchmarkId::new("with_preconditions", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    with_pre
                        .applicable_decisions("InvitationRel")
                        .expect("menu")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_specificity_ordering(c: &mut Criterion) {
    // A deep specialization chain of decision classes: ordering cost.
    let mut g = Gkbms::new().expect("bootstrap");
    let mut prev: Option<String> = None;
    for i in 0..30 {
        let name = format!("Chain{i}");
        let mut dc = DecisionClass::new(&name, DecisionDimension::Refinement)
            .from_classes(&[kernel::DBPL_REL])
            .to_classes(&[kernel::DBPL_REL]);
        if let Some(p) = &prev {
            dc = dc.specializing(p);
        }
        g.define_decision_class(dc).expect("fresh");
        prev = Some(name);
    }
    g.register_tool(ToolSpec::new("Editor", false).executes("Chain0"))
        .expect("fresh");
    g.register_object("R", kernel::DBPL_REL, "src")
        .expect("register");
    c.bench_function("tool_selection/specificity_chain_30", |b| {
        b.iter(|| {
            let menu = g.applicable_decisions("R").expect("menu");
            // Most specific first, and the editor covers all via the root.
            std::hint::black_box((menu[0].0.clone(), menu.len()))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_selection, bench_specificity_ordering
}
criterion_main!(benches);
