//! **Fig 3-3** — dependency-graph derivation with lemma generation:
//! "this capability is, e.g., used in creating dependency graph
//! objects of the GKBMS" (§3.1).
//!
//! Measures graph construction vs history size, the lemma-cache
//! speedup, and zooming.

use bench::decision_history;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("depgraph/build");
    for n in [5usize, 20, 50] {
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, &n| {
            let (mut g, _) = decision_history(n, 2);
            b.iter(|| std::hint::black_box(g.dependency_graph().nodes().len()))
        });
    }
    group.finish();
}

fn bench_lemma_cache(c: &mut Criterion) {
    let (mut g, _) = decision_history(30, 2);
    let mut group = c.benchmark_group("depgraph/lemma_cache");
    group.bench_function("first_call_then_cached", |b| {
        b.iter(|| std::hint::black_box(g.dependency_graph().edges().len()))
    });
    group.finish();
    println!(
        "depgraph/lemma_cache: {} rebuild(s) across all iterations (lemma hit rate ≈ 100%)",
        g.graph_builds
    );
}

fn bench_zoom_and_render(c: &mut Criterion) {
    let (mut g, _) = decision_history(30, 3);
    let graph = g.dependency_graph();
    let mut group = c.benchmark_group("depgraph/display");
    group.bench_function("render_full", |b| {
        b.iter(|| std::hint::black_box(graph.render().len()))
    });
    group.bench_function("zoom_radius_2", |b| {
        b.iter(|| std::hint::black_box(graph.zoom("E5Rel1", 2).nodes().len()))
    });
    group.bench_function("consequences_of", |b| {
        b.iter(|| std::hint::black_box(g.consequences_of("E5Rel0").len()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_build, bench_lemma_cache, bench_zoom_and_render
}
criterion_main!(benches);
