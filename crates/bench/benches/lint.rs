//! **ISSUE 10** — admission-time linting at scale: a TELL against a
//! large stored rule base must pay O(delta), not O(rule base).
//!
//! Sweeps the stored-base size and measures a one-rule delta linted
//! from scratch (fresh `AnalysisCache`) vs through the long-lived
//! fingerprint cache. `lint_snapshot` records the 10k-rule acceptance
//! figure in `BENCH_lint.json`.

use analysis::{lint_source_cached, AnalysisCache, LintContext};
use bench::synthetic_rule_base;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn context(groups: usize) -> LintContext {
    let mut ctx = LintContext::offline();
    ctx.stored_rules = synthetic_rule_base(groups, 5);
    ctx.assume_new_heads_queryable = true;
    ctx
}

fn probe(groups: usize) -> String {
    format!("probe(X, Y) :- p{groups}(X, Y), in_(X, C), isa(C, \"T{groups}\").")
}

fn bench_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint/full_relint");
    for groups in [100usize, 400] {
        let ctx = context(groups);
        let src = probe(groups);
        group.bench_with_input(BenchmarkId::new("rules", groups * 10), &groups, |b, _| {
            b.iter(|| {
                let mut cache = AnalysisCache::new();
                std::hint::black_box(lint_source_cached(&src, &ctx, &mut cache).len())
            })
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint/incremental");
    for groups in [100usize, 400] {
        let ctx = context(groups);
        let src = probe(groups);
        let mut cache = AnalysisCache::new();
        lint_source_cached(&src, &ctx, &mut cache);
        group.bench_with_input(BenchmarkId::new("rules", groups * 10), &groups, |b, _| {
            b.iter(|| std::hint::black_box(lint_source_cached(&src, &ctx, &mut cache).len()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_full, bench_incremental
}
criterion_main!(benches);
