//! **E-5 / fig 2-4** — selective backtracking: "the decision … must be
//! retracted, together with all its consequent changes, without
//! redoing all the rest of the design".
//!
//! Sweeps decision-history length and compares (a) retracting one
//! mid-history decision selectively against (b) rebuilding the whole
//! history from scratch without it — the cost the decision-based
//! documentation saves. Expected shape: selective retraction is flat-
//! ish in unrelated history size; rebuild grows linearly.

use bench::decision_history;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gkbms::metamodel::kernel;
use gkbms::DecisionRequest;
use std::time::Duration;

fn bench_retract_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("backtracking");
    for n in [5usize, 15, 30] {
        // Retract one refinement chain's root decision among n chains.
        group.bench_with_input(BenchmarkId::new("selective_retract", n), &n, |b, &n| {
            b.iter_batched(
                || decision_history(n, 3).0,
                |mut g| {
                    let affected = g.retract_decision("refine0_0").expect("retract");
                    std::hint::black_box(affected.len())
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("rebuild_without", n), &n, |b, &n| {
            b.iter(|| {
                // Redo the whole design, skipping the one decision.
                let mut g = bench::bench_gkbms();
                for i in 0..n {
                    let class_name = format!("E{i}");
                    g.register_object(&class_name, kernel::TDL_ENTITY_CLASS, "src")
                        .expect("register");
                    g.execute(
                        DecisionRequest::new("DecMap", &format!("map{i}"), "dev")
                            .with_tool("Mapper")
                            .input(&class_name)
                            .output(&format!("E{i}Rel0"), kernel::DBPL_REL),
                    )
                    .expect("map");
                    let mut prev = format!("E{i}Rel0");
                    for r in 0..3 {
                        if i == 0 && r == 0 {
                            continue; // the "retracted" decision
                        }
                        if i == 0 {
                            continue; // its consequents cannot be rebuilt
                        }
                        let next = format!("E{i}Rel{}", r + 1);
                        g.execute(
                            DecisionRequest::new("DecRefine", &format!("refine{i}_{r}"), "dev")
                                .with_tool("Refiner")
                                .input(&prev)
                                .output(&next, kernel::DBPL_REL),
                        )
                        .expect("refine");
                        prev = next;
                    }
                }
                std::hint::black_box(g.records().len())
            })
        });
    }
    group.finish();
}

fn bench_retraction_depth(c: &mut Criterion) {
    // Cost as a function of the *consequence chain length* being
    // retracted (this one must grow, unlike unrelated history).
    let mut group = c.benchmark_group("backtracking/consequence_depth");
    for depth in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter_batched(
                || decision_history(1, depth).0,
                |mut g| {
                    let affected = g.retract_decision("map0").expect("retract");
                    std::hint::black_box(affected.len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_replay_after_retract(c: &mut Criterion) {
    // §3.3 revision support: retract + replay restores the state.
    let mut group = c.benchmark_group("backtracking/replay");
    group.bench_function("retract_then_replay", |b| {
        let mut serial = 0usize;
        b.iter_batched(
            || decision_history(3, 2).0,
            |mut g| {
                serial += 1;
                g.retract_decision("refine1_0").expect("retract");
                g.replay_decision("refine1_0", &format!("redo{serial}_0"))
                    .expect("replay");
                g.replay_decision("refine1_1", &format!("redo{serial}_1"))
                    .expect("replay");
                std::hint::black_box(g.is_current("E1Rel2"))
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_retract_vs_rebuild, bench_retraction_depth, bench_replay_after_retract
}
criterion_main!(benches);
