//! **E-3 over real histories** — JTMS vs ATMS labeling cost on
//! dependency networks derived from the *same* synthetic design
//! history ([`gkbms::synth::plan`]), flat (node per design object)
//! versus decision-granularity abstracted (node per decision, the
//! shape the GKBMS dependency graph keeps). Complements
//! `rms_scaling.rs`, which sweeps hand-shaped layered grids; here the
//! topology is the mapping/normalization/key-substitution mix of a
//! generated DAIDA history. The checked-in `BENCH_rms.json` snapshot
//! (`cargo run --release -p bench --bin rms_snapshot`) extends this
//! sweep to 10^6 decisions.

use bench::rmsnet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gkbms::synth::{plan, Plan, SynthConfig};
use std::time::Duration;

fn corpus(decisions: usize) -> Plan {
    plan(&SynthConfig {
        seed: 42,
        decisions,
        retraction_rate: 0.0,
        ..SynthConfig::default()
    })
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rms/synth_build");
    for decisions in [250usize, 1_000, 4_000] {
        let p = corpus(decisions);
        group.bench_with_input(BenchmarkId::new("jtms_flat", decisions), &p, |b, p| {
            b.iter(|| std::hint::black_box(rmsnet::flat_jtms(p).tms.len()))
        });
        group.bench_with_input(
            BenchmarkId::new("jtms_abstracted", decisions),
            &p,
            |b, p| b.iter(|| std::hint::black_box(rmsnet::abstracted_jtms(p).tms.len())),
        );
        group.bench_with_input(BenchmarkId::new("atms_flat", decisions), &p, |b, p| {
            b.iter(|| std::hint::black_box(rmsnet::flat_atms(p).atms.len()))
        });
        group.bench_with_input(
            BenchmarkId::new("atms_abstracted", decisions),
            &p,
            |b, p| b.iter(|| std::hint::black_box(rmsnet::abstracted_atms(p).atms.len())),
        );
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("rms/synth_retract_enable");
    for decisions in [250usize, 1_000, 4_000] {
        let p = corpus(decisions);
        group.bench_with_input(BenchmarkId::new("jtms_flat", decisions), &p, |b, p| {
            let mut net = rmsnet::flat_jtms(p);
            let a = net.assumptions[net.assumptions.len() / 2];
            b.iter(|| {
                net.tms.retract(a);
                net.tms.enable(a);
                std::hint::black_box(net.tms.propagations)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("jtms_abstracted", decisions),
            &p,
            |b, p| {
                let mut net = rmsnet::abstracted_jtms(p);
                let a = net.assumptions[net.assumptions.len() / 2];
                b.iter(|| {
                    net.tms.retract(a);
                    net.tms.enable(a);
                    std::hint::black_box(net.tms.propagations)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(20);
    targets = bench_build, bench_churn
}
criterion_main!(benches);
