//! **E-4 / fig 3-4** — "there is also a need to retain multiple
//! versions of certain system components, without duplicating all the
//! implementation" (§3.3.2).
//!
//! Compares decision-based version management (the GKBMS derives the
//! latest configuration from the decision log) against full-copy
//! snapshots of the DBPL sources. Measures (a) the cost of
//! "configure the latest complete Implementation version" and (b) the
//! space kept per version.

use bench::{choice_request, decision_history};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use langs::dbpl::DbplModule;
use langs::mapping::{MappingStrategy, MoveDown};
use std::time::Duration;

fn bench_configure_latest(c: &mut Criterion) {
    let mut group = c.benchmark_group("versioning/configure_latest");
    for n in [5usize, 20, 50] {
        let (mut g, _) = decision_history(n, 2);
        // Add some alternative versions (choice decisions), half of
        // them retracted.
        for i in 0..n.min(10) {
            g.execute(choice_request(
                &format!("choose{i}"),
                &format!("E{i}Rel2"),
                &format!("E{i}Rel2@alt"),
            ))
            .expect("choice");
            if i % 2 == 0 {
                g.retract_decision(&format!("choose{i}")).expect("retract");
            }
        }
        group.bench_with_input(BenchmarkId::new("decision_based", n), &n, |b, _| {
            b.iter(|| {
                let config = g.configure_level("Implementation").expect("configure");
                std::hint::black_box(config.objects.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("choice_points", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(g.choice_points().len()))
        });
    }
    group.finish();
}

fn bench_snapshot_vs_log(c: &mut Criterion) {
    // Full-copy versioning of the DBPL sources vs keeping the decision
    // log: per-version cost of "remembering" a state.
    let model = bench::random_hierarchy(20, 4, 7);
    let out = MoveDown.map_hierarchy(&model, "Root").expect("map");
    let mut module = DbplModule::new("M");
    for d in out.decls {
        module.add(d).expect("add");
    }
    let mut group = c.benchmark_group("versioning/remember_state");
    group.bench_function("full_copy_snapshot", |b| {
        b.iter(|| std::hint::black_box(module.clone().decls.len()))
    });
    group.bench_function("decision_log_entry", |b| {
        // The decision-based approach stores only the decision record:
        // simulate by cloning just the names involved.
        b.iter(|| {
            let record: Vec<String> = module.decls.iter().map(|d| d.name().to_string()).collect();
            std::hint::black_box(record.len())
        })
    });
    group.finish();

    // Report the space shape once (printed in bench output).
    let snapshot_bytes = module.to_string().len();
    let log_entry_bytes: usize = module.decls.iter().map(|d| d.name().len()).sum();
    println!(
        "versioning/space: full-copy snapshot = {snapshot_bytes} bytes/version, \
         decision-log entry = {log_entry_bytes} bytes/version ({}x smaller)",
        snapshot_bytes / log_entry_bytes.max(1)
    );
}

fn bench_temporal_version_access(c: &mut Criterion) {
    // "temporal: focusing on system versions" — cost of materializing
    // a past version from belief time.
    let (mut g, decisions) = decision_history(10, 3);
    let mid_tick = g
        .record(&decisions[decisions.len() / 2])
        .expect("record")
        .tick;
    g.retract_decision("refine5_0").expect("retract");
    let mut group = c.benchmark_group("versioning/temporal");
    group.bench_function("objects_at_past_tick", |b| {
        b.iter(|| std::hint::black_box(g.objects_at(mid_tick).len()))
    });
    group.bench_function("objects_now", |b| {
        b.iter(|| std::hint::black_box(g.current_objects().len()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_configure_latest, bench_snapshot_vs_log, bench_temporal_version_access
}
criterion_main!(benches);
