//! Shared workload generators for the benchmark harness.
//!
//! Every bench in `benches/` regenerates one figure of the paper or
//! one of its efficiency questions (see DESIGN.md §4 and
//! EXPERIMENTS.md). The generators here produce the synthetic design
//! histories, class hierarchies and rule bases the benches sweep over.

use gkbms::metamodel::kernel;
use gkbms::{DecisionClass, DecisionDimension, DecisionRequest, Discharge, Gkbms, ToolSpec};
use langs::taxisdl::{EntityClass, TdlAttribute, TdlModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telos::Kb;

pub mod rmsnet;

/// A deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A KB holding a class chain `C0 isa C1 isa … isa C{depth}` with
/// `fanout` instances at the bottom — the inheritance workload for the
/// deduction benches.
pub fn isa_chain_kb(depth: usize, fanout: usize) -> Kb {
    let mut kb = Kb::new();
    let mut classes = Vec::with_capacity(depth + 1);
    for i in 0..=depth {
        classes.push(kb.individual(&format!("C{i}")).expect("fresh name"));
    }
    for w in classes.windows(2) {
        kb.specialize(w[0], w[1]).expect("chain is acyclic");
    }
    for i in 0..fanout {
        let t = kb.individual(&format!("t{i}")).expect("fresh name");
        kb.instantiate(t, classes[0]).expect("classify token");
    }
    kb
}

/// A synthetic stored-rule base for the lint benches: `groups` chained
/// components, each a mutually recursive pair `p{g}`/`q{g}` with
/// `per_pred` rules per predicate. Every component joins the EDB
/// bridge relations, recurses (bounded by an extensional literal, so
/// CB011 stays quiet), carries several same-predicate `attr` literals
/// (real subsumption matching work) and feeds the next component —
/// rich enough that a from-scratch analysis does real per-SCC work
/// (subsumption, the sort fixpoint, termination, plan costing) on
/// every component, which is exactly the work the fingerprint cache
/// elides.
pub fn synthetic_rule_base(groups: usize, per_pred: usize) -> Vec<String> {
    let mut rules = Vec::with_capacity(groups * per_pred * 2);
    for g in 1..=groups {
        let prev = if g == 1 {
            "in_".to_string()
        } else {
            format!("p{}", g - 1)
        };
        for j in 0..per_pred {
            rules.push(match j {
                0 => format!("p{g}(X, Y) :- in_(X, C), attr(X, \"f{g}\", Y), isa(C, \"T{g}\")."),
                1 => format!("p{g}(X, Y) :- q{g}(X, Z), attr(Z, \"g{g}\", Y), in_(X, \"T{g}\")."),
                _ => format!(
                    "p{g}(X, Y) :- {prev}(X, Z), attr(X, \"a{g}_{j}\", V), \
                     attr(Z, \"b{g}_{j}\", W), attr(V, \"c{g}_{j}\", Y), \
                     in_(X, \"T{g}\"), isa(W, \"U{g}\")."
                ),
            });
        }
        for j in 0..per_pred {
            rules.push(match j {
                0 => format!("q{g}(X, Y) :- p{g}(X, Z), {prev}(Z, Y), in_(X, \"T{g}\")."),
                _ => format!(
                    "q{g}(X, Y) :- p{g}(X, Z), attr(Z, \"d{g}_{j}\", V), \
                     attr(X, \"e{g}_{j}\", W), attr(V, \"h{g}_{j}\", Y), \
                     in_(W, \"T{g}\")."
                ),
            });
        }
    }
    rules
}

/// A random TaxisDL hierarchy: `width` subclasses under a root, each
/// with `attrs` attributes, one of them possibly set-valued.
pub fn random_hierarchy(width: usize, attrs: usize, seed: u64) -> TdlModel {
    let mut r = rng(seed);
    let mut model = TdlModel::default();
    model.entities.push(EntityClass {
        name: "Domain".into(),
        isa: vec![],
        attributes: vec![],
    });
    model.entities.push(EntityClass {
        name: "Root".into(),
        isa: vec![],
        attributes: vec![TdlAttribute {
            label: "id".into(),
            target: "Domain".into(),
            set_valued: false,
        }],
    });
    for i in 0..width {
        let mut attributes = Vec::new();
        for a in 0..attrs {
            attributes.push(TdlAttribute {
                label: format!("a{i}_{a}"),
                target: "Domain".into(),
                set_valued: a == 0 && r.gen_bool(0.5),
            });
        }
        model.entities.push(EntityClass {
            name: format!("Sub{i}"),
            isa: vec!["Root".into()],
            attributes,
        });
    }
    model
}

/// A GKBMS with mapping / refinement / choice decision classes plus an
/// automatic tool for the first two.
pub fn bench_gkbms() -> Gkbms {
    let mut g = Gkbms::new().expect("bootstrap");
    g.define_decision_class(
        DecisionClass::new("DecMap", DecisionDimension::Mapping)
            .from_classes(&[kernel::TDL_ENTITY_CLASS])
            .to_classes(&[kernel::DBPL_REL]),
    )
    .expect("fresh class");
    g.define_decision_class(
        DecisionClass::new("DecRefine", DecisionDimension::Refinement)
            .from_classes(&[kernel::DBPL_REL])
            .to_classes(&[kernel::DBPL_REL]),
    )
    .expect("fresh class");
    g.define_decision_class(
        DecisionClass::new("DecChoose", DecisionDimension::Choice)
            .from_classes(&[kernel::DBPL_REL])
            .to_classes(&[kernel::DBPL_REL])
            .obligation("sound-choice", "the alternative is admissible"),
    )
    .expect("fresh class");
    g.register_tool(ToolSpec::new("Mapper", true).executes("DecMap"))
        .expect("fresh tool");
    g.register_tool(ToolSpec::new("Refiner", true).executes("DecRefine"))
        .expect("fresh tool");
    g
}

/// Builds a decision history: `n` entity classes each mapped, then each
/// relation refined `refines` times in a chain. Returns the GKBMS and
/// the names of all refinement decision instances.
pub fn decision_history(n: usize, refines: usize) -> (Gkbms, Vec<String>) {
    let mut g = bench_gkbms();
    let mut decisions = Vec::new();
    for i in 0..n {
        let class_name = format!("E{i}");
        g.register_object(&class_name, kernel::TDL_ENTITY_CLASS, "src")
            .expect("register");
        let rel = format!("E{i}Rel0");
        g.execute(
            DecisionRequest::new("DecMap", &format!("map{i}"), "dev")
                .with_tool("Mapper")
                .input(&class_name)
                .output(&rel, kernel::DBPL_REL),
        )
        .expect("map");
        let mut prev = rel;
        for r in 0..refines {
            let next = format!("E{i}Rel{}", r + 1);
            let dname = format!("refine{i}_{r}");
            g.execute(
                DecisionRequest::new("DecRefine", &dname, "dev")
                    .with_tool("Refiner")
                    .input(&prev)
                    .output(&next, kernel::DBPL_REL),
            )
            .expect("refine");
            decisions.push(dname);
            prev = next;
        }
    }
    (g, decisions)
}

/// A signed choice decision request (for choice-point benches).
pub fn choice_request(name: &str, input: &str, output: &str) -> DecisionRequest {
    DecisionRequest::new("DecChoose", name, "dev")
        .input(input)
        .output(output, kernel::DBPL_REL)
        .discharge(Discharge::Signature {
            obligation: "sound-choice".into(),
            by: "dev".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_chain_kb_has_expected_closure() {
        let kb = isa_chain_kb(10, 5);
        let c0 = kb.lookup("C0").unwrap();
        let c10 = kb.lookup("C10").unwrap();
        assert_eq!(kb.isa_ancestors(c0).len(), 10);
        assert_eq!(kb.all_instances_of(c10).len(), 5);
    }

    #[test]
    fn random_hierarchy_is_valid() {
        let m = random_hierarchy(8, 3, 42);
        m.validate().unwrap();
        assert_eq!(m.leaves("Root").unwrap().len(), 8);
    }

    #[test]
    fn decision_history_builds() {
        let (g, decisions) = decision_history(3, 2);
        assert_eq!(g.records().len(), 3 + 3 * 2);
        assert_eq!(decisions.len(), 6);
        assert!(g.is_current("E2Rel2"));
    }
}
