//! RMS dependency networks derived from synthetic design histories.
//!
//! **E-3** (§3.3.3): "current RMS can handle only fairly small
//! dependency networks efficiently \[DEKL86\]; we are studying their
//! combination with the abstraction mechanisms of the GKBMS." The
//! builders here turn one [`gkbms::synth`] plan into the two network
//! shapes that question contrasts:
//!
//! - **flat** — one RMS node per design object, one justification per
//!   decision output; the network a naive RMS coupling would build.
//! - **abstracted** — one RMS node per *decision*, justified by the
//!   decisions that produced its inputs; the decision-granularity
//!   network the GKBMS dependency graph actually keeps.
//!
//! In both shapes each decision also contributes one assumption node
//! (`d{i} holds`), so retraction is the native RMS primitive: retract
//! the assumption and the decision's consequences go OUT.

use gkbms::synth::{Plan, PlannedOp};
use rms::atms::{Atms, AtmsNodeId};
use rms::jtms::{Jtms, JtmsNodeId};

/// A JTMS built from a plan, with the per-decision assumptions that
/// drive retraction churn.
pub struct JtmsNet {
    /// The labeled network.
    pub tms: Jtms,
    /// One assumption per executed decision, in plan order.
    pub assumptions: Vec<JtmsNodeId>,
    /// Justifications added (the edge count of the network).
    pub justifications: usize,
}

/// An ATMS built from a plan.
pub struct AtmsNet {
    /// The labeled network.
    pub atms: Atms,
    /// One assumption per executed decision, in plan order.
    pub assumptions: Vec<AtmsNodeId>,
    /// Justifications added.
    pub justifications: usize,
}

/// Flat JTMS: a node per object. Objects minted as decision inputs
/// (the registered source entities) are justified by the decision
/// assumption alone; every output by the assumption plus its inputs.
pub fn flat_jtms(p: &Plan) -> JtmsNet {
    let mut tms = Jtms::new();
    let mut obj: Vec<Option<JtmsNodeId>> = vec![None; p.objects];
    let mut assumptions = Vec::with_capacity(p.decisions);
    let mut justifications = 0usize;
    for op in &p.ops {
        match op {
            PlannedOp::Execute {
                inputs, outputs, ..
            } => {
                let d = assumptions.len();
                let a = tms.assumption(format!("d{d}"));
                assumptions.push(a);
                let mut ins = vec![a];
                for &i in inputs {
                    let n = match obj[i] {
                        Some(n) => n,
                        None => {
                            // A source object minted by this decision:
                            // registered, so justified by the decision
                            // itself.
                            let n = tms.node(format!("o{i}"));
                            tms.justify(n, &[a], &[]);
                            justifications += 1;
                            obj[i] = Some(n);
                            n
                        }
                    };
                    ins.push(n);
                }
                for &o in outputs {
                    let n = tms.node(format!("o{o}"));
                    tms.justify(n, &ins, &[]);
                    justifications += 1;
                    obj[o] = Some(n);
                }
            }
            PlannedOp::Retract { decision } => {
                tms.retract(assumptions[*decision]);
            }
        }
    }
    JtmsNet {
        tms,
        assumptions,
        justifications,
    }
}

/// Abstracted JTMS: a node per decision, justified by its assumption
/// plus the decisions that produced its inputs.
pub fn abstracted_jtms(p: &Plan) -> JtmsNet {
    let mut tms = Jtms::new();
    // Which decision node produced each object (source objects have
    // none — they collapse into their minting decision).
    let mut producer: Vec<Option<JtmsNodeId>> = vec![None; p.objects];
    let mut assumptions = Vec::with_capacity(p.decisions);
    let mut justifications = 0usize;
    for op in &p.ops {
        match op {
            PlannedOp::Execute {
                inputs, outputs, ..
            } => {
                let d = assumptions.len();
                let a = tms.assumption(format!("d{d}"));
                assumptions.push(a);
                let n = tms.node(format!("dec{d}"));
                let mut ins = vec![a];
                for &i in inputs {
                    if let Some(pn) = producer[i] {
                        if !ins.contains(&pn) {
                            ins.push(pn);
                        }
                    }
                }
                tms.justify(n, &ins, &[]);
                justifications += 1;
                for &o in outputs {
                    producer[o] = Some(n);
                }
                for &i in inputs {
                    // Source inputs minted here are produced here.
                    producer[i].get_or_insert(n);
                }
            }
            PlannedOp::Retract { decision } => {
                tms.retract(assumptions[*decision]);
            }
        }
    }
    JtmsNet {
        tms,
        assumptions,
        justifications,
    }
}

/// Flat ATMS: same topology as [`flat_jtms`]. Retraction is a no-op —
/// the ATMS keeps every context, so a retracted decision is just an
/// environment one no longer asks about.
pub fn flat_atms(p: &Plan) -> AtmsNet {
    let mut atms = Atms::new();
    let mut obj: Vec<Option<AtmsNodeId>> = vec![None; p.objects];
    let mut assumptions = Vec::with_capacity(p.decisions);
    let mut justifications = 0usize;
    for op in &p.ops {
        if let PlannedOp::Execute {
            inputs, outputs, ..
        } = op
        {
            let d = assumptions.len();
            let a = atms.assumption(format!("d{d}"));
            assumptions.push(a);
            let mut ins = vec![a];
            for &i in inputs {
                let n = match obj[i] {
                    Some(n) => n,
                    None => {
                        let n = atms.node(format!("o{i}"));
                        atms.justify(n, &[a]);
                        justifications += 1;
                        obj[i] = Some(n);
                        n
                    }
                };
                ins.push(n);
            }
            for &o in outputs {
                let n = atms.node(format!("o{o}"));
                atms.justify(n, &ins);
                justifications += 1;
                obj[o] = Some(n);
            }
        }
    }
    AtmsNet {
        atms,
        assumptions,
        justifications,
    }
}

/// Abstracted ATMS: same topology as [`abstracted_jtms`].
pub fn abstracted_atms(p: &Plan) -> AtmsNet {
    let mut atms = Atms::new();
    let mut producer: Vec<Option<AtmsNodeId>> = vec![None; p.objects];
    let mut assumptions = Vec::with_capacity(p.decisions);
    let mut justifications = 0usize;
    for op in &p.ops {
        if let PlannedOp::Execute {
            inputs, outputs, ..
        } = op
        {
            let d = assumptions.len();
            let a = atms.assumption(format!("d{d}"));
            assumptions.push(a);
            let n = atms.node(format!("dec{d}"));
            let mut ins = vec![a];
            for &i in inputs {
                if let Some(pn) = producer[i] {
                    if !ins.contains(&pn) {
                        ins.push(pn);
                    }
                }
            }
            atms.justify(n, &ins);
            justifications += 1;
            for &o in outputs {
                producer[o] = Some(n);
            }
            for &i in inputs {
                producer[i].get_or_insert(n);
            }
        }
    }
    AtmsNet {
        atms,
        assumptions,
        justifications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkbms::synth::{plan, SynthConfig};

    fn cfg(decisions: usize) -> SynthConfig {
        SynthConfig {
            seed: 11,
            decisions,
            retraction_rate: 0.0,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn flat_network_is_larger_than_abstracted() {
        let p = plan(&cfg(200));
        let flat = flat_jtms(&p);
        let abs = abstracted_jtms(&p);
        assert!(flat.tms.len() > abs.tms.len());
        assert!(flat.justifications > abs.justifications);
        // Abstracted: exactly one node + one assumption + one
        // justification per decision.
        assert_eq!(abs.tms.len(), 2 * p.decisions);
        assert_eq!(abs.justifications, p.decisions);
    }

    #[test]
    fn every_node_labels_in_after_build() {
        let p = plan(&cfg(100));
        let flat = flat_jtms(&p);
        assert_eq!(flat.tms.in_nodes().len(), flat.tms.len());
        let abs = abstracted_jtms(&p);
        assert_eq!(abs.tms.in_nodes().len(), abs.tms.len());
        let fa = flat_atms(&p);
        for i in 0..fa.atms.len() {
            assert!(fa.atms.believed_somewhere(AtmsNodeId(i as u32)));
        }
    }

    #[test]
    fn retracting_a_decision_takes_its_consequences_out() {
        let p = plan(&cfg(100));
        let mut net = flat_jtms(&p);
        let before = net.tms.in_nodes().len();
        net.tms.retract(net.assumptions[0]);
        let after = net.tms.in_nodes().len();
        assert!(after < before, "retraction must take nodes OUT");
        net.tms.enable(net.assumptions[0]);
        assert_eq!(net.tms.in_nodes().len(), before);
    }

    #[test]
    fn plan_retractions_are_applied_during_build() {
        let p = plan(&SynthConfig {
            seed: 11,
            decisions: 80,
            retraction_rate: 0.3,
            ..SynthConfig::default()
        });
        let has_retraction = p
            .ops
            .iter()
            .any(|op| matches!(op, PlannedOp::Retract { .. }));
        assert!(has_retraction, "want a plan that retracts");
        let net = flat_jtms(&p);
        assert!(net.tms.in_nodes().len() < net.tms.len());
    }
}
