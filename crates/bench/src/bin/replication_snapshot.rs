//! Writes `BENCH_replication.json`: aggregate read throughput of a
//! replica fleet at 0/1/2/4 read replicas under a TELL-heavy writer,
//! plus the replica lag distribution (ISSUE 7 acceptance).
//!
//! Each round starts a journaled leader plus R in-memory followers
//! subscribed over the replication wire op, waits for the fleet to
//! converge on the preload, then points 24 reader threads round-robin
//! at the fleet. One read = a 2 ms simulated tool wait plus a snapshot
//! ASK; every node's admission gate is capped at 4 in-flight requests,
//! so a single node saturates at a few concurrent readers and the
//! aggregate read capacity is what replicas add (readers retry on
//! `Overloaded`, so the metric is goodput). Throughout the round a
//! background writer TELLs against the leader as fast as it will
//! acknowledge, and a sampler polls every follower's applied position
//! to build the lag histogram.
//!
//! Run with `cargo run --release -p bench --bin replication_snapshot`.

use gkbms::Gkbms;
use server::{Client, ClientError, Config, ErrorCode, Server};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const INSTANCES: usize = 100;
const READER_THREADS: usize = 24;
const ROUND_SECS: f64 = 2.5;
const TOOL_WAIT_MS: u64 = 2;
const PER_NODE_INFLIGHT: usize = 4;
const REPLICA_ROUNDS: [usize; 4] = [0, 1, 2, 4];

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cb-bench-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn node_cfg() -> Config {
    Config {
        max_inflight: PER_NODE_INFLIGHT,
        slow_query_threshold: None,
        ..Config::default()
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct RoundResult {
    reads_per_sec: f64,
    overloaded_retries: u64,
    writer_tells: u64,
    lag_p50: u64,
    lag_p99: u64,
    lag_max: u64,
}

fn run_round(replicas: usize) -> RoundResult {
    let dir = tmp_dir(&format!("r{replicas}"));
    let (mut g, _) = Gkbms::recover(&dir).expect("journaled leader");
    g.tell_src("TELL Paper end").expect("class");
    let mut src = String::new();
    for i in 0..INSTANCES {
        src.push_str(&format!("TELL paper{i} in Paper end\n"));
    }
    g.tell_src(&src).expect("instances");
    let leader = Server::bind("127.0.0.1:0", g, node_cfg()).expect("bind leader");
    let laddr = leader.local_addr();

    let followers: Vec<Server> = (0..replicas)
        .map(|_| {
            let cfg = Config {
                follow: Some(laddr.to_string()),
                ..node_cfg()
            };
            Server::bind("127.0.0.1:0", Gkbms::new().expect("fresh"), cfg).expect("bind follower")
        })
        .collect();
    let mut fleet: Vec<SocketAddr> = vec![laddr];
    fleet.extend(followers.iter().map(|f| f.local_addr()));

    // Converge on the preload before measuring.
    let preloaded = {
        let mut c = Client::connect(laddr).expect("leader status");
        c.repl_status().expect("status").applied_seq
    };
    for f in &followers {
        let mut c = Client::connect(f.local_addr()).expect("follower status");
        let deadline = Instant::now() + Duration::from_secs(15);
        while c.repl_status().expect("status").applied_seq < preloaded {
            assert!(Instant::now() < deadline, "follower never converged");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writer_tells = Arc::new(AtomicU64::new(0));
    let writer = {
        let stop = Arc::clone(&stop);
        let tells = Arc::clone(&writer_tells);
        std::thread::spawn(move || {
            let mut c = Client::connect(laddr).expect("writer connect");
            let (s, _) = c.hello().expect("writer hello");
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                match c.tell(s, &format!("TELL churn{n} in Paper end")) {
                    Ok(_) => {
                        tells.fetch_add(1, Ordering::Relaxed);
                        n += 1;
                    }
                    // The writer shares the admission gate with the
                    // leader's readers; retry like they do.
                    Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("writer tell: {e}"),
                }
            }
            c.bye(s).expect("writer bye");
        })
    };
    let lag_sampler = {
        let stop = Arc::clone(&stop);
        let addrs: Vec<SocketAddr> = fleet[1..].to_vec();
        std::thread::spawn(move || {
            let mut clients: Vec<Client> = addrs
                .iter()
                .map(|a| Client::connect(a).expect("sampler connect"))
                .collect();
            let mut samples = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                for c in &mut clients {
                    if let Ok(s) = c.repl_status() {
                        samples.push(s.lag());
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            samples
        })
    };

    let start = Instant::now();
    let readers: Vec<_> = (0..READER_THREADS)
        .map(|t| {
            let addr = fleet[t % fleet.len()];
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("reader connect");
                let (s, _) = c.hello().expect("reader hello");
                let mut done = 0u64;
                let mut retries = 0u64;
                while start.elapsed().as_secs_f64() < ROUND_SECS {
                    let step = c
                        .sleep(s, TOOL_WAIT_MS)
                        .and_then(|_| c.ask(s, "p", "Paper", "true"));
                    match step {
                        Ok(reply) => {
                            assert!(reply.answers.len() >= INSTANCES);
                            done += 1;
                        }
                        Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                            retries += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => panic!("reader against {addr}: {e}"),
                    }
                }
                let _ = c.bye(s);
                (done, retries)
            })
        })
        .collect();
    let mut reads = 0u64;
    let mut retries = 0u64;
    for r in readers {
        let (d, rt) = r.join().expect("reader thread");
        reads += d;
        retries += rt;
    }
    let wall = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    let mut lags = lag_sampler.join().expect("lag sampler");
    lags.sort_unstable();

    for f in followers {
        f.shutdown().expect("follower shutdown");
    }
    leader.shutdown().expect("leader shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    RoundResult {
        reads_per_sec: reads as f64 / wall,
        overloaded_retries: retries,
        writer_tells: writer_tells.load(Ordering::Relaxed),
        lag_p50: percentile(&lags, 0.50),
        lag_p99: percentile(&lags, 0.99),
        lag_max: lags.last().copied().unwrap_or(0),
    }
}

fn main() {
    let mut entries = Vec::new();
    let mut base = 0.0f64;
    for replicas in REPLICA_ROUNDS {
        let r = run_round(replicas);
        if replicas == 0 {
            base = r.reads_per_sec;
        }
        let scaling = r.reads_per_sec / base;
        println!(
            "{replicas} replica(s): {:.0} reads/s ({scaling:.2}x vs leader alone), \
             {} overloaded retries, {} writer tells, \
             lag p50 {} p99 {} max {} op(s)",
            r.reads_per_sec, r.overloaded_retries, r.writer_tells, r.lag_p50, r.lag_p99, r.lag_max
        );
        entries.push(format!(
            "    {{\n      \"replicas\": {replicas},\n      \
             \"reader_threads\": {READER_THREADS},\n      \
             \"reads_per_sec\": {:.1},\n      \
             \"scaling_vs_leader_alone\": {scaling:.2},\n      \
             \"overloaded_retries\": {},\n      \
             \"writer_tells\": {},\n      \
             \"lag_ops_p50\": {},\n      \"lag_ops_p99\": {},\n      \
             \"lag_ops_max\": {}\n    }}",
            r.reads_per_sec, r.overloaded_retries, r.writer_tells, r.lag_p50, r.lag_p99, r.lag_max
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"replication\",\n  \"issue\": 7,\n  \
         \"note\": \"one read = {TOOL_WAIT_MS} ms simulated tool wait + snapshot ASK over {INSTANCES}+ Paper instances, {READER_THREADS} reader threads round-robin over leader + R replicas, every node's admission gate capped at {PER_NODE_INFLIGHT} in-flight; a background writer TELLs against the leader as fast as acknowledged, so replica lag is measured under write pressure; readers retry on Overloaded, so reads_per_sec is goodput and scales with the fleet's aggregate admission capacity\",\n  \
         \"rounds\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_replication.json", &json).expect("write BENCH_replication.json");
    println!("wrote BENCH_replication.json");
}
