//! Writes `BENCH_deduction.json`: a machine-readable snapshot of the
//! deduction workloads, comparing the scan-based and indexed join
//! paths of the bottom-up engine (ISSUE 1 acceptance).
//!
//! Run with `cargo run --release -p bench --bin deduction_snapshot`.

use datalog::seminaive;
use objectbase::query::{base_program, to_edb};
use std::time::Instant;

fn median_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let mut entries = Vec::new();
    for (depth, fanout) in [(16usize, 250usize), (64, 1000)] {
        let kb = bench::isa_chain_kb(depth, fanout);
        let edb = to_edb(&kb).expect("edb");
        let program = base_program();

        let (model, stats) = seminaive::evaluate(&program, &edb).expect("indexed eval");
        let expected = model.count("inT");
        let scan_time = median_secs(
            || {
                let (m, _) = seminaive::evaluate_scan(&program, &edb).expect("scan eval");
                assert_eq!(m.count("inT"), expected);
            },
            3,
        );
        let indexed_time = median_secs(
            || {
                let (m, _) = seminaive::evaluate(&program, &edb).expect("indexed eval");
                assert_eq!(m.count("inT"), expected);
            },
            3,
        );
        let speedup = scan_time / indexed_time;
        println!(
            "isa_chain_kb(depth={depth}, fanout={fanout}): scan {scan_time:.3}s, \
             indexed {indexed_time:.3}s, speedup {speedup:.1}x \
             (inT tuples: {expected}, probes: {}, scanned: {})",
            stats.index_probes, stats.tuples_scanned
        );
        entries.push(format!(
            "    {{\n      \"workload\": \"isa_chain_kb\",\n      \"depth\": {depth},\n      \
             \"fanout\": {fanout},\n      \"inT_tuples\": {expected},\n      \
             \"scan_seconds\": {scan_time:.6},\n      \"indexed_seconds\": {indexed_time:.6},\n      \
             \"speedup\": {speedup:.2},\n      \"index_probes\": {},\n      \
             \"tuples_scanned\": {}\n    }}",
            stats.index_probes, stats.tuples_scanned
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"deduction\",\n  \"issue\": 1,\n  \
         \"note\": \"scan = pre-PR per-tuple matching (seminaive::evaluate_scan); indexed = hash-join evaluation (seminaive::evaluate)\",\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_deduction.json", &json).expect("write BENCH_deduction.json");
    println!("wrote BENCH_deduction.json");
}
