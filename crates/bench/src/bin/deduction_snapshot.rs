//! Writes `BENCH_deduction.json`: a machine-readable snapshot of the
//! deduction workloads — the scan-based vs indexed join paths of the
//! bottom-up engine (ISSUE 1 acceptance) and a TELL-heavy churn
//! workload pitting incremental view maintenance against full
//! recomputation (ISSUE 8 acceptance: >= 100x at depth-64 chains).
//!
//! Run with `cargo run --release -p bench --bin deduction_snapshot`.

use datalog::ast::{Program, Value};
use datalog::ivm::{Fact, MaterializedView};
use datalog::seminaive;
use objectbase::query::{base_program, to_edb};
use std::time::Instant;

fn median_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let mut entries = Vec::new();
    for (depth, fanout) in [(16usize, 250usize), (64, 1000)] {
        let kb = bench::isa_chain_kb(depth, fanout);
        let edb = to_edb(&kb).expect("edb");
        let program = base_program();

        let (model, stats) = seminaive::evaluate(&program, &edb).expect("indexed eval");
        let expected = model.count("inT");
        let scan_time = median_secs(
            || {
                let (m, _) = seminaive::evaluate_scan(&program, &edb).expect("scan eval");
                assert_eq!(m.count("inT"), expected);
            },
            3,
        );
        let indexed_time = median_secs(
            || {
                let (m, _) = seminaive::evaluate(&program, &edb).expect("indexed eval");
                assert_eq!(m.count("inT"), expected);
            },
            3,
        );
        let speedup = scan_time / indexed_time;
        println!(
            "isa_chain_kb(depth={depth}, fanout={fanout}): scan {scan_time:.3}s, \
             indexed {indexed_time:.3}s, speedup {speedup:.1}x \
             (inT tuples: {expected}, probes: {}, scanned: {})",
            stats.index_probes, stats.tuples_scanned
        );
        entries.push(format!(
            "    {{\n      \"workload\": \"isa_chain_kb\",\n      \"depth\": {depth},\n      \
             \"fanout\": {fanout},\n      \"inT_tuples\": {expected},\n      \
             \"scan_seconds\": {scan_time:.6},\n      \"indexed_seconds\": {indexed_time:.6},\n      \
             \"speedup\": {speedup:.2},\n      \"index_probes\": {},\n      \
             \"tuples_scanned\": {}\n    }}",
            stats.index_probes, stats.tuples_scanned
        ));
    }
    entries.push(churn_entry(64, 128, 40));
    let json = format!(
        "{{\n  \"bench\": \"deduction\",\n  \"issue\": 1,\n  \
         \"note\": \"scan = pre-PR per-tuple matching (seminaive::evaluate_scan); indexed = hash-join evaluation (seminaive::evaluate); ivm_churn = incremental maintenance (MaterializedView::apply) vs full recompute under interleaved TELL/UNTELL (ISSUE 8)\",\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_deduction.json", &json).expect("write BENCH_deduction.json");
    println!("wrote BENCH_deduction.json");
}

/// TELL-heavy churn over `chains` disjoint depth-`depth` edge chains:
/// alternating TELLs extending a chain tail and UNTELLs taking the
/// extension back, each folded into the transitive closure by the
/// maintained view, against a from-scratch evaluation of the same
/// program over the same extensional state.
fn churn_entry(depth: usize, chains: usize, ops: usize) -> String {
    let program =
        Program::parse("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).")
            .expect("churn program");
    let node = |c: usize, d: usize| Value::Int((c * (depth + 2) + d) as i64);
    let mut view = MaterializedView::new(program.clone()).expect("view");
    let load: Vec<Fact> = (0..chains)
        .flat_map(|c| {
            (0..depth).map(move |d| ("edge".to_string(), vec![node(c, d), node(c, d + 1)]))
        })
        .collect();
    view.apply(&load, &[]).expect("initial load");
    let path_tuples = view.model().count("path");

    // Median per-operation incremental cost: each op is one TELL of a
    // tail-extension edge or the UNTELL taking it back, so the view
    // returns to the loaded state every second op.
    let mut delta_tuples = 0usize;
    let mut times = Vec::with_capacity(ops);
    for i in 0..ops {
        let c = (i / 2) % chains;
        let ext: Fact = ("edge".to_string(), vec![node(c, depth), node(c, depth + 1)]);
        let start = Instant::now();
        let stats = if i % 2 == 0 {
            view.apply(std::slice::from_ref(&ext), &[])
                .expect("churn TELL")
        } else {
            view.apply(&[], std::slice::from_ref(&ext))
                .expect("churn UNTELL")
        };
        times.push(start.elapsed().as_secs_f64());
        delta_tuples += stats.delta_tuples();
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let incremental_time = times[times.len() / 2];

    let recompute_time = median_secs(
        || {
            let (m, _) = seminaive::evaluate(&program, view.edb()).expect("full recompute");
            assert_eq!(m.count("path"), path_tuples);
        },
        3,
    );
    let speedup = recompute_time / incremental_time;
    println!(
        "ivm_churn(depth={depth}, chains={chains}, ops={ops}): recompute {recompute_time:.4}s, \
         incremental {incremental_time:.7}s/op, speedup {speedup:.0}x \
         (path tuples: {path_tuples}, delta tuples: {delta_tuples})"
    );
    assert!(
        speedup >= 100.0,
        "ISSUE 8 acceptance: churn must be >= 100x faster than recompute, got {speedup:.0}x"
    );
    format!(
        "    {{\n      \"workload\": \"ivm_churn\",\n      \"depth\": {depth},\n      \
         \"chains\": {chains},\n      \"churn_ops\": {ops},\n      \
         \"path_tuples\": {path_tuples},\n      \"delta_tuples\": {delta_tuples},\n      \
         \"recompute_seconds\": {recompute_time:.6},\n      \
         \"incremental_seconds_per_op\": {incremental_time:.9},\n      \
         \"speedup\": {speedup:.1}\n    }}"
    )
}
