//! Writes `BENCH_rms.json`: the E-3 snapshot (ISSUE 9 acceptance).
//!
//! JTMS vs ATMS labeling cost over dependency networks derived from
//! the *same* synthetic design histories ([`gkbms::synth`]), in two
//! shapes: flat (one node per design object) and decision-granularity
//! abstracted (one node per decision — what the GKBMS dependency
//! graph keeps). The ATMS is swept only at the shared small sizes;
//! at 10^5–10^6 decisions its per-environment assumption bitsets are
//! exactly the "fairly small networks" ceiling §3.3.3 cites, so the
//! large sizes are JTMS-only.
//!
//! Run with `cargo run --release -p bench --bin rms_snapshot`.

use bench::rmsnet;
use gkbms::synth::{plan, SynthConfig, SynthRng};
use std::time::Instant;

fn median_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn cfg(decisions: usize) -> SynthConfig {
    SynthConfig {
        seed: 42,
        decisions,
        retraction_rate: 0.0,
        ..SynthConfig::default()
    }
}

/// One JTMS measurement: build cost plus backtracking churn
/// (retract + re-enable a sampled decision assumption).
fn jtms_entry(decisions: usize, flat: bool) -> String {
    let p = plan(&cfg(decisions));
    let build = if flat {
        rmsnet::flat_jtms
    } else {
        rmsnet::abstracted_jtms
    };
    let build_seconds = median_secs(
        || {
            std::hint::black_box(build(&p).tms.len());
        },
        3,
    );
    let mut net = build(&p);
    assert_eq!(
        net.tms.in_nodes().len(),
        net.tms.len(),
        "all nodes IN after a retraction-free build"
    );
    let mut rng = SynthRng::new(7);
    let mut times = Vec::new();
    for _ in 0..5 {
        let a = net.assumptions[rng.below(net.assumptions.len())];
        let start = Instant::now();
        net.tms.retract(a);
        net.tms.enable(a);
        times.push(start.elapsed().as_secs_f64());
        assert_eq!(net.tms.in_nodes().len(), net.tms.len());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let churn_seconds = times[times.len() / 2];
    let topology = if flat { "flat" } else { "abstracted" };
    println!(
        "jtms/{topology} decisions={decisions}: {} nodes, {} justs, \
         build {build_seconds:.4}s, churn {churn_seconds:.5}s",
        net.tms.len(),
        net.justifications
    );
    format!(
        "    {{\n      \"engine\": \"jtms\",\n      \"topology\": \"{topology}\",\n      \
         \"decisions\": {decisions},\n      \"nodes\": {},\n      \
         \"justifications\": {},\n      \"build_seconds\": {build_seconds:.6},\n      \
         \"churn_seconds\": {churn_seconds:.6},\n      \"propagations\": {}\n    }}",
        net.tms.len(),
        net.justifications,
        net.tms.propagations
    )
}

/// One ATMS measurement: label-computation cost of building the same
/// network. No churn leg — the ATMS keeps every context, so decision
/// retraction is a query-time environment switch, not a relabeling.
fn atms_entry(decisions: usize, flat: bool) -> String {
    let p = plan(&cfg(decisions));
    let build = if flat {
        rmsnet::flat_atms
    } else {
        rmsnet::abstracted_atms
    };
    let build_seconds = median_secs(
        || {
            std::hint::black_box(build(&p).atms.len());
        },
        3,
    );
    let net = build(&p);
    let topology = if flat { "flat" } else { "abstracted" };
    println!(
        "atms/{topology} decisions={decisions}: {} nodes, {} justs, \
         build {build_seconds:.4}s, {} label updates",
        net.atms.len(),
        net.justifications,
        net.atms.label_updates
    );
    format!(
        "    {{\n      \"engine\": \"atms\",\n      \"topology\": \"{topology}\",\n      \
         \"decisions\": {decisions},\n      \"nodes\": {},\n      \
         \"justifications\": {},\n      \"build_seconds\": {build_seconds:.6},\n      \
         \"label_updates\": {}\n    }}",
        net.atms.len(),
        net.justifications,
        net.atms.label_updates
    )
}

fn main() {
    // Same-seed corpus identity: the whole sweep is meaningless unless
    // every engine/topology pair sees byte-for-byte the same history.
    let p1 = plan(&cfg(20_000));
    let p2 = plan(&cfg(20_000));
    assert_eq!(p1.fingerprint(), p2.fingerprint(), "same-seed identity");
    assert_eq!(p1.ops, p2.ops, "same-seed plans are identical");
    let fingerprint = p1.fingerprint();

    let shared = [1_000usize, 5_000, 20_000];
    let jtms_only = [200_000usize, 1_000_000];
    let mut entries = Vec::new();
    for &n in &shared {
        entries.push(jtms_entry(n, true));
        entries.push(jtms_entry(n, false));
        entries.push(atms_entry(n, true));
        entries.push(atms_entry(n, false));
    }
    for &n in &jtms_only {
        entries.push(jtms_entry(n, true));
        entries.push(jtms_entry(n, false));
    }

    // The abstraction claim, checked on the largest shared size: the
    // decision-granularity network is strictly smaller than the flat
    // one over the same history.
    let flat = rmsnet::flat_jtms(&p1);
    let abs = rmsnet::abstracted_jtms(&p1);
    assert!(abs.tms.len() < flat.tms.len());
    assert!(abs.justifications < flat.justifications);
    println!(
        "abstraction at 20k decisions: {} -> {} nodes ({:.2}x), {} -> {} justs",
        flat.tms.len(),
        abs.tms.len(),
        flat.tms.len() as f64 / abs.tms.len() as f64,
        flat.justifications,
        abs.justifications
    );

    let json = format!(
        "{{\n  \"bench\": \"rms\",\n  \"issue\": 9,\n  \"seed\": 42,\n  \
         \"corpus_fingerprint\": \"{fingerprint:016x}\",\n  \
         \"note\": \"E-3: JTMS vs ATMS labeling over synth design histories (gkbms::synth::plan, seed 42, retraction-free build then retract/enable churn); flat = node per design object, abstracted = node per decision (GKBMS decision granularity); ATMS swept at shared sizes only — its per-env assumption bitsets are the small-network ceiling of para 3.3.3, so 200k/1M decisions are JTMS-only\",\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_rms.json", &json).expect("write BENCH_rms.json");
    println!("wrote BENCH_rms.json");
}
