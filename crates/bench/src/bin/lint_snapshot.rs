//! Writes `BENCH_lint.json`: incremental (SCC-fingerprint-cached)
//! admission linting vs a full from-scratch re-lint over a 10k-rule
//! stored base (ISSUE 10 acceptance: the incremental path must be at
//! least 10x faster, because a TELL only dirties the components it
//! touches).
//!
//! Run with `cargo run --release -p bench --bin lint_snapshot` from
//! the repository root.

use analysis::{lint_source, lint_source_cached, AnalysisCache, LintContext};
use std::time::Instant;

fn median_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let groups = 625usize;
    let per_pred = 8usize;
    let rules = bench::synthetic_rule_base(groups, per_pred);
    let total_rules = rules.len();
    let mut ctx = LintContext::offline();
    ctx.stored_rules = rules;
    ctx.assume_new_heads_queryable = true;

    // The admission deltas: each probe is one fresh rule TELLed
    // against the stored base. Distinct heads so every probe dirties
    // exactly one (new) component, like real successive TELLs.
    let probes: Vec<String> = (0..9)
        .map(|i| format!("probe{i}(X, Y) :- p{groups}(X, Y), in_(X, C), isa(C, \"T{groups}\")."))
        .collect();

    // Prime: the first lint through a fresh cache is a full analysis
    // that populates every component's fingerprint entry.
    let mut cache = AnalysisCache::new();
    let start = Instant::now();
    let prime_diags = lint_source_cached(&probes[0], &ctx, &mut cache);
    let prime_seconds = start.elapsed().as_secs_f64();

    // Incremental: each subsequent TELL re-analyzes only its own dirty
    // component; the stored base is all fingerprint hits.
    let (before_hit, before_rean) = (cache.fingerprint_hits, cache.sccs_reanalyzed);
    let mut times = Vec::new();
    for probe in &probes[1..] {
        let start = Instant::now();
        let diags = lint_source_cached(probe, &ctx, &mut cache);
        times.push(start.elapsed().as_secs_f64());
        assert_eq!(diags.len(), prime_diags.len(), "probes are equivalent");
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let incremental_seconds = times[times.len() / 2];
    let hits = cache.fingerprint_hits - before_hit;
    let reanalyzed = cache.sccs_reanalyzed - before_rean;

    // Full: a fresh cache per lint is, by construction, a from-scratch
    // analysis of base + delta.
    let full_seconds = median_secs(
        || {
            let diags = lint_source(&probes[0], &ctx);
            assert_eq!(diags.len(), prime_diags.len());
        },
        3,
    );

    // Differential spot check: warm and cold agree diagnostic-for-
    // diagnostic on the same delta (the proptest in `tests/` does this
    // under random churn; here it guards the numbers below).
    assert_eq!(
        lint_source_cached(&probes[0], &ctx, &mut cache),
        lint_source(&probes[0], &ctx),
        "incremental and from-scratch lint must agree"
    );

    let speedup = full_seconds / incremental_seconds;
    println!(
        "lint({total_rules} stored rules, {groups} components): full {full_seconds:.4}s, \
         incremental {incremental_seconds:.6}s/TELL, speedup {speedup:.0}x \
         (prime {prime_seconds:.4}s; per incremental TELL: \
         {} hit(s) / {} reanalysis(es))",
        hits / (probes.len() as u64 - 1),
        reanalyzed / (probes.len() as u64 - 1),
    );
    assert!(
        speedup >= 10.0,
        "ISSUE 10 acceptance: incremental lint must be >= 10x faster \
         than full re-lint, got {speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"lint\",\n  \"issue\": 10,\n  \
         \"note\": \"full = lint of one TELLed rule against the stored base through a fresh AnalysisCache (from-scratch parse + per-SCC analysis); incremental = same delta through the long-lived cache, where unchanged components are fingerprint hits and only the dirty component is re-analyzed\",\n  \
         \"stored_rules\": {total_rules},\n  \"components\": {groups},\n  \
         \"prime_seconds\": {prime_seconds:.6},\n  \
         \"full_seconds\": {full_seconds:.6},\n  \
         \"incremental_seconds\": {incremental_seconds:.9},\n  \
         \"speedup\": {speedup:.1},\n  \
         \"fingerprint_hits_per_tell\": {},\n  \
         \"sccs_reanalyzed_per_tell\": {}\n}}\n",
        hits / (probes.len() as u64 - 1),
        reanalyzed / (probes.len() as u64 - 1),
    );
    std::fs::write("BENCH_lint.json", &json).expect("write BENCH_lint.json");
    println!("wrote BENCH_lint.json");
}
