//! Writes `BENCH_metrics.json`: instrumentation overhead of the `obs`
//! subsystem on the 4-thread `BENCH_server` workload (ISSUE 3
//! acceptance: overhead must stay under 5%).
//!
//! The workload is the same unit of design work as `server_snapshot`:
//! a 10 ms simulated tool wait plus a snapshot ASK over a preloaded
//! objectbase, with a background TELL writer keeping the single-writer
//! path busy. Each mode (metrics recording disabled via
//! `obs::set_enabled(false)`, then enabled) runs against a fresh
//! server; we take the best of two trials per mode so a scheduler
//! hiccup cannot masquerade as instrumentation cost. At the end the
//! enabled server is scraped through `Client::metrics` to prove the
//! counters actually moved during the measured run.
//!
//! Run with `cargo run --release -p bench --bin metrics_snapshot`.

use gkbms::Gkbms;
use server::{Client, Config, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 150;
const INSTANCES: usize = 100;
const TOOL_WAIT_MS: u64 = 10;
const TRIALS: usize = 2;

fn preload() -> Gkbms {
    let mut g = Gkbms::new().expect("fresh gkbms");
    g.tell_src("TELL Paper end").expect("class");
    let mut src = String::new();
    for i in 0..INSTANCES {
        src.push_str(&format!("TELL paper{i} in Paper end\n"));
    }
    g.tell_src(&src).expect("instances");
    g
}

/// One 4-thread round against `addr`; returns aggregate req/s.
fn run_round(addr: std::net::SocketAddr) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("writer connect");
            let (s, _) = c.hello().expect("writer hello");
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                c.tell(s, &format!("TELL w{n} in Paper end"))
                    .expect("writer tell");
                n += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            c.bye(s).expect("writer bye");
        })
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let (s, _) = c.hello().expect("hello");
                for _ in 0..REQUESTS_PER_THREAD {
                    c.sleep(s, TOOL_WAIT_MS).expect("tool wait");
                    let reply = c.ask(s, "p", "Paper", "true").expect("ask");
                    assert!(reply.answers.len() >= INSTANCES, "snapshot sees preload");
                }
                c.bye(s).expect("bye");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    (THREADS * REQUESTS_PER_THREAD) as f64 / wall
}

/// Best-of-`TRIALS` req/s with metrics recording on or off.
fn measure(enabled: bool) -> f64 {
    obs::set_enabled(enabled);
    let mut best = 0.0f64;
    for _ in 0..TRIALS {
        let server = Server::bind("127.0.0.1:0", preload(), Config::default()).expect("bind");
        let rps = run_round(server.local_addr());
        server.shutdown().expect("shutdown");
        best = best.max(rps);
    }
    best
}

fn scrape_requests_total() -> f64 {
    let server = Server::bind("127.0.0.1:0", preload(), Config::default()).expect("bind");
    let addr = server.local_addr();
    run_round(addr);
    let mut c = Client::connect(addr).expect("scrape connect");
    let text = c.metrics().expect("metrics scrape");
    server.shutdown().expect("shutdown");
    text.lines()
        .filter(|l| l.starts_with("gkbms_requests_total{"))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

fn main() {
    let rps_off = measure(false);
    let rps_on = measure(true);
    let overhead_pct = ((rps_off - rps_on) / rps_off * 100.0).max(0.0);
    println!(
        "{THREADS} client threads: {rps_off:.0} req/s uninstrumented, \
         {rps_on:.0} req/s instrumented ({overhead_pct:.2}% overhead)"
    );

    // Prove the instrumentation is live, not just cheap.
    obs::set_enabled(true);
    let requests_total = scrape_requests_total();
    assert!(
        requests_total > 0.0,
        "enabled run must move gkbms_requests_total, scraped {requests_total}"
    );
    println!("scraped gkbms_requests_total across ops: {requests_total:.0}");

    assert!(
        overhead_pct <= 5.0,
        "instrumentation overhead {overhead_pct:.2}% exceeds the 5% budget"
    );

    let json = format!(
        "{{\n  \"bench\": \"metrics_overhead\",\n  \"issue\": 3,\n  \
         \"note\": \"BENCH_server 4-thread workload ({TOOL_WAIT_MS} ms tool wait + snapshot ASK over {INSTANCES} Paper instances, background TELL writer) run with obs recording disabled vs enabled; best of {TRIALS} trials per mode; budget is 5% overhead\",\n  \
         \"client_threads\": {THREADS},\n  \"requests_per_thread\": {REQUESTS_PER_THREAD},\n  \
         \"req_per_sec_uninstrumented\": {rps_off:.1},\n  \
         \"req_per_sec_instrumented\": {rps_on:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"budget_pct\": 5.0\n}}\n"
    );
    std::fs::write("BENCH_metrics.json", &json).expect("write BENCH_metrics.json");
    println!("wrote BENCH_metrics.json");
}
