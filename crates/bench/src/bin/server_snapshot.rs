//! Writes `BENCH_server.json`: throughput and latency of the GKBMS
//! service under concurrent client sessions (ISSUE 2 acceptance,
//! extended by ISSUE 6 with 16-thread rounds and a read-only /
//! concurrent-writer split).
//!
//! Each client thread opens its own session (pinning a belief-time
//! watermark and an immutable store version) and repeatedly performs
//! one unit of design work: a simulated external-tool invocation (the
//! server's diagnostic sleep op — it occupies an admission slot but
//! not the KB lock, exactly like a decision waiting on a design tool)
//! followed by a snapshot ASK against a preloaded objectbase. In the
//! `concurrent_writer` variant a background writer keeps TELLing, so
//! the read path is exercised against live MVCC churn: ASKs are served
//! from each session's pinned version and never touch the writer lock,
//! so aggregate req/s should scale with client threads in *both*
//! variants — the comparison between them is the number this snapshot
//! exists to demonstrate.
//!
//! Run with `cargo run --release -p bench --bin server_snapshot`.

use gkbms::Gkbms;
use server::{Client, Config, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const REQUESTS_PER_THREAD: usize = 150;
const INSTANCES: usize = 100;
const TOOL_WAIT_MS: u64 = 10;
const THREAD_ROUNDS: [usize; 4] = [1, 4, 8, 16];

fn preload() -> Gkbms {
    let mut g = Gkbms::new().expect("fresh gkbms");
    g.tell_src("TELL Paper end").expect("class");
    let mut src = String::new();
    for i in 0..INSTANCES {
        src.push_str(&format!("TELL paper{i} in Paper end\n"));
    }
    g.tell_src(&src).expect("instances");
    g
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_round(threads: usize, with_writer: bool) -> (f64, f64, f64) {
    // A fresh server per round: otherwise the background writer's
    // TELLs accumulate across rounds and later rounds quietly ask over
    // a much larger objectbase, confounding the scaling numbers.
    let server = Server::bind("127.0.0.1:0", preload(), Config::default()).expect("bind");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    // In the concurrent-writer variant, a background writer publishes a
    // fresh store version every couple of milliseconds, so readers run
    // against real MVCC churn rather than an idle chain.
    let writer = with_writer.then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("writer connect");
            let (s, _) = c.hello().expect("writer hello");
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                c.tell(s, &format!("TELL w{threads}_{n} in Paper end"))
                    .expect("writer tell");
                n += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            c.bye(s).expect("writer bye");
        })
    });

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let (s, _) = c.hello().expect("hello");
                let mut lat = Vec::with_capacity(REQUESTS_PER_THREAD);
                for _ in 0..REQUESTS_PER_THREAD {
                    let t0 = Instant::now();
                    c.sleep(s, TOOL_WAIT_MS).expect("tool wait");
                    let reply = c.ask(s, "p", "Paper", "true").expect("ask");
                    lat.push(t0.elapsed().as_secs_f64());
                    assert!(reply.answers.len() >= INSTANCES, "snapshot sees preload");
                }
                c.bye(s).expect("bye");
                lat
            })
        })
        .collect();
    let mut lat: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(w) = writer {
        w.join().expect("writer thread");
    }
    server.shutdown().expect("shutdown");

    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let total = threads * REQUESTS_PER_THREAD;
    (
        total as f64 / wall,
        percentile(&lat, 0.50) * 1e3,
        percentile(&lat, 0.99) * 1e3,
    )
}

fn run_variant(name: &str, with_writer: bool) -> String {
    println!("variant: {name}");
    let mut entries = Vec::new();
    let mut base_rps = 0.0f64;
    for threads in THREAD_ROUNDS {
        let (rps, p50_ms, p99_ms) = run_round(threads, with_writer);
        if threads == 1 {
            base_rps = rps;
        }
        let scaling = rps / base_rps;
        println!(
            "  {threads} client thread(s): {rps:.0} req/s ({scaling:.2}x vs 1 thread), \
             p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms"
        );
        entries.push(format!(
            "        {{\n          \"client_threads\": {threads},\n          \
             \"requests_per_thread\": {REQUESTS_PER_THREAD},\n          \
             \"req_per_sec\": {rps:.1},\n          \"scaling_vs_1_thread\": {scaling:.2},\n          \
             \"p50_ms\": {p50_ms:.3},\n          \"p99_ms\": {p99_ms:.3}\n        }}"
        ));
    }
    format!(
        "    {{\n      \"name\": \"{name}\",\n      \"rounds\": [\n{}\n      ]\n    }}",
        entries.join(",\n")
    )
}

fn main() {
    let variants = [
        run_variant("read_only", false),
        run_variant("concurrent_writer", true),
    ];

    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"issue\": 6,\n  \
         \"note\": \"one request = {TOOL_WAIT_MS} ms simulated tool wait + snapshot ASK over {INSTANCES}+ Paper instances; ASKs are served from the session's pinned MVCC store version at its watermark, never taking the writer lock, so req/s scales with client threads with and without a background TELL writer publishing versions\",\n  \
         \"variants\": [\n{}\n  ]\n}}\n",
        variants.join(",\n")
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
