//! Writes `BENCH_server.json`: throughput and latency of the GKBMS
//! service under concurrent client sessions (ISSUE 2 acceptance).
//!
//! Each client thread opens its own session (pinning a belief-time
//! watermark) and repeatedly performs one unit of design work: a
//! simulated external-tool invocation (the server's diagnostic sleep
//! op — it occupies an admission slot but not the KB lock, exactly
//! like a decision waiting on a design tool) followed by a snapshot
//! ASK against a preloaded objectbase. A background writer keeps
//! TELLing so the read path is exercised against live snapshot
//! isolation, not an idle lock. Because tool waits overlap across
//! sessions while ASK evaluation serializes on the CPU, aggregate
//! req/s grows with client threads — the number this snapshot exists
//! to demonstrate.
//!
//! Run with `cargo run --release -p bench --bin server_snapshot`.

use gkbms::Gkbms;
use server::{Client, Config, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const REQUESTS_PER_THREAD: usize = 150;
const INSTANCES: usize = 100;
const TOOL_WAIT_MS: u64 = 10;

fn preload() -> Gkbms {
    let mut g = Gkbms::new().expect("fresh gkbms");
    g.tell_src("TELL Paper end").expect("class");
    let mut src = String::new();
    for i in 0..INSTANCES {
        src.push_str(&format!("TELL paper{i} in Paper end\n"));
    }
    g.tell_src(&src).expect("instances");
    g
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_round(addr: std::net::SocketAddr, threads: usize) -> (f64, f64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    // A background writer makes readers contend with real TELL traffic.
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("writer connect");
            let (s, _) = c.hello().expect("writer hello");
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                c.tell(s, &format!("TELL w{threads}_{n} in Paper end"))
                    .expect("writer tell");
                n += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            c.bye(s).expect("writer bye");
        })
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let (s, _) = c.hello().expect("hello");
                let mut lat = Vec::with_capacity(REQUESTS_PER_THREAD);
                for _ in 0..REQUESTS_PER_THREAD {
                    let t0 = Instant::now();
                    c.sleep(s, TOOL_WAIT_MS).expect("tool wait");
                    let reply = c.ask(s, "p", "Paper", "true").expect("ask");
                    lat.push(t0.elapsed().as_secs_f64());
                    assert!(reply.answers.len() >= INSTANCES, "snapshot sees preload");
                }
                c.bye(s).expect("bye");
                lat
            })
        })
        .collect();
    let mut lat: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");

    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let total = threads * REQUESTS_PER_THREAD;
    (
        total as f64 / wall,
        percentile(&lat, 0.50) * 1e3,
        percentile(&lat, 0.99) * 1e3,
    )
}

fn main() {
    let server = Server::bind("127.0.0.1:0", preload(), Config::default()).expect("bind");
    let addr = server.local_addr();

    let mut entries = Vec::new();
    let mut base_rps = 0.0f64;
    for threads in [1usize, 4, 8] {
        let (rps, p50_ms, p99_ms) = run_round(addr, threads);
        if threads == 1 {
            base_rps = rps;
        }
        let scaling = rps / base_rps;
        println!(
            "{threads} client thread(s): {rps:.0} req/s ({scaling:.2}x vs 1 thread), \
             p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms"
        );
        entries.push(format!(
            "    {{\n      \"client_threads\": {threads},\n      \
             \"requests_per_thread\": {REQUESTS_PER_THREAD},\n      \
             \"req_per_sec\": {rps:.1},\n      \"scaling_vs_1_thread\": {scaling:.2},\n      \
             \"p50_ms\": {p50_ms:.3},\n      \"p99_ms\": {p99_ms:.3}\n    }}"
        ));
    }
    server.shutdown().expect("shutdown");

    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"issue\": 2,\n  \
         \"note\": \"one request = {TOOL_WAIT_MS} ms simulated tool wait + snapshot ASK over {INSTANCES} Paper instances, concurrent with a background TELL writer; tool waits overlap across sessions (single-writer/multi-reader, belief-time snapshot isolation), so req/s scales with client threads\",\n  \
         \"rounds\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
