//! Writes `BENCH_durability.json`: write throughput of the journaled
//! GKBMS service under the three fsync policies (ISSUE 4 acceptance).
//!
//! Each round binds a server over a fresh journal directory and lets N
//! concurrent client threads TELL design objects. `always` fsyncs every
//! op under the write lock (the naive fully-durable baseline); `group`
//! batches one leader fsync across every op appended while the previous
//! fsync ran (group commit — same per-op durability guarantee at ack
//! time); `never` leaves durability to checkpoints (the no-fsync upper
//! bound). The headline number is `group_vs_always`: how much write
//! throughput group commit recovers while still acknowledging only
//! durable mutations.
//!
//! Every round ends with a `Gkbms::recover` of the journal directory,
//! asserting that all acknowledged ops actually survived and recording
//! the replay rate.
//!
//! Run with `cargo run --release -p bench --bin durability_snapshot`.

use gkbms::{FsyncPolicy, Gkbms};
use server::{Client, Config, Server};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const OPS_PER_WRITER: usize = 250;

fn journal_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cb-bench-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

struct Round {
    ops_per_sec: f64,
    replayed_ops: u64,
    replay_secs: f64,
}

fn run_round(policy: FsyncPolicy, writers: usize, tag: &str) -> Round {
    let dir = journal_dir(tag);
    let (mut g, _) = Gkbms::recover(&dir).expect("fresh journal");
    g.tell_src("TELL Paper end").expect("schema");
    let cfg = Config {
        fsync: policy,
        ..Config::default()
    };
    let server = Server::bind("127.0.0.1:0", g, cfg).expect("bind");
    let addr = server.local_addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let (s, _) = c.hello().expect("hello");
                for i in 0..OPS_PER_WRITER {
                    c.tell(s, &format!("TELL w{w}_{i} in Paper end"))
                        .expect("tell");
                }
                c.bye(s).expect("bye");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let wall = start.elapsed().as_secs_f64();
    server.shutdown().expect("shutdown");

    // Validity: everything acknowledged must be recoverable from disk.
    let t0 = Instant::now();
    let (g, report) = Gkbms::recover(&dir).expect("recover");
    let replay_secs = t0.elapsed().as_secs_f64();
    for w in 0..writers {
        for i in 0..OPS_PER_WRITER {
            assert!(
                g.kb().lookup(&format!("w{w}_{i}")).is_some(),
                "acknowledged TELL w{w}_{i} missing after recovery ({policy})"
            );
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");

    Round {
        ops_per_sec: (writers * OPS_PER_WRITER) as f64 / wall,
        replayed_ops: report.replayed_ops,
        replay_secs,
    }
}

/// Median of three rounds: fsync latency on a shared host is noisy
/// enough that single runs misrank the policies.
fn median_round(policy: FsyncPolicy, writers: usize, tag: &str) -> Round {
    let mut rounds: Vec<Round> = (0..3)
        .map(|rep| run_round(policy, writers, &format!("{tag}-{rep}")))
        .collect();
    rounds.sort_by(|a, b| a.ops_per_sec.partial_cmp(&b.ops_per_sec).expect("finite"));
    rounds.swap_remove(1)
}

fn main() {
    let mut entries = Vec::new();
    for writers in [1usize, 4, 8, 16] {
        let always = median_round(FsyncPolicy::Always, writers, &format!("always-{writers}"));
        let group = median_round(
            FsyncPolicy::Group(Duration::ZERO),
            writers,
            &format!("group-{writers}"),
        );
        let never = median_round(FsyncPolicy::Never, writers, &format!("never-{writers}"));
        let ratio = group.ops_per_sec / always.ops_per_sec;
        let replay_rate = group.replayed_ops as f64 / group.replay_secs;
        println!(
            "{writers} writer(s): always {:.0} op/s, group {:.0} op/s ({ratio:.2}x), \
             never {:.0} op/s; recovery replayed {} ops at {replay_rate:.0} op/s",
            always.ops_per_sec, group.ops_per_sec, never.ops_per_sec, group.replayed_ops
        );
        entries.push(format!(
            "    {{\n      \"writers\": {writers},\n      \
             \"ops_per_writer\": {OPS_PER_WRITER},\n      \
             \"fsync_always_ops_per_sec\": {:.1},\n      \
             \"fsync_group_ops_per_sec\": {:.1},\n      \
             \"fsync_never_ops_per_sec\": {:.1},\n      \
             \"group_vs_always\": {ratio:.2},\n      \
             \"recovery_replayed_ops\": {},\n      \
             \"recovery_replay_ops_per_sec\": {replay_rate:.0}\n    }}",
            always.ops_per_sec, group.ops_per_sec, never.ops_per_sec, group.replayed_ops
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"durability\",\n  \"issue\": 4,\n  \
         \"note\": \"concurrent client threads TELLing through the journaled server; \
         'always' fsyncs each op under the write lock, 'group' batches one leader fsync \
         across concurrent commits (same ack-time durability), 'never' defers to \
         checkpoints; each cell is the median of 3 rounds, and every round is verified by \
         recovering the journal and checking all acknowledged ops survived; with strictly \
         one outstanding op per synchronous writer, group commit can batch at most W ops \
         per fsync, so group_vs_always is structurally capped near the writer count\",\n  \
         \"rounds\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("wrote BENCH_durability.json");
}
