//! Scenario-fleet smoke driver (ISSUE 9, CI `scenario-fleet` job).
//!
//! Generates a seeded synthetic design history into a *journaled*
//! GKBMS, then pushes the two workloads the fleet exists to exercise —
//! selective backtracking with decision replay, and the 3-D history
//! navigation sweep — and verifies along the way:
//!
//! - same-seed determinism: two independent generations of the same
//!   config are operation-for-operation identical;
//! - the observability counters the generator and drivers bump are
//!   nonzero afterwards (the CI job re-asserts them over the wire via
//!   `\metrics` after recovering the journal under `cbshell --listen`);
//! - the journal directory recovers to the driven state, so a server
//!   can serve recall queries against the corpus.
//!
//! Run with `cargo run --release -p bench --bin scenario_fleet -- \
//! <journal-dir> [seed] [decisions]`. Exits nonzero on any violation.

use gkbms::synth::{self, SynthConfig, SynthRng};
use gkbms::Gkbms;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args.next().unwrap_or_else(|| "scenario-fleet-kb".into());
    let seed: u64 = args.next().map_or(42, |s| s.parse().expect("seed"));
    let decisions: usize = args.next().map_or(250, |s| s.parse().expect("decisions"));
    let cfg = SynthConfig {
        seed,
        decisions,
        retraction_rate: 0.05,
        ..SynthConfig::default()
    };

    // Same-seed determinism, checked on throwaway in-memory instances
    // before anything touches the journal.
    let mut a = Gkbms::new().expect("gkbms");
    let mut b = Gkbms::new().expect("gkbms");
    let ha = synth::generate_into(&mut a, &cfg).expect("generate");
    let hb = synth::generate_into(&mut b, &cfg).expect("generate");
    assert_eq!(ha, hb, "same-seed generations must be identical");
    assert_eq!(ha.fingerprint(), hb.fingerprint());
    println!(
        "determinism: seed {seed} -> fingerprint {:016x}, {} ops",
        ha.fingerprint(),
        ha.ops.len()
    );

    // The journaled corpus the server job recovers from.
    let (mut g, _) = Gkbms::recover(&dir).expect("recover journal dir");
    let history = synth::generate_into(&mut g, &cfg).expect("generate into journal");
    assert_eq!(history, ha, "journaled generation diverged");

    let mut rng = SynthRng::new(seed ^ 0x5eed);
    let back = synth::drive_backtracking(&mut g, &mut rng, 5).expect("backtracking");
    println!(
        "backtracking: {} retracted ({} objects out), {} replayed ({} objects back)",
        back.retracted, back.objects_taken_out, back.replayed, back.objects_recreated
    );
    assert!(back.retracted > 0, "fleet must exercise retraction");

    let nav = synth::sweep_navigation(&g, &mut rng, 8).expect("navigation");
    println!(
        "navigation: {} status rows, {} process rows, {} causal hops, \
         {} version objects, {} history events",
        nav.status_rows, nav.process_rows, nav.causal_hops, nav.version_objects, nav.history_events
    );
    assert!(nav.status_rows > 0 && nav.process_rows > 0);
    assert!(nav.history_events > 0, "sweep must walk object histories");

    // One recall probe in-process; the CI job repeats it over the wire.
    let hits = g.recall_similar("syn0", 5).expect("recall");
    assert!(
        !hits.is_empty(),
        "a {decisions}-decision corpus has precedents"
    );
    println!(
        "recall syn0: {} hits, best {:.3}",
        hits.len(),
        hits[0].score
    );

    // The counters the `\metrics` scrape asserts on.
    for name in [
        "gkbms_synth_decisions_total",
        "gkbms_synth_retractions_total",
        "gkbms_synth_backtrack_rounds_total",
        "gkbms_synth_nav_sweeps_total",
        "gkbms_recall_queries_total",
    ] {
        let v = obs::registry().counter_value(name).unwrap_or(0);
        println!("counter {name} = {v}");
        assert!(v > 0, "{name} must be nonzero after the fleet run");
    }

    // The journal must recover to the driven state.
    drop(g);
    let (recovered, report) = Gkbms::recover(&dir).expect("re-recover");
    assert!(
        recovered.records().len() > decisions / 2,
        "recovered corpus lost its decisions"
    );
    println!(
        "recovered: {} decision records, {} current objects ({} WAL ops replayed)",
        recovered.records().len(),
        recovered.current_objects().len(),
        report.replayed_ops
    );
    println!("scenario fleet ok");
}
