//! The §2.1 support scenario as a reusable driver.
//!
//! Reproduces, step by step, the paper's worked example: browsing the
//! conceptual design (fig 2-1), mapping the Invitation branch with
//! *move-down* (fig 2-2), normalizing the set-valued `receivers`
//! attribute and substituting associative keys (fig 2-3), exposing the
//! inconsistency when `Minutes` is mapped, and selectively
//! backtracking the key decision (fig 2-4).
//!
//! The TaxisDL design and the DBPL module are the *sources outside the
//! GKB* (fig 2-5); the GKBMS records tokens, decisions and
//! dependencies about them.

use crate::decisions::{DecisionClass, DecisionDimension, Discharge, ToolSpec};
use crate::error::{GkbmsError, GkbmsResult};
use crate::metamodel::kernel;
use crate::system::{DecisionRequest, Gkbms};
use langs::dbpl::{ConsKind, DbplModule, Decl};
use langs::keys::{check_union_key_conflicts, substitute_key, KeyConflict};
use langs::mapping::{MapEdge, MappingStrategy, MoveDown};
use langs::normalize::{normalize, NormalizeNames};
use langs::taxisdl::{document_model, TdlModel};
use modelbase::display::textdag::{self, Bounds};

/// Output of one scenario step: a figure-like textual report.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Which figure the step reproduces.
    pub figure: &'static str,
    /// The rendered report.
    pub text: String,
}

/// The scenario state: GKBMS + the external sources.
pub struct Scenario {
    /// The global KBMS.
    pub gkbms: Gkbms,
    /// The TaxisDL conceptual design (source, outside the GKB).
    pub tdl: TdlModel,
    /// The DBPL module under construction (source, outside the GKB).
    pub module: DbplModule,
    /// Full-copy snapshots per decision, for source-level restore
    /// (contrast object for bench E-4).
    snapshots: Vec<(String, DbplModule)>,
}

const DEV: &str = "developer";

impl Scenario {
    /// Sets up the GKBMS with the scenario's decision classes, tools
    /// and the TaxisDL design objects.
    pub fn setup() -> GkbmsResult<Self> {
        let mut g = Gkbms::new()?;
        // Decision classes (fig 2-1's menu + fig 3-3's middle layer).
        g.define_decision_class(
            DecisionClass::new("DBPL_MappingDec", DecisionDimension::Mapping)
                .from_classes(&[kernel::TDL_ENTITY_CLASS])
                .to_classes(&[
                    kernel::DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                    kernel::DBPL_TRANSACTION,
                ]),
        )?;
        g.define_decision_class(
            DecisionClass::new("DecMoveDown", DecisionDimension::Mapping)
                .from_classes(&[kernel::TDL_ENTITY_CLASS])
                .to_classes(&[
                    kernel::DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                ])
                .precondition("x in TDL_EntityClass")
                .obligation("complete-mapping", "every selected entity class is mapped")
                .specializing("DBPL_MappingDec"),
        )?;
        g.define_decision_class(
            DecisionClass::new("DecDistribute", DecisionDimension::Mapping)
                .from_classes(&[kernel::TDL_ENTITY_CLASS])
                .to_classes(&[
                    kernel::DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                ])
                .precondition("x in TDL_EntityClass")
                .obligation("complete-mapping", "every selected entity class is mapped")
                .specializing("DBPL_MappingDec"),
        )?;
        g.define_decision_class(
            DecisionClass::new("DecNormalize", DecisionDimension::Refinement)
                .from_classes(&[kernel::DBPL_REL])
                .to_classes(&[
                    kernel::NORMALIZED_DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                ])
                .obligation("normalized", "outputs are 1NF relations with correct keys"),
        )?;
        g.define_decision_class(
            DecisionClass::new("DecKeySubst", DecisionDimension::Choice)
                .from_classes(&[kernel::DBPL_REL])
                .to_classes(&[
                    kernel::DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                ])
                .obligation(
                    "keys-unique",
                    "the chosen key identifies objects across the whole hierarchy",
                ),
        )?;
        // Tools.
        g.register_tool(
            ToolSpec::new("TDL-DBPL-Mapper", true)
                .executes("DecMoveDown")
                .executes("DecDistribute")
                .guarantees("complete-mapping"),
        )?;
        g.register_tool(
            ToolSpec::new("NormalizerTool", true)
                .executes("DecNormalize")
                .guarantees("normalized"),
        )?;
        g.register_tool(ToolSpec::new("DBPLEditor", false).executes("DBPL_MappingDec"))?;
        g.register_tool(ToolSpec::new("KeyEditor", false).executes("DecKeySubst"))?;

        // The requirements layer: the CML world/system model the design
        // was derived from (fig 1-1's top band), registered as a
        // Requirements-level design object.
        g.register_object("MeetingSystemModel", kernel::CML_CLASS, "world.cml#Meeting")?;
        // The conceptual design, registered as design objects.
        let tdl = document_model();
        for e in &tdl.entities {
            g.register_object(
                &e.name,
                kernel::TDL_ENTITY_CLASS,
                &format!("design.tdl#{}", e.name),
            )?;
        }
        for t in &tdl.transactions {
            g.register_object(
                &t.name,
                kernel::TDL_TRANSACTION,
                &format!("design.tdl#{}", t.name),
            )?;
        }
        Ok(Scenario {
            gkbms: g,
            tdl,
            module: DbplModule::new("DocumentDB"),
            snapshots: Vec::new(),
        })
    }

    /// **Fig 2-1**: browse the unmapped design objects, focus on the
    /// Paper IsA hierarchy, and show the menu of applicable decision
    /// classes and tools for `Invitation`.
    pub fn step1_browse(&self) -> GkbmsResult<StepReport> {
        let tdl = &self.tdl;
        let tree = textdag::render("Paper", Bounds { depth: 3, width: 8 }, |name| {
            let mut kids: Vec<String> = tdl
                .children(name)
                .into_iter()
                .map(|e| e.name.clone())
                .collect();
            kids.sort();
            kids
        });
        let mapped: Vec<&str> = self.module.decls.iter().map(|d| d.name()).collect();
        let unmapped: Vec<String> = tdl
            .entities
            .iter()
            .filter(|e| !mapped.contains(&langs::mapping::relation_name(&e.name).as_str()))
            .map(|e| e.name.clone())
            .collect();
        let menu = self.gkbms.applicable_decisions("Invitation")?;
        let mut text = String::from("— design object browser (focus: Paper IsA hierarchy) —\n");
        text.push_str(&tree);
        text.push_str(&format!("unmapped objects: {}\n", unmapped.join(", ")));
        text.push_str("menu for `Invitation`:\n");
        for (dc, tools) in &menu {
            text.push_str(&format!("  {dc}  (tools: {})\n", tools.join(", ")));
        }
        Ok(StepReport {
            figure: "2-1",
            text,
        })
    }

    fn snapshot(&mut self, label: &str) {
        self.snapshots
            .push((label.to_string(), self.module.clone()));
    }

    fn restore(&mut self, label: &str) -> GkbmsResult<()> {
        let at = self
            .snapshots
            .iter()
            .rposition(|(l, _)| l == label)
            .ok_or_else(|| GkbmsError::Unknown(format!("snapshot `{label}`")))?;
        self.module = self.snapshots[at].1.clone();
        Ok(())
    }

    /// **Fig 2-2**: the developer decides for *move-down* on the
    /// Invitation branch ("the system contains only invitations").
    pub fn step2_map_invitations(&mut self) -> GkbmsResult<StepReport> {
        self.snapshot("before-map-invitations");
        // The sub-hierarchy considered so far: Paper + Invitation.
        let sub = TdlModel {
            entities: self
                .tdl
                .entities
                .iter()
                .filter(|e| e.name != "Minutes")
                .cloned()
                .collect(),
            transactions: Vec::new(),
        };
        let outcome = MoveDown
            .map_hierarchy(&sub, "Paper")
            .map_err(|e| GkbmsError::Precondition(e.to_string()))?;
        for d in &outcome.decls {
            self.module
                .add(d.clone())
                .map_err(|e| GkbmsError::Precondition(e.to_string()))?;
        }
        let mut req = DecisionRequest::new("DecMoveDown", "mapInvitations", DEV)
            .with_tool("TDL-DBPL-Mapper")
            .input("Paper")
            .input("Invitation");
        for MapEdge { to, .. } in &outcome.trace {
            let class = match self.module.decl(to) {
                Some(Decl::Relation(_)) => kernel::DBPL_REL,
                Some(Decl::Selector(_)) => kernel::DBPL_SELECTOR,
                Some(Decl::Constructor(_)) => kernel::DBPL_CONSTRUCTOR,
                _ => kernel::DBPL_REL,
            };
            req = req.output(to, class);
        }
        self.gkbms.execute(req)?;
        let graph = self.gkbms.dependency_graph();
        let mut text = String::from("— dependencies after move-down mapping —\n");
        text.push_str(&graph.render());
        text.push_str("— code frame: InvitationRel —\n");
        text.push_str(
            &self
                .module
                .code_frame("InvitationRel")
                .map_err(|e| GkbmsError::Precondition(e.to_string()))?,
        );
        text.push('\n');
        Ok(StepReport {
            figure: "2-2",
            text,
        })
    }

    /// **Fig 2-3 (first half)**: normalize the set-valued `receivers`.
    pub fn step3_normalize(&mut self) -> GkbmsResult<StepReport> {
        self.snapshot("before-normalize");
        let names = NormalizeNames {
            base: "InvitationRel2".into(),
            member: "InvReceivRel".into(),
            member_column: "receiver".into(),
            selector: "InvitationsPaperIC".into(),
            constructor: "ConsInvitation".into(),
        };
        let outcome = normalize(&mut self.module, "InvitationRel", "receivers", names)
            .map_err(|e| GkbmsError::Precondition(e.to_string()))?;
        let mut req = DecisionRequest::new("DecNormalize", "normalizeInvitations", DEV)
            .with_tool("NormalizerTool")
            .input("InvitationRel")
            .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
            .output("InvReceivRel", kernel::NORMALIZED_DBPL_REL)
            .output("InvitationsPaperIC", kernel::DBPL_SELECTOR)
            .output("ConsInvitation", kernel::DBPL_CONSTRUCTOR);
        req.discharges.push(Discharge::Formal {
            obligation: "normalized".into(),
        });
        // NormalizerTool guarantees `normalized`; the discharge above is
        // redundant but harmless documentation.
        self.gkbms.execute(req)?;
        let mut text = String::from("— dependencies after normalization —\n");
        text.push_str(&self.gkbms.dependency_graph().render());
        for frame in [
            "InvitationRel2",
            "InvReceivRel",
            "InvitationsPaperIC",
            "ConsInvitation",
        ] {
            text.push_str(&format!("— code frame: {frame} —\n"));
            text.push_str(
                &self
                    .module
                    .code_frame(frame)
                    .map_err(|e| GkbmsError::Precondition(e.to_string()))?,
            );
            text.push('\n');
        }
        let _ = outcome;
        Ok(StepReport {
            figure: "2-3a",
            text,
        })
    }

    /// **Fig 2-3 (second half)**: the manual key-substitution decision
    /// — "make the system more user-friendly" by replacing `paperkey`
    /// with `(date, author)`. Manual execution creates a proof
    /// obligation, discharged by the developer's signature.
    pub fn step4_substitute_keys(&mut self) -> GkbmsResult<StepReport> {
        self.snapshot("before-key-subst");
        let change = substitute_key(&mut self.module, "InvitationRel2", &["date", "author"])
            .map_err(|e| GkbmsError::Precondition(e.to_string()))?;
        let mut req = DecisionRequest::new("DecKeySubst", "chooseAssociativeKeys", DEV)
            .with_tool("KeyEditor")
            .input("InvitationRel2")
            // The adapted objects are new versions, justified by the
            // choice decision (fig 3-4's alternative implementation).
            .output("InvitationRel2@assoc", kernel::DBPL_REL)
            .discharge(Discharge::Signature {
                obligation: "keys-unique".into(),
                by: DEV.into(),
            });
        for adapted in &change.adapted {
            let class = match self.module.decl(adapted) {
                Some(Decl::Relation(_)) => kernel::DBPL_REL,
                Some(Decl::Selector(_)) => kernel::DBPL_SELECTOR,
                Some(Decl::Constructor(_)) => kernel::DBPL_CONSTRUCTOR,
                Some(Decl::Transaction(_)) => kernel::DBPL_TRANSACTION,
                None => kernel::DBPL_REL,
            };
            req = req.output(&format!("{adapted}@assoc"), class);
        }
        self.gkbms.execute(req)?;
        let mut text =
            String::from("— key substitution (signed: \"keys-unique\", by: developer) —\n");
        text.push_str(&format!(
            "replaced surrogate `{}` by ({})\nadapted: {}\n",
            change.removed_surrogate,
            change.new_key.join(", "),
            change.adapted.join(", ")
        ));
        text.push_str("— code frame: InvitationRel2 —\n");
        text.push_str(
            &self
                .module
                .code_frame("InvitationRel2")
                .map_err(|e| GkbmsError::Precondition(e.to_string()))?,
        );
        text.push('\n');
        Ok(StepReport {
            figure: "2-3b",
            text,
        })
    }

    /// **Fig 2-4 (detection)**: mapping `Minutes` exposes the
    /// candidate-key conflict — "the assumption that Invitations are
    /// the only kind of Papers leads to an inconsistency".
    pub fn step5_map_minutes(&mut self) -> GkbmsResult<(StepReport, Vec<KeyConflict>)> {
        self.snapshot("before-map-minutes");
        self.apply_minutes_mapping()
            .map_err(|e| GkbmsError::Precondition(e.to_string()))?;
        self.gkbms.execute(
            DecisionRequest::new("DecMoveDown", "mapMinutes", DEV)
                .with_tool("TDL-DBPL-Mapper")
                .input("Minutes")
                .output("MinutesRel", kernel::DBPL_REL),
        )?;
        let conflicts = check_union_key_conflicts(&self.module);
        let affected = self.gkbms.consequences_of("InvitationRel2");
        let mut highlighted = vec!["InvitationRel2@assoc".to_string(), "MinutesRel".to_string()];
        highlighted.extend(affected);
        let graph = self.gkbms.dependency_graph_highlighting(&highlighted);
        let mut text = String::from("— mapping Minutes —\n");
        text.push_str(&graph.render());
        for c in &conflicts {
            text.push_str(&format!("INCONSISTENCY: {c}\n"));
        }
        Ok((
            StepReport {
                figure: "2-4 (detection)",
                text,
            },
            conflicts,
        ))
    }

    /// Module-level effect of mapping Minutes: add `MinutesRel` and
    /// widen `ConsPapers` to union both leaf relations.
    fn apply_minutes_mapping(&mut self) -> langs::LangResult<()> {
        let full = MoveDown.map_hierarchy(&self.tdl, "Paper")?;
        for d in full.decls {
            match d.name() {
                "MinutesRel" if self.module.decl("MinutesRel").is_none() => {
                    self.module.add(d)?;
                }
                "ConsPapers" => {
                    let Decl::Constructor(mut c) = d else {
                        continue;
                    };
                    // The invitation leaf is the normalized relation now.
                    c.over = vec!["InvitationRel2".into(), "MinutesRel".into()];
                    c.kind = ConsKind::Union;
                    if self.module.decl("ConsPapers").is_some() {
                        self.module.replace(Decl::Constructor(c))?;
                    } else {
                        self.module.add(Decl::Constructor(c))?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// **Fig 2-4 (resolution)**: selectively backtrack the key
    /// decision; everything else — including the Minutes mapping —
    /// survives. The DBPL sources are restored from the pre-key state
    /// and the Minutes mapping is re-applied to them.
    pub fn step6_backtrack(&mut self) -> GkbmsResult<StepReport> {
        let affected = self.gkbms.retract_decision("chooseAssociativeKeys")?;
        self.restore("before-key-subst")?;
        self.apply_minutes_mapping()
            .map_err(|e| GkbmsError::Precondition(e.to_string()))?;
        let conflicts = check_union_key_conflicts(&self.module);
        let mut text = String::from("— after selective backtracking of chooseAssociativeKeys —\n");
        text.push_str(&format!("objects taken out: {}\n", affected.join(", ")));
        text.push_str(&format!(
            "remaining conflicts: {}\n",
            if conflicts.is_empty() {
                "none".to_string()
            } else {
                conflicts.len().to_string()
            }
        ));
        text.push_str(&self.gkbms.dependency_graph().render());
        text.push_str("— code frame: InvitationRel2 (surrogate key restored) —\n");
        text.push_str(
            &self
                .module
                .code_frame("InvitationRel2")
                .map_err(|e| GkbmsError::Precondition(e.to_string()))?,
        );
        text.push('\n');
        Ok(StepReport {
            figure: "2-4 (resolution)",
            text,
        })
    }

    /// Runs all six steps, returning every report. Used by the example
    /// binary and the end-to-end bench.
    pub fn run_all() -> GkbmsResult<Vec<StepReport>> {
        let mut s = Scenario::setup()?;
        let mut out = vec![s.step1_browse()?];
        out.push(s.step2_map_invitations()?);
        out.push(s.step3_normalize()?);
        out.push(s.step4_substitute_keys()?);
        let (report, conflicts) = s.step5_map_minutes()?;
        out.push(report);
        if !conflicts.is_empty() {
            out.push(s.step6_backtrack()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scenario_runs() {
        let reports = Scenario::run_all().unwrap();
        assert_eq!(reports.len(), 6, "conflict must occur and be resolved");
        let figures: Vec<&str> = reports.iter().map(|r| r.figure).collect();
        assert_eq!(
            figures,
            vec![
                "2-1",
                "2-2",
                "2-3a",
                "2-3b",
                "2-4 (detection)",
                "2-4 (resolution)"
            ]
        );
    }

    #[test]
    fn step1_shows_hierarchy_and_menu() {
        let s = Scenario::setup().unwrap();
        let r = s.step1_browse().unwrap();
        assert!(r.text.contains("Paper"));
        assert!(r.text.contains("|- Invitation"));
        assert!(r.text.contains("`- Minutes"));
        assert!(r.text.contains("DecMoveDown"));
        assert!(r.text.contains("DecDistribute"));
        assert!(r.text.contains("TDL-DBPL-Mapper"));
        assert!(r.text.contains("unmapped objects"));
    }

    #[test]
    fn step2_generates_fig_2_2_objects() {
        let mut s = Scenario::setup().unwrap();
        s.step1_browse().unwrap();
        let r = s.step2_map_invitations().unwrap();
        assert!(r.text.contains("InvitationRel"));
        assert!(r.text.contains("RELATION InvitationRel"));
        assert!(r.text.contains("--to--> InvitationRel"));
        assert!(s.gkbms.is_current("InvitationRel"));
        assert!(s.gkbms.is_current("ConsPapers"));
        assert!(s.module.relation("InvitationRel").is_some());
        // Minutes not yet mapped.
        assert!(s.module.relation("MinutesRel").is_none());
    }

    #[test]
    fn step3_reproduces_fig_2_3_frames() {
        let mut s = Scenario::setup().unwrap();
        s.step2_map_invitations().unwrap();
        let r = s.step3_normalize().unwrap();
        assert!(r.text.contains("RELATION InvitationRel2"));
        assert!(r.text.contains("RELATION InvReceivRel"));
        assert!(r.text.contains("SELECTOR InvitationsPaperIC"));
        assert!(r.text.contains("CONSTRUCTOR ConsInvitation"));
        assert!(s.gkbms.is_effective("normalizeInvitations"));
    }

    #[test]
    fn step4_substitutes_keys_with_signature() {
        let mut s = Scenario::setup().unwrap();
        s.step2_map_invitations().unwrap();
        s.step3_normalize().unwrap();
        let r = s.step4_substitute_keys().unwrap();
        assert!(r.text.contains("date, author"));
        assert!(r.text.contains("KEY date, author"));
        let rec = s.gkbms.record("chooseAssociativeKeys").unwrap();
        assert!(matches!(rec.discharges[0], Discharge::Signature { .. }));
    }

    #[test]
    fn step5_detects_the_inconsistency() {
        let mut s = Scenario::setup().unwrap();
        s.step2_map_invitations().unwrap();
        s.step3_normalize().unwrap();
        s.step4_substitute_keys().unwrap();
        let (r, conflicts) = s.step5_map_minutes().unwrap();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].constructor, "ConsPapers");
        assert!(r.text.contains("INCONSISTENCY"));
        assert!(r.text.contains("*[InvitationRel2@assoc]*"), "highlighted");
    }

    #[test]
    fn step6_restores_consistency_selectively() {
        let mut s = Scenario::setup().unwrap();
        s.step2_map_invitations().unwrap();
        s.step3_normalize().unwrap();
        s.step4_substitute_keys().unwrap();
        let (_, conflicts) = s.step5_map_minutes().unwrap();
        assert!(!conflicts.is_empty());
        let r = s.step6_backtrack().unwrap();
        assert!(r.text.contains("remaining conflicts: none"));
        assert!(r.text.contains("KEY paperkey"), "surrogate restored");
        // Selectivity: the rest of the design survived.
        assert!(s.gkbms.is_current("MinutesRel"));
        assert!(s.gkbms.is_current("InvitationRel2"));
        assert!(!s.gkbms.is_current("InvitationRel2@assoc"));
        assert!(!s.gkbms.is_effective("chooseAssociativeKeys"));
        assert!(s.gkbms.is_effective("mapMinutes"));
        assert!(s.gkbms.is_effective("normalizeInvitations"));
        // And the key decision is replayable knowledge, not erased.
        assert!(s.gkbms.record("chooseAssociativeKeys").is_some());
    }

    #[test]
    fn without_key_decision_no_conflict() {
        // Counterfactual: skipping step 4 avoids the inconsistency.
        let mut s = Scenario::setup().unwrap();
        s.step2_map_invitations().unwrap();
        s.step3_normalize().unwrap();
        let (_, conflicts) = s.step5_map_minutes().unwrap();
        assert!(conflicts.is_empty());
    }
}
