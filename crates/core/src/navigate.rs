//! Navigation in decision histories (§3.3.1).
//!
//! "The GKBMS enables browsing along and arbitrary switching between
//! several dimensions: status-oriented, by browsing requirements,
//! designs, implementations, and their interrelationships;
//! process-oriented, by following mapping and refinement relationships
//! and their causal ordering; temporal, by focusing on system versions
//! and following the history of design objects and design decisions."

use crate::error::{GkbmsError, GkbmsResult};
use crate::system::Gkbms;
use modelbase::display::relational::Table;

impl Gkbms {
    /// **Status-oriented** view: the current objects per life-cycle
    /// level, as a relational display.
    pub fn status_view(&self) -> Table {
        let mut t = Table::new(&["object", "level", "justified by"]);
        for obj in self.current_objects() {
            let level = self.level_of(&obj).unwrap_or_else(|| "-".to_string());
            let justification = self
                .records()
                .iter()
                .find(|r| !r.retracted && r.outputs.contains(&obj))
                .map(|r| r.name.clone())
                .unwrap_or_else(|| "(registered)".to_string());
            t.row(&[&obj, &level, &justification]);
        }
        t
    }

    /// **Process-oriented** view: the effective decisions in causal
    /// order (execution order restricted to effective ones), each with
    /// its dimension, inputs and outputs.
    pub fn process_view(&self) -> Table {
        let mut t = Table::new(&["#", "decision", "dimension", "from", "to", "by"]);
        for (i, r) in self.records().iter().filter(|r| !r.retracted).enumerate() {
            let dim = self
                .classes
                .get(&r.class)
                .map(|dc| dc.dimension.to_string())
                .unwrap_or_else(|| "?".to_string());
            t.row(&[
                &(i + 1).to_string(),
                &r.name,
                &dim,
                &r.inputs.join(", "),
                &r.outputs.join(", "),
                r.tool.as_deref().unwrap_or("(manual)"),
            ]);
        }
        t
    }

    /// The decisions causally upstream of an object: the chain of
    /// justifications back to registered objects.
    pub fn causal_chain(&self, object: &str) -> GkbmsResult<Vec<String>> {
        if self.kb.lookup(object).is_none() {
            return Err(GkbmsError::Unknown(format!("design object `{object}`")));
        }
        let mut chain = Vec::new();
        let mut frontier = vec![object.to_string()];
        while let Some(cur) = frontier.pop() {
            for r in self.records() {
                if r.outputs.contains(&cur) && !chain.contains(&r.name) {
                    chain.push(r.name.clone());
                    frontier.extend(r.inputs.iter().cloned());
                }
            }
        }
        chain.reverse(); // earliest first
        Ok(chain)
    }

    /// **Temporal** view: the design objects believed at belief tick
    /// `t` (a past system version), sorted.
    pub fn objects_at(&self, t: i64) -> Vec<String> {
        let mut out = Vec::new();
        for name in self.object_node.keys() {
            // The object's individual proposition as believed at t: we
            // search all propositions ever created under this name.
            let believed = self.kb.believed_at(t).into_iter().any(|id| {
                self.kb
                    .get(id)
                    .map(|p| p.is_individual() && self.kb.resolve(p.label) == name)
                    .unwrap_or(false)
            });
            if believed {
                out.push(name.clone());
            }
        }
        out.sort();
        out
    }

    /// The history of one design object: `(tick, event)` pairs over
    /// the decision log.
    pub fn object_history(&self, object: &str) -> GkbmsResult<Vec<(i64, String)>> {
        if self.kb.lookup(object).is_none() && !self.object_node.contains_key(object) {
            return Err(GkbmsError::Unknown(format!("design object `{object}`")));
        }
        let mut out = Vec::new();
        for r in self.records() {
            if r.outputs.contains(&object.to_string()) {
                out.push((r.tick, format!("created by {}", r.name)));
                if r.retracted {
                    out.push((r.tick, format!("retracted with {}", r.name)));
                }
            }
            if r.inputs.contains(&object.to_string()) {
                out.push((r.tick, format!("used by {}", r.name)));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::decisions::Discharge;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use crate::system::{DecisionRequest, Gkbms};

    fn history() -> Gkbms {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecNormalize", "normalizeInvitations", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        g
    }

    #[test]
    fn status_view_lists_levels_and_justifications() {
        let g = history();
        let s = g.status_view().render();
        assert!(s.contains("Invitation"));
        assert!(s.contains("(registered)"));
        assert!(s.contains("Implementation"));
        assert!(s.contains("normalizeInvitations"));
    }

    #[test]
    fn process_view_in_causal_order() {
        let g = history();
        let s = g.process_view().render();
        let map_at = s.find("mapInvitations").unwrap();
        let norm_at = s.find("normalizeInvitations").unwrap();
        assert!(map_at < norm_at);
        assert!(s.contains("(manual)"));
        assert!(s.contains("TDL-DBPL-Mapper"));
    }

    #[test]
    fn causal_chain_traces_back() {
        let g = history();
        let chain = g.causal_chain("InvitationRel2").unwrap();
        assert_eq!(chain, vec!["mapInvitations", "normalizeInvitations"]);
        assert!(g.causal_chain("Ghost").is_err());
        assert!(g.causal_chain("Invitation").unwrap().is_empty());
    }

    #[test]
    fn temporal_view_sees_past_versions() {
        let mut g = history();
        let t_before = g.record("normalizeInvitations").unwrap().tick;
        g.retract_decision("normalizeInvitations").unwrap();
        assert!(!g.is_current("InvitationRel2"));
        // At the earlier tick, the object existed.
        let then = g.objects_at(t_before);
        assert!(then.contains(&"InvitationRel2".to_string()));
        let now = g.objects_at(g.kb().now());
        assert!(!now.contains(&"InvitationRel2".to_string()));
        assert!(now.contains(&"InvitationRel".to_string()));
    }

    #[test]
    fn object_history_lists_events() {
        let g = history();
        let h = g.object_history("InvitationRel").unwrap();
        let events: Vec<&str> = h.iter().map(|(_, e)| e.as_str()).collect();
        assert_eq!(
            events,
            vec!["created by mapInvitations", "used by normalizeInvitations"]
        );
        assert!(g.object_history("Ghost").is_err());
    }

    #[test]
    fn arbitrary_switching_between_dimensions() {
        // The same KB answers all three views — "arbitrary switching".
        let g = history();
        assert!(!g.status_view().is_empty());
        assert!(!g.process_view().is_empty());
        assert!(!g.objects_at(g.kb().now()).is_empty());
    }
}
