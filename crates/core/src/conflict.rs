//! Dependency-directed conflict resolution (\[DJ88\], §3.3.3).
//!
//! "The representation of decision structures supports the storage of
//! redundant dependency information as the basis of a reason
//! maintenance system which can contribute to the automatic
//! propagation of the consequences of high-level changes."
//!
//! [`Gkbms::report_conflict`] registers an inconsistency as depending
//! on a set of executed decisions, performs dependency-directed
//! backtracking at *decision granularity* (the abstraction the paper
//! proposes to keep RMS networks small): the most recent culprit
//! decision is retracted with all its consequences, and the decision
//! combination is recorded as a **nogood** so that replaying into the
//! same trap is flagged.

use crate::error::{GkbmsError, GkbmsResult};
use crate::system::Gkbms;

/// The outcome of an automatic conflict resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictResolution {
    /// The description of the inconsistency, as reported.
    pub description: String,
    /// The retracted culprit decision.
    pub culprit: String,
    /// Design objects that went out of belief.
    pub affected: Vec<String>,
    /// The nogood recorded (the conflicting decision set).
    pub nogood: Vec<String>,
}

impl Gkbms {
    /// Reports an inconsistency that holds whenever all of `among` are
    /// effective; retracts the most recent culprit (dependency-directed
    /// backtracking) and records the nogood. Errors if none of the
    /// named decisions is retractable.
    pub fn report_conflict(
        &mut self,
        description: &str,
        among: &[&str],
    ) -> GkbmsResult<ConflictResolution> {
        // Validate and order: the culprit is the most recent effective
        // decision in the set (Doyle's chronological heuristic).
        let mut candidates: Vec<(i64, String)> = Vec::new();
        for name in among {
            let r = self
                .record(name)
                .ok_or_else(|| GkbmsError::Unknown(format!("decision `{name}`")))?;
            if !r.retracted {
                candidates.push((r.tick, r.name.clone()));
            }
        }
        let Some((_, culprit)) = candidates.iter().max_by_key(|(t, _)| *t).cloned() else {
            return Err(GkbmsError::NotRetractable(format!(
                "no effective decision among {among:?} to retract for `{description}`"
            )));
        };
        let nogood: Vec<String> = among.iter().map(|s| s.to_string()).collect();
        self.nogoods.push(nogood.clone());
        self.journal_append(crate::persist::encode_nogood(&nogood))?;
        let affected = self.retract_decision(&culprit)?;
        Ok(ConflictResolution {
            description: description.to_string(),
            culprit,
            affected,
            nogood,
        })
    }

    /// True if making all of `decisions` effective would re-enter a
    /// recorded nogood (some nogood is a subset of the set).
    pub fn would_repeat_nogood(&self, decisions: &[&str]) -> bool {
        self.nogoods
            .iter()
            .any(|ng| ng.iter().all(|d| decisions.contains(&d.as_str())))
    }

    /// The recorded decision-level nogoods.
    pub fn nogoods(&self) -> &[Vec<String>] {
        &self.nogoods
    }
}

#[cfg(test)]
mod tests {
    use crate::decisions::Discharge;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use crate::system::{DecisionRequest, Gkbms};

    fn key_conflict_history() -> Gkbms {
        // The fig 2-4 structure: a key decision and a Minutes mapping
        // that jointly produce an inconsistency.
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.register_object("Minutes", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecNormalize", "chooseKeys", "dev")
                .input("InvitationRel")
                .output("InvitationRelAK", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapMinutes", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Minutes")
                .output("MinutesRel", kernel::DBPL_REL),
        )
        .unwrap();
        g
    }

    #[test]
    fn ddb_retracts_most_recent_culprit() {
        let mut g = key_conflict_history();
        let res = g
            .report_conflict("candidate key lost at union", &["chooseKeys", "mapMinutes"])
            .unwrap();
        // Chronologically most recent: mapMinutes.
        assert_eq!(res.culprit, "mapMinutes");
        assert_eq!(res.affected, vec!["MinutesRel"]);
        assert!(g.is_current("InvitationRelAK"), "the other branch survives");
        assert!(!g.is_effective("mapMinutes"));
        // The nogood is recorded.
        assert_eq!(g.nogoods().len(), 1);
        assert!(g.would_repeat_nogood(&["chooseKeys", "mapMinutes"]));
        assert!(g.would_repeat_nogood(&["chooseKeys", "mapMinutes", "other"]));
        assert!(!g.would_repeat_nogood(&["chooseKeys"]));
    }

    #[test]
    fn caller_can_prefer_a_different_culprit_by_narrowing() {
        // The paper's scenario retracts the *key* decision, not the
        // Minutes mapping — the developer narrows the set.
        let mut g = key_conflict_history();
        let res = g
            .report_conflict("keys must stay unique", &["chooseKeys"])
            .unwrap();
        assert_eq!(res.culprit, "chooseKeys");
        assert!(g.is_effective("mapMinutes"));
        assert!(!g.is_current("InvitationRelAK"));
    }

    #[test]
    fn conflict_among_retracted_decisions_is_error() {
        let mut g = key_conflict_history();
        g.retract_decision("mapMinutes").unwrap();
        g.retract_decision("chooseKeys").unwrap();
        assert!(g
            .report_conflict("late report", &["chooseKeys", "mapMinutes"])
            .is_err());
    }

    #[test]
    fn unknown_decision_is_error() {
        let mut g = key_conflict_history();
        assert!(g.report_conflict("x", &["ghost"]).is_err());
    }

    #[test]
    fn repeated_conflicts_cascade() {
        let mut g = key_conflict_history();
        g.report_conflict("c1", &["chooseKeys", "mapMinutes"])
            .unwrap();
        // A second conflict among the survivors.
        let res = g
            .report_conflict("c2", &["mapInvitations", "chooseKeys"])
            .unwrap();
        assert_eq!(res.culprit, "chooseKeys");
        assert_eq!(g.nogoods().len(), 2);
        assert!(g.is_current("InvitationRel"));
        assert!(!g.is_current("InvitationRelAK"));
    }
}
