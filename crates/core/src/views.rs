//! Registered materialized deductive views: maintain, don't recompute.
//!
//! A registered view is the KB's deductive closure — [`objectbase::query::base_program`]
//! plus optional user rules — kept **materialized** under TELL/UNTELL
//! churn by the incremental maintenance engine
//! ([`datalog::ivm::MaterializedView`]): counting maintenance for
//! non-recursive strata, delete-and-rederive for recursive ones.
//! Every mutation that changes belief flows the per-proposition delta
//! ([`objectbase::query::edb_fact_for`]) into every registered view,
//! so queries against the view read a ready model instead of
//! re-evaluating the program from scratch.
//!
//! # MVCC interaction
//!
//! The materialized model always reflects the *current* belief state.
//! Each view records `as_of` — the belief tick of the last mutation it
//! incorporated. A reader pinned at watermark `w` may serve answers
//! from the model iff `w >= as_of`; an earlier watermark must fall
//! back to evaluating the view's program over its pinned snapshot
//! ([`RegisteredView::eval_pinned`]), so a pinned session never
//! observes a refresh from a newer tick.

use crate::error::{GkbmsError, GkbmsResult};
use crate::system::Gkbms;
use datalog::ast::{Program, Value};
use datalog::ivm::{Fact, MaterializedView};
use objectbase::consistency::{self, CheckStats, Violation};
use objectbase::query::{self, preds};
use telos::{PropId, PropStore};

/// One registered materialized view.
#[derive(Debug, Clone)]
pub struct RegisteredView {
    name: String,
    rules: String,
    view: MaterializedView,
    as_of: i64,
}

impl RegisteredView {
    /// The view's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The user rules (datalog source) layered over the base program.
    pub fn rules(&self) -> &str {
        &self.rules
    }

    /// Belief tick of the last mutation incorporated into the model.
    /// Readers pinned at or after this tick may serve from the model;
    /// earlier readers must use [`RegisteredView::eval_pinned`].
    pub fn as_of(&self) -> i64 {
        self.as_of
    }

    /// The maintained view engine (model, EDB, support counts).
    pub fn view(&self) -> &MaterializedView {
        &self.view
    }

    /// Tuples of `pred` from the materialized model, sorted — correct
    /// for readers whose watermark is at or after [`RegisteredView::as_of`].
    pub fn tuples(&self, pred: &str) -> Vec<Vec<Value>> {
        let mut out: Vec<Vec<Value>> = self.view.model().tuples(pred).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Evaluates this view's program from scratch over `store` as
    /// believed at tick `at` — the fallback for readers pinned before
    /// the model's `as_of` watermark. Answers are sorted like
    /// [`RegisteredView::tuples`].
    pub fn eval_pinned<S: PropStore>(
        &self,
        store: &S,
        at: i64,
        pred: &str,
    ) -> GkbmsResult<Vec<Vec<Value>>> {
        let edb = query::to_edb_at_store(store, at)?;
        let (model, _) = datalog::seminaive::evaluate(self.view.program(), &edb)
            .map_err(objectbase::ObError::from)?;
        let mut out: Vec<Vec<Value>> = model.tuples(pred).collect();
        out.sort();
        out.dedup();
        Ok(out)
    }
}

impl Gkbms {
    /// Registers a materialized deductive view: the base closure rules
    /// plus `rules` (datalog source, may be empty), built once from the
    /// current believed state and maintained incrementally from then
    /// on. Returns the view's initial `as_of` watermark.
    pub fn register_view(&mut self, name: &str, rules: &str) -> GkbmsResult<i64> {
        self.register_view_checked(name, rules)
            .map(|(as_of, _)| as_of)
    }

    /// Like [`Gkbms::register_view`], but also runs the CB013
    /// maintainability lint against the view's program: DRed cost over
    /// large recursive strata (using the KB's measured EDB
    /// cardinalities) and churn risk under the observed TELL/UNTELL
    /// mix from the write log. Warnings never block registration —
    /// they ride back to the caller next to the watermark.
    pub fn register_view_checked(
        &mut self,
        name: &str,
        rules: &str,
    ) -> GkbmsResult<(i64, Vec<analysis::Diagnostic>)> {
        if self.views.iter().any(|v| v.name == name) {
            return Err(GkbmsError::Duplicate(format!("view `{name}`")));
        }
        let mut program = query::base_program();
        if !rules.trim().is_empty() {
            let extra = Program::parse(rules).map_err(objectbase::ObError::from)?;
            program.rules.extend(extra.rules);
        }
        // The EDB predicates are fed by TELL/UNTELL deltas; a rule
        // deriving one of them would make those deltas ambiguous.
        for rule in &program.rules {
            let head = rule.head.pred.as_str();
            if head == preds::IN || head == preds::ISA || head == preds::ATTR {
                return Err(GkbmsError::Precondition(format!(
                    "view `{name}` derives extensional predicate `{head}`"
                )));
            }
        }
        let mut diags = Vec::new();
        {
            let ctx = self.lint_context();
            let (tells, untells) = self
                .tell_log
                .iter()
                .fold((0u64, 0u64), |(t, u), (_, _, e)| match e {
                    crate::system::TellEvent::Tell(_) => (t + 1, u),
                    crate::system::TellEvent::Untell(_) => (t, u + 1),
                });
            analysis::cost::lint_view(name, &program, &ctx.edb_cards, tells, untells, &mut diags);
            analysis::sort_diagnostics(&mut diags);
        }
        let mut view = MaterializedView::new(program).map_err(objectbase::ObError::from)?;
        // The initial load is itself one incremental batch.
        view.apply(&query::edb_facts(&self.kb), &[])
            .map_err(objectbase::ObError::from)?;
        let as_of = self.kb.now();
        self.views.push(RegisteredView {
            name: name.to_string(),
            rules: rules.to_string(),
            view,
            as_of,
        });
        self.journal_append(crate::persist::encode_register_view(name, rules))?;
        obs::gauge!(
            "gkbms_views_registered",
            "Materialized deductive views currently registered"
        )
        .set(self.views.len() as i64);
        Ok((as_of, diags))
    }

    /// The registered views, in registration order.
    pub fn views(&self) -> &[RegisteredView] {
        &self.views
    }

    /// The registered view named `name`.
    pub fn view(&self, name: &str) -> Option<&RegisteredView> {
        self.views.iter().find(|v| v.name == name)
    }

    /// Tuples of `pred` from the named view's materialized model
    /// (current belief state), sorted.
    pub fn view_tuples(&self, name: &str, pred: &str) -> GkbmsResult<Vec<Vec<Value>>> {
        let v = self
            .view(name)
            .ok_or_else(|| GkbmsError::Unknown(format!("view `{name}`")))?;
        Ok(v.tuples(pred))
    }

    /// Flows believed propositions created at or after `mark` into
    /// every registered view as insert deltas.
    pub(crate) fn propagate_new_props(&mut self, mark: usize) -> GkbmsResult<()> {
        if self.views.is_empty() || mark >= self.kb.len() {
            return Ok(());
        }
        let mut inserts: Vec<Fact> = Vec::new();
        for i in mark..self.kb.len() {
            let id = crate::error::checked_prop_id(i)?;
            let Some(p) = self.kb.prop(id) else { continue };
            if !p.is_believed() {
                continue;
            }
            if let Some(fact) = query::edb_fact_for(&self.kb, id) {
                inserts.push(fact);
            }
        }
        self.apply_view_delta(&inserts, &[]);
        Ok(())
    }

    /// Flows propositions whose belief was just closed into every
    /// registered view as delete deltas.
    pub(crate) fn propagate_untold(&mut self, gone: &[PropId]) {
        if self.views.is_empty() || gone.is_empty() {
            return;
        }
        let deletes: Vec<Fact> = gone
            .iter()
            .filter_map(|&id| query::edb_fact_for(&self.kb, id))
            .collect();
        self.apply_view_delta(&[], &deletes);
    }

    fn apply_view_delta(&mut self, inserts: &[Fact], deletes: &[Fact]) {
        if self.views.is_empty() || (inserts.is_empty() && deletes.is_empty()) {
            return;
        }
        let now = self.kb.now();
        let lag = self.views.iter().map(|v| now - v.as_of).max().unwrap_or(0);
        obs::gauge!(
            "gkbms_view_staleness_ticks",
            "Belief ticks elapsed since the last refresh of the stalest registered view, measured as each write is applied"
        )
        .set(lag);
        for v in &mut self.views {
            if v.view.apply(inserts, deletes).is_err() {
                // Registration rules out deltas on derived predicates,
                // so an apply error means the view state is suspect:
                // rebuild from the KB rather than serve a wrong model.
                if let Ok(mut fresh) = MaterializedView::new(v.view.program().clone()) {
                    if fresh.apply(&query::edb_facts(&self.kb), &[]).is_ok() {
                        v.view = fresh;
                    }
                }
            }
            v.as_of = now;
        }
    }

    /// The set-oriented consistency check, answering the class-closure
    /// step from the first registered view's materialized `inT`
    /// relation instead of walking the KB — a hash probe per object.
    /// Falls back to [`consistency::check_touched`] when no view is
    /// registered, and per-object to `Kb::all_classes_of` whenever a
    /// display name does not round-trip through `lookup` (the view
    /// keys objects by display name).
    pub(crate) fn check_touched_with_views(
        &self,
        touched: &[PropId],
    ) -> (Vec<Violation>, CheckStats) {
        let kb = &self.kb;
        let Some(rv) = self.views.first() else {
            return consistency::check_touched(kb, touched);
        };
        let model = rv.view.model();
        consistency::check_touched_via(kb, touched, |o| {
            let name = kb.display(o);
            if kb.lookup(&name) != Some(o) {
                return kb.all_classes_of(o);
            }
            let pattern = vec![Some(Value::sym(name)), None];
            let mut out = Vec::new();
            for t in model.probe("inT", &pattern) {
                match kb.lookup(&t[1].to_string()) {
                    Some(c) => out.push(c),
                    None => return kb.all_classes_of(o),
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use crate::system::DecisionRequest;

    fn sym_rows(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect()
    }

    /// From-scratch evaluation of a view's program over the live KB —
    /// the oracle every maintained model must match.
    fn recompute(g: &Gkbms, name: &str, pred: &str) -> Vec<Vec<Value>> {
        let v = g.view(name).unwrap();
        let edb = query::to_edb(g.kb()).unwrap();
        let (model, _) = datalog::seminaive::evaluate(v.view().program(), &edb).unwrap();
        let mut out: Vec<Vec<Value>> = model.tuples(pred).collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn registration_builds_current_model() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.register_view("closure", "").unwrap();
        assert_eq!(
            g.view_tuples("closure", "inT").unwrap(),
            recompute(&g, "closure", "inT")
        );
        assert!(g
            .view_tuples("closure", "inT")
            .unwrap()
            .iter()
            .any(|t| t[0].to_string() == "Invitation"));
    }

    #[test]
    fn duplicate_and_reserved_head_rejected() {
        let mut g = scenario_gkbms();
        g.register_view("v", "").unwrap();
        assert!(matches!(
            g.register_view("v", ""),
            Err(GkbmsError::Duplicate(_))
        ));
        assert!(matches!(
            g.register_view("bad", "in_(X, Y) :- attr(X, _L, Y)."),
            Err(GkbmsError::Precondition(_))
        ));
        assert!(g.register_view("broken", "p(X) :- q(X").is_err());
    }

    #[test]
    fn quiet_view_registration_reports_no_warnings() {
        let mut g = scenario_gkbms();
        let (as_of, diags) = g.register_view_checked("quiet", "").unwrap();
        assert_eq!(as_of, g.view("quiet").unwrap().as_of());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn churny_write_log_warns_on_registration() {
        // 16 TELLs + 4 UNTELLs = 20 events at a 20% delete share —
        // exactly the CB013 churn threshold.
        let mut g = scenario_gkbms();
        g.tell_src("TELL Person end").unwrap();
        for i in 0..15 {
            g.tell_src(&format!("TELL o{i} in Person end")).unwrap();
        }
        for i in 0..4 {
            g.untell(&format!("o{i}")).unwrap();
        }
        let (_, diags) = g.register_view_checked("churny", "").unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.code == "CB013" && d.message.contains("churn")),
            "{diags:?}"
        );
    }

    #[test]
    fn tells_and_untells_maintain_the_model() {
        let mut g = scenario_gkbms();
        g.register_view("closure", "").unwrap();
        let before = g.view("closure").unwrap().as_of();
        g.tell_src("TELL Person end\nTELL maria in Person end")
            .unwrap();
        assert!(g.view("closure").unwrap().as_of() > before);
        assert_eq!(
            g.view_tuples("closure", "inT").unwrap(),
            recompute(&g, "closure", "inT")
        );
        g.untell("maria").unwrap();
        assert_eq!(
            g.view_tuples("closure", "inT").unwrap(),
            recompute(&g, "closure", "inT")
        );
        assert!(!g
            .view_tuples("closure", "inT")
            .unwrap()
            .iter()
            .any(|t| t[0].to_string() == "maria"));
    }

    #[test]
    fn user_rules_are_maintained_too() {
        let mut g = scenario_gkbms();
        g.register_view("senders", "hasSender(I) :- attr(I, sender, _S).")
            .unwrap();
        g.tell_src(
            "TELL Person end\nTELL Paper with attribute sender : Person end\n\
             TELL maria in Person end\nTELL p1 in Paper with attribute sender : maria end",
        )
        .unwrap();
        // Both the class-level declaration (Paper!sender) and the
        // instance attribute are `attr` facts, so both satisfy the rule.
        assert_eq!(
            sym_rows(&g.view_tuples("senders", "hasSender").unwrap()),
            vec![vec!["Paper".to_string()], vec!["p1".to_string()]]
        );
        g.untell("p1").unwrap();
        assert_eq!(
            sym_rows(&g.view_tuples("senders", "hasSender").unwrap()),
            vec![vec!["Paper".to_string()]]
        );
    }

    #[test]
    fn decision_execution_and_retraction_flow_deltas() {
        let mut g = scenario_gkbms();
        g.register_view("closure", "").unwrap();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        assert_eq!(
            g.view_tuples("closure", "inT").unwrap(),
            recompute(&g, "closure", "inT")
        );
        assert!(g
            .view_tuples("closure", "inT")
            .unwrap()
            .iter()
            .any(|t| t[0].to_string() == "InvitationRel"));
        g.retract_decision("mapInvitations").unwrap();
        assert_eq!(
            g.view_tuples("closure", "inT").unwrap(),
            recompute(&g, "closure", "inT")
        );
        assert!(!g
            .view_tuples("closure", "inT")
            .unwrap()
            .iter()
            .any(|t| t[0].to_string() == "InvitationRel"));
        // The maintained model carries the extensional relations too
        // (like `seminaive::evaluate`'s model does) — they must track.
        assert_eq!(
            g.view_tuples("closure", "attr").unwrap(),
            recompute(&g, "closure", "attr")
        );
    }

    #[test]
    fn aborted_execution_leaves_no_residue_in_views() {
        let mut g = scenario_gkbms();
        g.register_view("closure", "").unwrap();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        let before = recompute(&g, "closure", "inT");
        let err = g.execute(
            DecisionRequest::new("TDL_MappingDec", "badMap", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("Wrong", kernel::TDL_ENTITY_CLASS),
        );
        assert!(err.is_err());
        assert_eq!(g.view_tuples("closure", "inT").unwrap(), before);
        assert_eq!(
            g.view_tuples("closure", "inT").unwrap(),
            recompute(&g, "closure", "inT")
        );
    }

    #[test]
    fn untell_retell_cycles_keep_support_exact() {
        // TELL/UNTELL idempotence through the GKBMS path: untelling
        // closes the old proposition's belief, re-telling mints a new
        // proposition for the same fact — the view's support count must
        // track 1 → 0 → 1 → 0 exactly, never going negative and never
        // resurrecting a deleted fact.
        let mut g = scenario_gkbms();
        g.register_view("closure", "").unwrap();
        let fact = [Value::sym("maria"), Value::sym("Person")];
        let support = |g: &Gkbms| g.view("closure").unwrap().view().support("in_", &fact);
        g.tell_src("TELL Person end\nTELL maria in Person end")
            .unwrap();
        assert_eq!(support(&g), 1);
        g.untell("maria").unwrap();
        assert_eq!(support(&g), 0);
        // Re-TELL: a brand-new proposition contributing the same fact.
        g.tell_src("TELL maria in Person end").unwrap();
        assert_eq!(support(&g), 1);
        assert!(g
            .view_tuples("closure", "inT")
            .unwrap()
            .iter()
            .any(|t| t[0].to_string() == "maria"));
        g.untell("maria").unwrap();
        assert_eq!(support(&g), 0);
        assert!(!g
            .view_tuples("closure", "inT")
            .unwrap()
            .iter()
            .any(|t| t[0].to_string() == "maria"));
        assert_eq!(
            g.view_tuples("closure", "inT").unwrap(),
            recompute(&g, "closure", "inT")
        );
    }

    #[test]
    fn consistency_check_via_views_agrees_with_default() {
        let mut g = scenario_gkbms();
        g.tell_src(
            "TELL Person end\n\
             TELL Paper with attribute author : Person end\n\
             TELL Invitation isA Paper with\n\
               attribute sender : Person\n\
               constraint hasSender : $ forall i/Invitation i.sender defined $\n\
             end\n\
             TELL maria in Person end",
        )
        .unwrap();
        g.register_view("closure", "").unwrap();
        // A violating TELL: an invitation without a sender.
        g.tell_src("TELL inv1 in Invitation end").unwrap();
        let inv1 = g.kb().lookup("inv1").unwrap();
        let touched = vec![inv1];
        let (via_views, _) = g.check_touched_with_views(&touched);
        let (default, _) = consistency::check_touched(g.kb(), &touched);
        assert_eq!(via_views, default);
        assert!(!via_views.is_empty(), "the violation is caught either way");
    }

    #[test]
    fn pinned_reader_never_observes_a_newer_refresh() {
        // Satellite 3 at the core level: a registered view refreshing
        // at a newer tick must not change what a pinned reader sees.
        let mut g = scenario_gkbms();
        g.tell_src("TELL Person end\nTELL maria in Person end")
            .unwrap();
        g.register_view("closure", "").unwrap();
        let watermark = g.kb().now();
        let pinned_before = g
            .view("closure")
            .unwrap()
            .eval_pinned(g.kb(), watermark, "inT")
            .unwrap();
        // Model and pinned evaluation agree at the watermark.
        assert_eq!(pinned_before, g.view_tuples("closure", "inT").unwrap());
        // A newer write refreshes the view past the watermark.
        g.tell_src("TELL anna in Person end").unwrap();
        let v = g.view("closure").unwrap();
        assert!(v.as_of() > watermark, "the refresh is at a newer tick");
        let pinned_after = v.eval_pinned(g.kb(), watermark, "inT").unwrap();
        assert_eq!(
            pinned_after, pinned_before,
            "pinned answers are byte-identical across the refresh"
        );
        assert_ne!(
            g.view_tuples("closure", "inT").unwrap(),
            pinned_before,
            "while the live model did move"
        );
    }

    #[test]
    fn views_survive_save_load_and_journal_replay() {
        let mut g = scenario_gkbms();
        g.tell_src("TELL Person end\nTELL maria in Person end")
            .unwrap();
        g.register_view("closure", "hasSelf(X) :- in_(X, _C).")
            .unwrap();
        g.tell_src("TELL anna in Person end").unwrap();
        let expect = g.view_tuples("closure", "inT").unwrap();
        let path = {
            let mut p = std::env::temp_dir();
            p.push(format!("cb-views-roundtrip-{}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            p
        };
        g.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        let v = loaded.view("closure").expect("view survived the reload");
        assert_eq!(v.rules(), "hasSelf(X) :- in_(X, _C).");
        assert_eq!(loaded.view_tuples("closure", "inT").unwrap(), expect);
        assert_eq!(
            loaded.view_tuples("closure", "hasSelf").unwrap(),
            g.view_tuples("closure", "hasSelf").unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decision_flows_keep_checking_consistency_with_views_registered() {
        // The violating-output scenario still aborts when the class
        // closure is answered from the materialized view.
        let mut g = scenario_gkbms();
        g.register_view("closure", "").unwrap();
        g.tell_src(
            "TELL Memo with\n\
               constraint signed : $ forall m/Memo m.author defined $\n\
               attribute author : Agent\n\
             end",
        )
        .unwrap();
        g.define_object_class("MemoDoc", "Requirements", None)
            .unwrap();
        let err = g.tell_src("TELL m1 in Memo end");
        // tell_src does not consistency-check (that is execute's job);
        // instead assert the closure answers match for the new object.
        assert!(err.is_ok());
        let m1 = g.kb().lookup("m1").unwrap();
        let (via, _) = g.check_touched_with_views(&[m1]);
        let (default, _) = consistency::check_touched(g.kb(), &[m1]);
        assert_eq!(via, default);
        assert!(!via.is_empty(), "unsigned memo violates `signed`");
        // And a clean execution still succeeds end to end.
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "map", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        assert!(g.is_effective("map"));
    }
}
