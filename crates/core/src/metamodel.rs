//! The conceptual process model (fig 2-6 top layer, fig 3-3).
//!
//! "At the conceptual level, the GKBMS introduces metaclasses to
//! express design object and design decision classes. Formally,
//! metaclass DesignDecision provides the expressive facilities to
//! build design decision classes upon input (FROM) and output (TO)
//! relationships … Conversely, metaclass DesignObject provides
//! facilities to express the justifying decision of a design object
//! and its source reference."
//!
//! Everything here is ordinary Telos TELLs — the ω-level of the
//! `telos` crate makes the metamodel expressible without kernel
//! changes, which is exactly the extensibility argument of §2.2.

use crate::error::GkbmsResult;
use telos::{Kb, PropId};

/// Names of the process-model metaclasses and link classes.
pub mod names {
    /// Metaclass of design object classes.
    pub const DESIGN_OBJECT: &str = "DesignObject";
    /// Metaclass of design decision classes.
    pub const DESIGN_DECISION: &str = "DesignDecision";
    /// Metaclass of design tool specifications.
    pub const DESIGN_TOOL: &str = "DesignTool";
    /// Input link metaattribute (capital per the paper's convention).
    pub const FROM: &str = "FROM";
    /// Output link metaattribute.
    pub const TO: &str = "TO";
    /// Tool link metaattribute.
    pub const BY: &str = "BY";
    /// Justification link metaattribute on design objects.
    pub const JUSTIFICATION: &str = "JUSTIFICATION";
    /// Source-reference link metaattribute on design objects.
    pub const SOURCE: &str = "SOURCE";
    /// Instance-level link labels ("links labeled with small letters
    /// are instances of those denoted by capitals").
    pub const FROM_I: &str = "from";
    /// Instance-level output link label.
    pub const TO_I: &str = "to";
    /// Instance-level tool link label.
    pub const BY_I: &str = "by";
    /// Instance-level justification label.
    pub const JUSTIFICATION_I: &str = "justification";
    /// Instance-level source-reference label.
    pub const SOURCE_I: &str = "source";
    /// Class of external source references.
    pub const SOURCE_REF: &str = "SourceRef";
    /// Class of developers / decision makers.
    pub const AGENT: &str = "Agent";
}

/// Proposition ids of the process-model metaclasses.
#[derive(Debug, Clone, Copy)]
pub struct ProcessModel {
    /// `DesignObject` metaclass.
    pub design_object: PropId,
    /// `DesignDecision` metaclass.
    pub design_decision: PropId,
    /// `DesignTool` metaclass.
    pub design_tool: PropId,
    /// `SourceRef` class.
    pub source_ref: PropId,
    /// `Agent` class.
    pub agent: PropId,
}

/// Bootstraps the process model into a KB.
pub fn bootstrap(kb: &mut Kb) -> GkbmsResult<ProcessModel> {
    let meta = kb.builtins().meta_class;
    let simple = kb.builtins().simple_class;
    let class = kb.builtins().class;
    let design_object = kb.individual(names::DESIGN_OBJECT)?;
    kb.instantiate(design_object, meta)?;
    let design_decision = kb.individual(names::DESIGN_DECISION)?;
    kb.instantiate(design_decision, meta)?;
    let design_tool = kb.individual(names::DESIGN_TOOL)?;
    kb.instantiate(design_tool, meta)?;
    // Instances of these metaclasses are themselves classes (of design
    // object / decision / tool tokens).
    kb.specialize(design_object, class)?;
    kb.specialize(design_decision, class)?;
    kb.specialize(design_tool, class)?;
    let source_ref = kb.individual(names::SOURCE_REF)?;
    kb.instantiate(source_ref, simple)?;
    let agent = kb.individual(names::AGENT)?;
    kb.instantiate(agent, simple)?;

    // The metaattributes of fig 3-3: DesignDecision --FROM/TO-->
    // DesignObject, --BY--> DesignTool; DesignObject --JUSTIFICATION-->
    // DesignDecision, --SOURCE--> SourceRef.
    kb.put_attr(design_decision, names::FROM, design_object)?;
    kb.put_attr(design_decision, names::TO, design_object)?;
    kb.put_attr(design_decision, names::BY, design_tool)?;
    kb.put_attr(design_object, names::JUSTIFICATION, design_decision)?;
    kb.put_attr(design_object, names::SOURCE, source_ref)?;

    // Instance-level labels are declared on the metaclasses too, so
    // that concrete decision classes' from/to/by links are declared
    // attributes under the aggregation axiom.
    kb.put_attr(design_decision, names::FROM_I, design_object)?;
    kb.put_attr(design_decision, names::TO_I, design_object)?;
    kb.put_attr(design_decision, names::BY_I, design_tool)?;
    kb.put_attr(design_object, names::JUSTIFICATION_I, design_decision)?;
    kb.put_attr(design_object, names::SOURCE_I, source_ref)?;
    // Design-object classes carry a life-cycle `level` attribute.
    let proposition = kb.builtins().proposition;
    kb.put_attr(design_object, kernel::LEVEL, proposition)?;

    kb.tick();
    Ok(ProcessModel {
        design_object,
        design_decision,
        design_tool,
        source_ref,
        agent,
    })
}

/// The DAIDA kernel design-object classes (§2.2: "as a starting point,
/// design object classes follow an abstract syntax of applied
/// languages"), grouped by life-cycle level.
pub mod kernel {
    /// Requirements level (CML).
    pub const CML_CLASS: &str = "CML_Class";
    /// Conceptual design level: entity classes.
    pub const TDL_ENTITY_CLASS: &str = "TDL_EntityClass";
    /// Conceptual design level: transactions.
    pub const TDL_TRANSACTION: &str = "TDL_Transaction";
    /// Implementation level: relations.
    pub const DBPL_REL: &str = "DBPL_Rel";
    /// Implementation level: normalized relations (fig 3-3:
    /// "NormalizedDBPL_Rel is a specialization of DBPL_Rel").
    pub const NORMALIZED_DBPL_REL: &str = "NormalizedDBPL_Rel";
    /// Implementation level: selectors.
    pub const DBPL_SELECTOR: &str = "DBPL_Selector";
    /// Implementation level: constructors.
    pub const DBPL_CONSTRUCTOR: &str = "DBPL_Constructor";
    /// Implementation level: transactions.
    pub const DBPL_TRANSACTION: &str = "DBPL_Transaction";
    /// The level attribute label.
    pub const LEVEL: &str = "level";
    /// Level individuals.
    pub const LEVELS: [&str; 3] = ["Requirements", "Design", "Implementation"];

    /// `(class, level, isa-parent)` rows of the kernel.
    pub const CLASSES: [(&str, &str, Option<&str>); 8] = [
        (CML_CLASS, "Requirements", None),
        (TDL_ENTITY_CLASS, "Design", None),
        (TDL_TRANSACTION, "Design", None),
        (DBPL_REL, "Implementation", None),
        (NORMALIZED_DBPL_REL, "Implementation", Some(DBPL_REL)),
        (DBPL_SELECTOR, "Implementation", None),
        (DBPL_CONSTRUCTOR, "Implementation", None),
        (DBPL_TRANSACTION, "Implementation", None),
    ];
}

/// Installs the kernel design-object classes.
pub fn install_kernel(kb: &mut Kb, pm: &ProcessModel) -> GkbmsResult<()> {
    for level in kernel::LEVELS {
        kb.individual(level)?;
    }
    for (class, level, parent) in kernel::CLASSES {
        let c = kb.individual(class)?;
        kb.instantiate(c, pm.design_object)?;
        let l = kb.expect(level)?;
        kb.put_attr(c, kernel::LEVEL, l)?;
        // Declare the token-level link labels on the class, so tokens'
        // justification/source links are declared attributes.
        kb.put_attr(c, names::JUSTIFICATION_I, pm.design_decision)?;
        kb.put_attr(c, names::SOURCE_I, pm.source_ref)?;
        if let Some(p) = parent {
            let p = kb.expect(p)?;
            kb.specialize(c, p)?;
        }
    }
    kb.tick();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_builds_fig_3_3_top_layer() {
        let mut kb = Kb::new();
        let pm = bootstrap(&mut kb).unwrap();
        assert!(kb.is_instance_of(pm.design_decision, kb.builtins().meta_class));
        // DesignDecision --FROM--> DesignObject.
        assert_eq!(
            kb.attr_values(pm.design_decision, names::FROM),
            vec![pm.design_object]
        );
        assert_eq!(
            kb.attr_values(pm.design_object, names::JUSTIFICATION),
            vec![pm.design_decision]
        );
        assert_eq!(
            kb.attr_values(pm.design_decision, names::BY),
            vec![pm.design_tool]
        );
    }

    #[test]
    fn kernel_classes_installed_with_levels() {
        let mut kb = Kb::new();
        let pm = bootstrap(&mut kb).unwrap();
        install_kernel(&mut kb, &pm).unwrap();
        let rel = kb.lookup(kernel::DBPL_REL).unwrap();
        assert!(kb.is_instance_of(rel, pm.design_object));
        let norm = kb.lookup(kernel::NORMALIZED_DBPL_REL).unwrap();
        assert!(kb.isa_ancestors(norm).contains(&rel), "fig 3-3 isa link");
        let impl_level = kb.lookup("Implementation").unwrap();
        assert_eq!(kb.attr_values(rel, kernel::LEVEL), vec![impl_level]);
    }

    #[test]
    fn fig_2_5_three_levels_of_design_object_knowledge() {
        // metaclass (DesignObject) / design object classes (DBPL_Rel) /
        // design object instances (InvitationRel) — with the external
        // source outside the KB (a SourceRef token).
        let mut kb = Kb::new();
        let pm = bootstrap(&mut kb).unwrap();
        install_kernel(&mut kb, &pm).unwrap();
        let rel_class = kb.lookup(kernel::DBPL_REL).unwrap();
        let inv_rel = kb.individual("InvitationRel").unwrap();
        kb.instantiate(inv_rel, rel_class).unwrap();
        assert!(kb.is_instance_of(inv_rel, rel_class));
        assert!(kb.is_instance_of(rel_class, pm.design_object));
        assert!(
            !kb.is_instance_of(inv_rel, pm.design_object),
            "levels distinct"
        );
    }

    #[test]
    fn bootstrap_is_axiom_clean() {
        let mut kb = Kb::new();
        let pm = bootstrap(&mut kb).unwrap();
        install_kernel(&mut kb, &pm).unwrap();
        assert!(telos::axioms::check_all(&kb).is_empty());
    }
}
