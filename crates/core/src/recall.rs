//! Structure-similarity recall over the decision history.
//!
//! "Which past decisions looked like this one?" — the documentation-
//! service reading of the GKBMS (§3.1): development knowledge is only
//! reusable if a designer facing a decision can retrieve precedents.
//! Exact-match retrieval over names is useless across projects, so
//! recall works on *structural signatures*: the decision class and
//! dimension, the tool, the input/output design-object class
//! multisets, and the discharge shape. Retracted decisions are
//! included deliberately — a withdrawn precedent documents a dead end,
//! which is exactly the knowledge §3.3 wants preserved.

use std::collections::HashMap;

use crate::error::{GkbmsError, GkbmsResult};
use crate::system::{DecisionRecord, Gkbms};

/// A scored recall hit.
#[derive(Debug, Clone, PartialEq)]
pub struct RecallHit {
    /// The matching decision's instance name.
    pub decision: String,
    /// Structural similarity in `(0, 1]`.
    pub score: f64,
    /// Whether the precedent was later retracted (a documented dead
    /// end rather than surviving design knowledge).
    pub retracted: bool,
}

/// The structural signature of one decision: a weighted feature bag.
/// Class identity weighs heaviest, then dimension and tool, then the
/// class multisets of the objects it consumed and produced.
fn signature(g: &Gkbms, r: &DecisionRecord) -> HashMap<String, f64> {
    let mut bag: HashMap<String, f64> = HashMap::new();
    let mut add = |k: String, w: f64| *bag.entry(k).or_insert(0.0) += w;
    add(format!("class:{}", r.class), 3.0);
    if let Some(dc) = g.classes.get(&r.class) {
        add(format!("dim:{}", dc.dimension), 2.0);
    }
    if let Some(t) = &r.tool {
        add(format!("tool:{t}"), 2.0);
    }
    add(format!("inputs:{}", r.inputs.len()), 1.0);
    for c in &r.output_classes {
        add(format!("out:{c}"), 1.0);
    }
    for d in &r.discharges {
        let (kind, obligation) = match d {
            crate::decisions::Discharge::Formal { obligation } => ("formal", obligation),
            crate::decisions::Discharge::Signature { obligation, .. } => ("signed", obligation),
        };
        add(format!("sig:{kind}:{obligation}"), 1.0);
    }
    bag
}

/// Weighted Jaccard similarity of two feature bags.
fn weighted_jaccard(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    let mut min_sum = 0.0;
    let mut max_sum = 0.0;
    for (k, &wa) in a {
        let wb = b.get(k).copied().unwrap_or(0.0);
        min_sum += wa.min(wb);
        max_sum += wa.max(wb);
    }
    for (k, &wb) in b {
        if !a.contains_key(k) {
            max_sum += wb;
        }
    }
    if max_sum == 0.0 {
        0.0
    } else {
        min_sum / max_sum
    }
}

impl Gkbms {
    /// Ranks past decisions by structural similarity with `name` —
    /// same class, dimension, tool, input/output class shape and
    /// discharge shape count toward the score; instance names never
    /// do. Returns at most `limit` hits with nonzero score, best
    /// first; the queried decision itself is excluded. Retracted
    /// precedents are reported with their flag set, not filtered.
    pub fn recall_similar(&self, name: &str, limit: usize) -> GkbmsResult<Vec<RecallHit>> {
        let probe = self
            .record(name)
            .ok_or_else(|| GkbmsError::Unknown(format!("decision `{name}`")))?;
        let probe_sig = signature(self, probe);
        let mut hits: Vec<RecallHit> = self
            .records()
            .iter()
            .filter(|r| r.name != name)
            .map(|r| RecallHit {
                decision: r.name.clone(),
                score: weighted_jaccard(&probe_sig, &signature(self, r)),
                retracted: r.retracted,
            })
            .filter(|h| h.score > 0.0)
            .collect();
        // Deterministic order: score desc, then name for ties.
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.decision.cmp(&b.decision))
        });
        hits.truncate(limit);
        obs::counter!(
            "gkbms_recall_queries_total",
            "Structure-similarity recall queries answered"
        )
        .inc();
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{self, SynthConfig};

    fn corpus() -> Gkbms {
        let mut g = Gkbms::new().unwrap();
        synth::generate_into(
            &mut g,
            &SynthConfig {
                seed: 11,
                decisions: 40,
                retraction_rate: 0.15,
                ..SynthConfig::default()
            },
        )
        .unwrap();
        g
    }

    #[test]
    fn unknown_probe_is_an_error() {
        let g = corpus();
        assert!(g.recall_similar("nope", 5).is_err());
    }

    #[test]
    fn same_class_decisions_rank_first() {
        let g = corpus();
        let probe = g
            .records()
            .iter()
            .find(|r| r.class == synth::names::NORMALIZE)
            .expect("corpus has a normalization")
            .name
            .clone();
        let hits = g.recall_similar(&probe, 5).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.len() <= 5);
        // Best hit shares the decision class.
        let best = g.record(&hits[0].decision).unwrap();
        assert_eq!(best.class, synth::names::NORMALIZE);
        // Scores are in (0, 1], descending.
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        assert!(hits[0].score > 0.0 && hits[0].score <= 1.0);
        // The probe never recalls itself.
        assert!(hits.iter().all(|h| h.decision != probe));
    }

    #[test]
    fn retracted_precedents_are_recalled_and_flagged() {
        let g = corpus();
        let retracted = g
            .records()
            .iter()
            .find(|r| r.retracted)
            .expect("corpus has retractions")
            .name
            .clone();
        // A retracted decision can still be used as a probe...
        let hits = g.recall_similar(&retracted, 10).unwrap();
        assert!(!hits.is_empty());
        // ...and shows up as a flagged hit for a live same-class probe.
        let class = g.record(&retracted).unwrap().class.clone();
        let live = g
            .records()
            .iter()
            .find(|r| r.class == class && !r.retracted && r.name != retracted)
            .map(|r| r.name.clone());
        if let Some(live) = live {
            let hits = g.recall_similar(&live, usize::MAX).unwrap();
            let hit = hits.iter().find(|h| h.decision == retracted);
            assert!(hit.is_some_and(|h| h.retracted));
        }
    }

    #[test]
    fn identical_structure_scores_one() {
        let g = corpus();
        // Two distribute decisions with the same fanout have identical
        // signatures.
        let mut distribs = g
            .records()
            .iter()
            .filter(|r| r.class == synth::names::DISTRIBUTE || r.class == synth::names::MOVE_DOWN);
        let a = distribs.next().expect("mapping decisions exist");
        let twin = g
            .records()
            .iter()
            .find(|r| {
                r.name != a.name && r.class == a.class && r.output_classes == a.output_classes
            })
            .expect("the mix produces structural twins");
        let hits = g.recall_similar(&a.name, usize::MAX).unwrap();
        let hit = hits.iter().find(|h| h.decision == twin.name).unwrap();
        assert!((hit.score - 1.0).abs() < 1e-9, "twin scored {}", hit.score);
    }
}
