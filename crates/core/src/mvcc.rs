//! Multi-version concurrency control for the knowledge base.
//!
//! The server's writers serialize on a single write lock; its readers
//! must not. This module provides the machinery between the two: a
//! [`VersionChain`] holds the latest immutable version of the store
//! (an `Arc<Version<T>>`) plus every superseded version that a reader
//! still has pinned. Readers [`VersionChain::acquire`] the head — a
//! pointer clone, never the writer lock — and hold a [`Pin`] for as
//! long as they want to keep reading that version (the server pins one
//! per session, at Hello, released when the session closes or expires).
//!
//! Reclamation is epoch-based: each published version carries a
//! monotonically increasing sequence number (its *epoch*). A
//! superseded version is retired, not freed; it is dropped from the
//! chain only once no [`Pin`] at its epoch remains. The `Arc` inside
//! each `Pin` is the memory-safety backstop (an in-flight read can
//! outlive its session's pin without use-after-free); the epoch table
//! is the retention *policy* that stops the chain from growing without
//! bound. After all readers quiesce, exactly one version — the head —
//! remains live.
//!
//! Observability: `gkbms_snapshot_acquires_total` counts reader
//! acquisitions, `gkbms_store_versions_live` / `gkbms_store_epochs_pinned`
//! gauge the chain, and `gkbms_versions_published_total` /
//! `gkbms_versions_reclaimed_total` count churn.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// An immutable published version: the payload plus its epoch.
#[derive(Debug)]
pub struct Version<T> {
    seq: u64,
    data: T,
}

impl<T> Version<T> {
    /// The version's epoch (publish sequence number).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The versioned payload.
    pub fn data(&self) -> &T {
        &self.data
    }
}

struct ChainState<T> {
    head: Arc<Version<T>>,
    /// Superseded versions still pinned by at least one reader, oldest
    /// first. Unpinned ones are dropped eagerly on every publish /
    /// unpin.
    retired: Vec<Arc<Version<T>>>,
    /// Epoch → number of pins at that epoch.
    pins: BTreeMap<u64, usize>,
}

/// A chain of immutable store versions with epoch-based reclamation.
/// Cloning the chain handle shares the same chain.
pub struct VersionChain<T> {
    state: Arc<Mutex<ChainState<T>>>,
}

impl<T> Clone for VersionChain<T> {
    fn clone(&self) -> Self {
        VersionChain {
            state: Arc::clone(&self.state),
        }
    }
}

/// A reader's hold on one version. Derefs to the payload via
/// [`Pin::data`]; dropping it releases the epoch (and reclaims any
/// retired versions that were only kept for it). Cloning re-pins the
/// same epoch.
pub struct Pin<T> {
    state: Arc<Mutex<ChainState<T>>>,
    version: Arc<Version<T>>,
}

impl<T> VersionChain<T> {
    /// A new chain whose head is `initial` at epoch 0.
    pub fn new(initial: T) -> Self {
        let chain = VersionChain {
            state: Arc::new(Mutex::new(ChainState {
                head: Arc::new(Version {
                    seq: 0,
                    data: initial,
                }),
                retired: Vec::new(),
                pins: BTreeMap::new(),
            })),
        };
        chain.update_gauges(1, 0);
        chain
    }

    /// Publishes `data` as the new head version and retires the old
    /// head. Called by the writer while it still holds the write lock,
    /// so heads are published in commit order. Returns the new epoch.
    pub fn publish(&self, data: T) -> u64 {
        let mut s = self.lock();
        let seq = s.head.seq + 1;
        let old = std::mem::replace(&mut s.head, Arc::new(Version { seq, data }));
        s.retired.push(old);
        obs::counter!(
            "gkbms_versions_published_total",
            "Store versions published by the writer"
        )
        .inc();
        Self::reclaim(&mut s);
        seq
    }

    /// Pins the current head and returns the pin. This is the reader
    /// entry point: a mutex-guarded pointer clone, independent of the
    /// writer lock.
    pub fn acquire(&self) -> Pin<T> {
        let mut s = self.lock();
        let version = Arc::clone(&s.head);
        *s.pins.entry(version.seq).or_insert(0) += 1;
        obs::counter!(
            "gkbms_snapshot_acquires_total",
            "Reader acquisitions of a pinned store version"
        )
        .inc();
        self.update_gauges(1 + s.retired.len(), s.pins.len());
        Pin {
            state: Arc::clone(&self.state),
            version,
        }
    }

    /// Epoch of the current head.
    pub fn head_seq(&self) -> u64 {
        self.lock().head.seq
    }

    /// The current head version without pinning its epoch: the `Arc`
    /// keeps the payload alive for the duration of this read, but does
    /// not retain it once the head moves on. For point reads that need
    /// the latest state, not a session-stable snapshot.
    pub fn head(&self) -> Arc<Version<T>> {
        Arc::clone(&self.lock().head)
    }

    /// Number of live versions (head + retired-but-pinned).
    pub fn live_versions(&self) -> usize {
        let s = self.lock();
        1 + s.retired.len()
    }

    /// Number of distinct epochs currently pinned by readers.
    pub fn pinned_epochs(&self) -> usize {
        self.lock().pins.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChainState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Drops retired versions whose epoch has no remaining pins. A pin
    /// reaches exactly the version it pinned, so exact-epoch retention
    /// suffices; the head is never reclaimed.
    fn reclaim(s: &mut ChainState<T>) {
        let before = s.retired.len();
        let pins = &s.pins;
        s.retired.retain(|v| pins.contains_key(&v.seq));
        let freed = before - s.retired.len();
        if freed > 0 {
            obs::counter!(
                "gkbms_versions_reclaimed_total",
                "Superseded store versions freed after their last pinned reader departed"
            )
            .add(freed as u64);
        }
        obs::gauge!(
            "gkbms_store_versions_live",
            "Store versions currently alive (head + retired-but-pinned)"
        )
        .set((1 + s.retired.len()) as i64);
        obs::gauge!(
            "gkbms_store_epochs_pinned",
            "Distinct store epochs currently pinned by readers"
        )
        .set(s.pins.len() as i64);
    }

    fn update_gauges(&self, live: usize, pinned: usize) {
        obs::gauge!(
            "gkbms_store_versions_live",
            "Store versions currently alive (head + retired-but-pinned)"
        )
        .set(live as i64);
        obs::gauge!(
            "gkbms_store_epochs_pinned",
            "Distinct store epochs currently pinned by readers"
        )
        .set(pinned as i64);
    }
}

impl<T> Pin<T> {
    /// The pinned payload.
    pub fn data(&self) -> &T {
        &self.version.data
    }

    /// The pinned epoch.
    pub fn seq(&self) -> u64 {
        self.version.seq
    }

    /// A shareable handle to the pinned version. The `Arc` keeps the
    /// payload alive even if the pin is dropped mid-read (session
    /// expiry racing an in-flight request), so reads are always
    /// use-after-free-safe; only *retention* is governed by the pin.
    pub fn version(&self) -> Arc<Version<T>> {
        Arc::clone(&self.version)
    }
}

impl<T> Clone for Pin<T> {
    fn clone(&self) -> Self {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *s.pins.entry(self.version.seq).or_insert(0) += 1;
        drop(s);
        Pin {
            state: Arc::clone(&self.state),
            version: Arc::clone(&self.version),
        }
    }
}

impl<T> std::fmt::Debug for Pin<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pin")
            .field("seq", &self.version.seq)
            .finish()
    }
}

impl<T> Drop for Pin<T> {
    fn drop(&mut self) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(n) = s.pins.get_mut(&self.version.seq) {
            *n -= 1;
            if *n == 0 {
                s.pins.remove(&self.version.seq);
            }
        }
        VersionChain::reclaim(&mut s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    #[test]
    fn head_advances_and_unpinned_versions_reclaim_eagerly() {
        let chain = VersionChain::new(0u64);
        assert_eq!(chain.head_seq(), 0);
        assert_eq!(chain.live_versions(), 1);
        for i in 1..=10 {
            assert_eq!(chain.publish(i), i);
            assert_eq!(chain.live_versions(), 1, "no pins → no retained history");
        }
        assert_eq!(chain.head_seq(), 10);
        assert_eq!(*chain.acquire().data(), 10);
    }

    #[test]
    fn pinned_version_survives_publishes_until_unpin() {
        let chain = VersionChain::new(0u64);
        let pin = chain.acquire();
        chain.publish(1);
        chain.publish(2);
        assert_eq!(chain.live_versions(), 2, "pinned epoch 0 + head");
        assert_eq!(chain.pinned_epochs(), 1);
        assert_eq!(*pin.data(), 0, "pin still reads its version");
        drop(pin);
        assert_eq!(chain.live_versions(), 1, "reclaimed after last pin departs");
        assert_eq!(chain.pinned_epochs(), 0);
    }

    #[test]
    fn clone_repins_and_arc_backstops_inflight_reads() {
        let chain = VersionChain::new(7u64);
        let pin = chain.acquire();
        let pin2 = pin.clone();
        chain.publish(8);
        drop(pin);
        assert_eq!(chain.live_versions(), 2, "clone still pins epoch 0");
        // An in-flight read holds only the Arc; dropping the last pin
        // reclaims the chain slot but the Arc keeps the data alive.
        let inflight = pin2.version();
        drop(pin2);
        assert_eq!(chain.live_versions(), 1);
        assert_eq!(*inflight.data(), 7, "no use-after-free: Arc backstop");
    }

    #[test]
    fn distinct_epochs_are_tracked_independently() {
        let chain = VersionChain::new(0u64);
        let p0 = chain.acquire();
        chain.publish(1);
        let p1 = chain.acquire();
        chain.publish(2);
        assert_eq!(chain.live_versions(), 3);
        assert_eq!(chain.pinned_epochs(), 2);
        drop(p0);
        assert_eq!(chain.live_versions(), 2, "epoch 0 freed, epoch 1 kept");
        drop(p1);
        assert_eq!(chain.live_versions(), 1);
    }

    /// The reclamation stress test of ISSUE 6: a writer churns versions
    /// while readers pin/unpin epochs for thousands of iterations; the
    /// chain must converge back to exactly one live version after
    /// quiesce, with every read seeing its own pinned payload. Runs
    /// under miri in CI (`sanitize` job) with a reduced iteration count.
    #[test]
    fn epoch_churn_stress_converges_to_one_version() {
        const READERS: usize = 4;
        #[cfg(not(miri))]
        const ITERS: usize = 2_000;
        #[cfg(miri)]
        const ITERS: usize = 50;

        let chain = VersionChain::new(0u64);
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let chain = chain.clone();
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut reads = 0u64;
                    // Do-while: at least one read even if the writer
                    // finishes before this thread is first scheduled.
                    loop {
                        let pin = chain.acquire();
                        // The pinned payload equals the pinned epoch:
                        // a reader never observes a torn or reclaimed
                        // version.
                        assert_eq!(*pin.data(), pin.seq());
                        let clone = pin.clone();
                        drop(pin);
                        assert_eq!(*clone.data(), clone.seq());
                        drop(clone);
                        reads += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    reads
                })
            })
            .collect();

        for i in 1..=ITERS as u64 {
            chain.publish(i);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made progress");
        }
        assert_eq!(chain.live_versions(), 1, "quiesce reclaims all history");
        assert_eq!(chain.pinned_epochs(), 0);
        assert_eq!(chain.head_seq(), ITERS as u64);
    }
}
