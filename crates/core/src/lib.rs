#![warn(missing_docs)]

//! The **Global Knowledge Base Management System** (GKBMS) — the
//! paper's primary contribution (§2.2, §3.2, §3.3).
//!
//! The GKBMS "views the software development and maintenance process
//! as a history of tool-supported decisions. These decisions are
//! directly represented; they can be planned for, reasoned about, and
//! selectively backtracked in case of errors or requirements changes.
//! Ex ante, the GKBMS can be seen as an integrative tool server …; ex
//! post, it plays the role of a documentation service in which
//! development objects are related to the decisions and tools that
//! created or changed them (i.e., justify their current status)."
//!
//! * [`metamodel`] — the conceptual process model: metaclasses
//!   `DesignObject`, `DesignDecision`, `DesignTool` with FROM/TO/BY
//!   links, bootstrapped as ordinary Telos TELLs (fig 3-3), plus the
//!   DAIDA kernel classes;
//! * [`decisions`] — decision classes, tool specifications, and
//!   system-guided tool selection (fig 2-6);
//! * [`system`] — the [`Gkbms`] itself: registering design objects,
//!   executing decisions as nested transactions with proof
//!   obligations, and **selective backtracking** on a JTMS;
//! * [`depgraph`] — dependency-graph derivation with lemma caching
//!   (figs 2-2 … 2-4);
//! * [`versions`] — version & configuration management from mapping /
//!   refinement / choice decisions (§3.3.2, fig 3-4);
//! * [`navigate`] — status-, process- and temporally-oriented browsing
//!   of decision histories (§3.3.1);
//! * [`replay`] — decision replay and re-applicability testing
//!   ("revision support", §3.3);
//! * [`synth`] — seeded synthetic DAIDA-style histories at
//!   configurable scale, with backtracking / replay / navigation
//!   drivers (the E-3 workload machine);
//! * [`scenario`] — the §2.1 meeting-documents scenario as a reusable
//!   driver (used by the examples, the integration tests and the
//!   benches that regenerate figs 2-1 … 2-4 and 3-4).

pub mod conflict;
pub mod decisions;
pub mod depgraph;
pub mod error;
pub mod explain;
pub mod journal;
pub mod metamodel;
pub mod mvcc;
pub mod navigate;
pub mod persist;
pub mod recall;
pub mod replay;
pub mod scenario;
pub mod synth;
pub mod system;
pub mod versions;
pub mod views;

pub use decisions::{DecisionClass, DecisionDimension, Discharge, ToolSpec};
pub use error::{GkbmsError, GkbmsResult};
pub use journal::{CheckpointReport, FsyncPolicy, Journal, RecoveryReport};
pub use recall::RecallHit;
pub use system::{DecisionRequest, DecisionSummary, Gkbms};
pub use views::RegisteredView;
