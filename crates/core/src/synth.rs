//! Synthetic DAIDA-style design histories at configurable scale.
//!
//! The paper concedes that "current RMS can handle only fairly small
//! dependency networks efficiently" (§3.3.3) and proposes decision-
//! granularity abstraction as the fix — a claim that cannot be tested
//! against the §2.1 meeting scenario alone. This module is the
//! workload machine behind experiment E-3: a seeded, deterministic
//! generator emitting design histories with the four DAIDA decision
//! kinds (*distribute*, *move-down*, *normalize*, *key-substitution*),
//! configurable fan-out, refinement depth and retraction rate, plus
//! drivers that push backtracking, decision replay and 3-D history
//! navigation over the generated corpora.
//!
//! Two layers:
//! - [`plan`] is pure: it emits the decision stream as abstract
//!   object/decision indices, with no knowledge base behind it. The
//!   RMS benches build flat and decision-abstracted JTMS/ATMS networks
//!   straight from a plan, so labeling cost can be measured at
//!   million-decision scale without paying for KB bookkeeping.
//! - [`generate_into`] drives a real [`Gkbms`]: every planned step
//!   becomes a registered object, an executed decision or a selective
//!   retraction, producing a replayable, journaled history.

use crate::decisions::{DecisionClass, DecisionDimension, Discharge, ToolSpec};
use crate::error::GkbmsResult;
use crate::metamodel::kernel;
use crate::system::{DecisionRequest, Gkbms};

/// Deterministic splitmix64 generator — no dependencies, stable
/// across platforms, and cheap enough to sit inside the hot loop.
#[derive(Debug, Clone)]
pub struct SynthRng {
    state: u64,
}

impl SynthRng {
    /// A generator seeded with `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> SynthRng {
        SynthRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index below `n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

/// Relative weights of the four DAIDA decision kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionMix {
    /// Map an entity hierarchy by *distribute* (one relation per
    /// class).
    pub distribute: u32,
    /// Map by *move-down* (attributes pushed to the leaves).
    pub move_down: u32,
    /// Refine a relation to first normal form.
    pub normalize: u32,
    /// Substitute an associative key for a surrogate (a choice with a
    /// signed `keys-unique` obligation).
    pub key_subst: u32,
}

impl Default for DecisionMix {
    fn default() -> Self {
        DecisionMix {
            distribute: 3,
            move_down: 3,
            normalize: 2,
            key_subst: 2,
        }
    }
}

/// Shape of a generated history.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// RNG seed; identical seeds reproduce identical corpora.
    pub seed: u64,
    /// Number of executed decisions (retractions come on top).
    pub decisions: usize,
    /// Outputs per mapping decision.
    pub fanout: usize,
    /// Refinement chain length cap per object.
    pub max_depth: usize,
    /// Probability that a step retracts an effective decision instead
    /// of executing a new one.
    pub retraction_rate: f64,
    /// Decision-kind weights.
    pub mix: DecisionMix,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 42,
            decisions: 200,
            fanout: 3,
            max_depth: 4,
            retraction_rate: 0.05,
            mix: DecisionMix::default(),
        }
    }
}

/// The four decision kinds, as picked by the weighted mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Distribute-mapping of a fresh entity.
    Distribute,
    /// Move-down-mapping of a fresh entity.
    MoveDown,
    /// Normalization of a mapped relation.
    Normalize,
    /// Key substitution on a mapped relation.
    KeySubst,
}

impl Kind {
    fn pick(mix: &DecisionMix, rng: &mut SynthRng) -> Kind {
        let total = mix.distribute + mix.move_down + mix.normalize + mix.key_subst;
        let mut roll = (rng.next_u64() % u64::from(total.max(1))) as u32;
        for (kind, w) in [
            (Kind::Distribute, mix.distribute),
            (Kind::MoveDown, mix.move_down),
            (Kind::Normalize, mix.normalize),
            (Kind::KeySubst, mix.key_subst),
        ] {
            if roll < w {
                return kind;
            }
            roll -= w;
        }
        Kind::Distribute
    }
}

/// One step of a *pure* plan: abstract indices only, no KB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedOp {
    /// Execute a decision: consume `inputs` (object indices), create
    /// `outputs` fresh objects.
    Execute {
        /// The decision kind.
        kind: Kind,
        /// Indices of consumed objects.
        inputs: Vec<usize>,
        /// Indices of created objects (contiguous, ascending).
        outputs: Vec<usize>,
    },
    /// Retract decision number `decision` (an index into the executed
    /// prefix of the plan).
    Retract {
        /// Index of the retracted decision.
        decision: usize,
    },
}

/// A pure decision stream: `ops` over `objects` abstract objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The steps, in order.
    pub ops: Vec<PlannedOp>,
    /// Total number of abstract objects minted.
    pub objects: usize,
    /// Total number of executed decisions.
    pub decisions: usize,
}

impl Plan {
    /// An order-sensitive FNV-1a fingerprint of the stream, for cheap
    /// same-seed identity checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for op in &self.ops {
            match op {
                PlannedOp::Execute {
                    kind,
                    inputs,
                    outputs,
                } => {
                    eat(1 + *kind as u64);
                    for &i in inputs {
                        eat(i as u64);
                    }
                    eat(u64::MAX);
                    for &o in outputs {
                        eat(o as u64);
                    }
                }
                PlannedOp::Retract { decision } => {
                    eat(0);
                    eat(*decision as u64);
                }
            }
            eat(u64::MAX - 1);
        }
        h
    }
}

/// Emits the pure decision stream for `cfg`. Deterministic: equal
/// configs yield equal plans. Retractions target a uniformly sampled
/// not-yet-retracted decision (cascades are the RMS's business, not
/// the planner's).
pub fn plan(cfg: &SynthConfig) -> Plan {
    let mut rng = SynthRng::new(cfg.seed);
    let mut ops = Vec::new();
    let mut objects = 0usize;
    let mut decisions = 0usize;
    // (object, refinement depth) pool for normalize / key-subst.
    let mut refinable: Vec<(usize, usize)> = Vec::new();
    let mut retracted: Vec<bool> = Vec::new();
    let mint = |n: usize, objects: &mut usize| -> Vec<usize> {
        let out: Vec<usize> = (*objects..*objects + n).collect();
        *objects += n;
        out
    };
    while decisions < cfg.decisions {
        if decisions > 0 && rng.chance(cfg.retraction_rate) {
            // Sample a handful of candidates; skip if all retracted.
            let mut found = None;
            for _ in 0..8 {
                let d = rng.below(decisions);
                if !retracted[d] {
                    found = Some(d);
                    break;
                }
            }
            if let Some(d) = found {
                retracted[d] = true;
                ops.push(PlannedOp::Retract { decision: d });
                continue;
            }
        }
        let mut kind = Kind::pick(&cfg.mix, &mut rng);
        let deep_enough = |r: &[(usize, usize)]| r.iter().any(|&(_, d)| d < cfg.max_depth);
        if matches!(kind, Kind::Normalize | Kind::KeySubst) && !deep_enough(&refinable) {
            kind = Kind::MoveDown; // nothing to refine yet: map instead
        }
        let op = match kind {
            Kind::Distribute | Kind::MoveDown => {
                let entity = mint(1, &mut objects)[0];
                let outs = mint(cfg.fanout.max(1), &mut objects);
                for &o in &outs {
                    refinable.push((o, 1));
                }
                PlannedOp::Execute {
                    kind,
                    inputs: vec![entity],
                    outputs: outs,
                }
            }
            Kind::Normalize | Kind::KeySubst => {
                // Uniform pick among refinable objects below max depth.
                let at = loop {
                    let i = rng.below(refinable.len());
                    if refinable[i].1 < cfg.max_depth {
                        break i;
                    }
                };
                let (input, depth) = refinable[at];
                let n = if kind == Kind::Normalize { 3 } else { 1 };
                let outs = mint(n, &mut objects);
                refinable.push((outs[0], depth + 1));
                PlannedOp::Execute {
                    kind,
                    inputs: vec![input],
                    outputs: outs,
                }
            }
        };
        ops.push(op);
        retracted.push(false);
        decisions += 1;
    }
    Plan {
        ops,
        objects,
        decisions,
    }
}

/// One step of a *concrete* generated history, replayable into a
/// fresh [`Gkbms`] with [`apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthOp {
    /// Register a fresh TDL entity as a design object.
    Register {
        /// Object name.
        name: String,
    },
    /// Execute one decision.
    Execute {
        /// Decision class name.
        class: String,
        /// Decision instance name.
        name: String,
        /// Tool name.
        tool: String,
        /// Consumed design objects.
        inputs: Vec<String>,
        /// `(name, design-object class)` pairs created.
        outputs: Vec<(String, String)>,
        /// Whether a `keys-unique` signature discharge is attached.
        signed: bool,
    },
    /// Selectively retract a decision.
    Retract {
        /// Decision instance name.
        decision: String,
    },
}

/// A concrete generated history: the op stream actually executed
/// against the generating [`Gkbms`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    /// The seed it was generated from.
    pub seed: u64,
    /// The steps, in order.
    pub ops: Vec<SynthOp>,
}

impl History {
    /// Number of executed decisions.
    pub fn executed(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, SynthOp::Execute { .. }))
            .count()
    }

    /// Number of explicit retractions.
    pub fn retractions(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, SynthOp::Retract { .. }))
            .count()
    }

    /// Order-sensitive FNV-1a fingerprint over the rendered ops.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for op in &self.ops {
            for b in format!("{op:?}").bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

/// Decision-class and tool names installed by [`setup`].
pub mod names {
    /// Distribute-mapping decision class.
    pub const DISTRIBUTE: &str = "SynDistribute";
    /// Move-down-mapping decision class.
    pub const MOVE_DOWN: &str = "SynMoveDown";
    /// Normalization decision class.
    pub const NORMALIZE: &str = "SynNormalize";
    /// Key-substitution decision class.
    pub const KEY_SUBST: &str = "SynKeySubst";
    /// Automatic mapping tool (guarantees `complete-mapping`).
    pub const MAPPER: &str = "SynMapper";
    /// Automatic normalizer (guarantees `normalized`).
    pub const NORMALIZER: &str = "SynNormalizer";
    /// Manual key editor (obligation discharged by signature).
    pub const KEY_EDITOR: &str = "SynKeyEditor";
    /// The deciding agent.
    pub const AGENT: &str = "synth";
}

/// Installs the synthetic decision classes and tools into `g` — the
/// DAIDA middle layer the generator executes against. Idempotent
/// setup is not attempted: call once on a fresh system.
pub fn setup(g: &mut Gkbms) -> GkbmsResult<()> {
    g.define_decision_class(
        DecisionClass::new(names::DISTRIBUTE, DecisionDimension::Mapping)
            .from_classes(&[kernel::TDL_ENTITY_CLASS])
            .to_classes(&[kernel::DBPL_REL])
            .precondition("x in TDL_EntityClass")
            .obligation("complete-mapping", "every selected entity class is mapped"),
    )?;
    g.define_decision_class(
        DecisionClass::new(names::MOVE_DOWN, DecisionDimension::Mapping)
            .from_classes(&[kernel::TDL_ENTITY_CLASS])
            .to_classes(&[kernel::DBPL_REL])
            .precondition("x in TDL_EntityClass")
            .obligation("complete-mapping", "every selected entity class is mapped"),
    )?;
    g.define_decision_class(
        DecisionClass::new(names::NORMALIZE, DecisionDimension::Refinement)
            .from_classes(&[kernel::DBPL_REL])
            .to_classes(&[
                kernel::NORMALIZED_DBPL_REL,
                kernel::DBPL_SELECTOR,
                kernel::DBPL_CONSTRUCTOR,
            ])
            .obligation("normalized", "outputs are 1NF relations with correct keys"),
    )?;
    g.define_decision_class(
        DecisionClass::new(names::KEY_SUBST, DecisionDimension::Choice)
            .from_classes(&[kernel::DBPL_REL])
            .to_classes(&[kernel::DBPL_REL])
            .obligation(
                "keys-unique",
                "the chosen key identifies objects across the whole hierarchy",
            ),
    )?;
    g.register_tool(
        ToolSpec::new(names::MAPPER, true)
            .executes(names::DISTRIBUTE)
            .executes(names::MOVE_DOWN)
            .guarantees("complete-mapping"),
    )?;
    g.register_tool(
        ToolSpec::new(names::NORMALIZER, true)
            .executes(names::NORMALIZE)
            .guarantees("normalized"),
    )?;
    g.register_tool(ToolSpec::new(names::KEY_EDITOR, false).executes(names::KEY_SUBST))?;
    Ok(())
}

/// Generates a history for `cfg` *into* `g` (which must be fresh):
/// installs the classes and tools, then realizes the pure plan as
/// registered objects, executed decisions and selective retractions.
/// Returns the concrete op stream, replayable with [`apply`].
pub fn generate_into(g: &mut Gkbms, cfg: &SynthConfig) -> GkbmsResult<History> {
    setup(g)?;
    let p = plan(cfg);
    let mut ops = Vec::with_capacity(p.ops.len());
    // Planned object index -> concrete name and design-object class.
    // Pre-sized: a skipped decision (input lost to a retraction
    // cascade) leaves its planned outputs as empty names, and later
    // refinements over them are skipped by the currency check below.
    let mut obj: Vec<(String, String)> = vec![(String::new(), String::new()); p.objects];
    let mut decision_names: Vec<String> = Vec::with_capacity(p.decisions);
    for planned in &p.ops {
        match planned {
            PlannedOp::Retract { decision } => {
                let name = decision_names[*decision].clone();
                // Cascades may have retracted it already; the planner
                // cannot see cascades, so skip silently.
                if !g.is_effective(&name) {
                    continue;
                }
                g.retract_decision(&name)?;
                ops.push(SynthOp::Retract { decision: name });
                obs::counter!(
                    "gkbms_synth_retractions_total",
                    "Selective retractions issued by the synthetic generator"
                )
                .inc();
            }
            PlannedOp::Execute {
                kind,
                inputs,
                outputs,
            } => {
                let d = decision_names.len();
                let dname = format!("syn{d}");
                let (class, tool) = match kind {
                    Kind::Distribute => (names::DISTRIBUTE, names::MAPPER),
                    Kind::MoveDown => (names::MOVE_DOWN, names::MAPPER),
                    Kind::Normalize => (names::NORMALIZE, names::NORMALIZER),
                    Kind::KeySubst => (names::KEY_SUBST, names::KEY_EDITOR),
                };
                let mut in_names = Vec::with_capacity(inputs.len());
                for &i in inputs {
                    if matches!(kind, Kind::Distribute | Kind::MoveDown) {
                        // Mapping inputs are fresh entities: register.
                        let ename = format!("SynE{i}");
                        g.register_object(
                            &ename,
                            kernel::TDL_ENTITY_CLASS,
                            &format!("design.tdl#{ename}"),
                        )?;
                        ops.push(SynthOp::Register {
                            name: ename.clone(),
                        });
                        obj[i] = (ename.clone(), kernel::TDL_ENTITY_CLASS.to_string());
                        in_names.push(ename);
                    } else {
                        in_names.push(obj[i].0.clone());
                    }
                }
                // A retraction cascade may have taken a planned input
                // out from under a refinement: skip the decision, the
                // plan index is burned (mirrors a designer whose
                // working object vanished).
                if !in_names.iter().all(|n| g.is_current(n)) {
                    decision_names.push(dname);
                    continue;
                }
                let mut out_pairs = Vec::with_capacity(outputs.len());
                for (k, &o) in outputs.iter().enumerate() {
                    let (oname, oclass) = match kind {
                        Kind::Distribute | Kind::MoveDown => (format!("SynR{o}"), kernel::DBPL_REL),
                        Kind::Normalize => match k {
                            0 => (format!("SynN{o}"), kernel::NORMALIZED_DBPL_REL),
                            1 => (format!("SynS{o}"), kernel::DBPL_SELECTOR),
                            _ => (format!("SynC{o}"), kernel::DBPL_CONSTRUCTOR),
                        },
                        Kind::KeySubst => (format!("SynK{o}"), kernel::DBPL_REL),
                    };
                    obj[o] = (oname.clone(), oclass.to_string());
                    out_pairs.push((oname, oclass.to_string()));
                }
                let mut req = DecisionRequest::new(class, &dname, names::AGENT).with_tool(tool);
                for i in &in_names {
                    req = req.input(i);
                }
                for (o, c) in &out_pairs {
                    req = req.output(o, c);
                }
                let signed = *kind == Kind::KeySubst;
                if signed {
                    req = req.discharge(Discharge::Signature {
                        obligation: "keys-unique".into(),
                        by: names::AGENT.into(),
                    });
                }
                g.execute(req)?;
                ops.push(SynthOp::Execute {
                    class: class.to_string(),
                    name: dname.clone(),
                    tool: tool.to_string(),
                    inputs: in_names,
                    outputs: out_pairs,
                    signed,
                });
                decision_names.push(dname);
                obs::counter!(
                    "gkbms_synth_decisions_total",
                    "Decisions executed by the synthetic generator"
                )
                .inc();
            }
        }
    }
    Ok(History {
        seed: cfg.seed,
        ops,
    })
}

/// Replays a concrete history into a fresh [`Gkbms`]: installs the
/// classes and tools, then re-executes every op serially. The final
/// state is byte-identical with the generating system's (the replay-
/// equivalence property the proptests pin down).
pub fn apply(g: &mut Gkbms, history: &History) -> GkbmsResult<()> {
    setup(g)?;
    for op in &history.ops {
        match op {
            SynthOp::Register { name } => {
                g.register_object(
                    name,
                    kernel::TDL_ENTITY_CLASS,
                    &format!("design.tdl#{name}"),
                )?;
            }
            SynthOp::Execute {
                class,
                name,
                tool,
                inputs,
                outputs,
                signed,
            } => {
                let mut req = DecisionRequest::new(class, name, names::AGENT).with_tool(tool);
                for i in inputs {
                    req = req.input(i);
                }
                for (o, c) in outputs {
                    req = req.output(o, c);
                }
                if *signed {
                    req = req.discharge(Discharge::Signature {
                        obligation: "keys-unique".into(),
                        by: names::AGENT.into(),
                    });
                }
                g.execute(req)?;
            }
            SynthOp::Retract { decision } => {
                g.retract_decision(decision)?;
            }
        }
    }
    Ok(())
}

/// Counters from one navigation sweep over a generated corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NavReport {
    /// Rows of the status-oriented view.
    pub status_rows: usize,
    /// Rows of the process-oriented view.
    pub process_rows: usize,
    /// Total causal-chain hops over the sampled objects.
    pub causal_hops: usize,
    /// Objects alive at the sampled past version.
    pub version_objects: usize,
    /// Events across the sampled objects' histories.
    pub history_events: usize,
}

/// Sweeps all three navigation dimensions (§3.3.1) over `g`: the
/// status and process views in full, and `samples` randomly chosen
/// current objects for causal chains, per-object histories and one
/// past-version (temporal) cut.
pub fn sweep_navigation(g: &Gkbms, rng: &mut SynthRng, samples: usize) -> GkbmsResult<NavReport> {
    let mut report = NavReport {
        status_rows: g.status_view().len(),
        process_rows: g.process_view().len(),
        ..NavReport::default()
    };
    let current = g.current_objects();
    if !current.is_empty() {
        for _ in 0..samples {
            let name = &current[rng.below(current.len())];
            report.causal_hops += g.causal_chain(name)?.len();
            report.history_events += g.object_history(name)?.len();
        }
    }
    // One temporal cut at a uniformly sampled past tick.
    let now = g.kb().now();
    if now > 0 {
        let t = rng.below(now as usize) as i64 + 1;
        report.version_objects = g.objects_at(t).len();
    }
    obs::counter!(
        "gkbms_synth_nav_sweeps_total",
        "Navigation sweeps driven over synthetic corpora"
    )
    .inc();
    Ok(report)
}

/// Counters from one backtracking-and-replay drive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BacktrackReport {
    /// Decisions selectively retracted.
    pub retracted: usize,
    /// Objects taken out by those retractions (incl. cascades).
    pub objects_taken_out: usize,
    /// Retracted decisions successfully replayed under a new name.
    pub replayed: usize,
    /// Objects re-created by the replays.
    pub objects_recreated: usize,
}

/// Drives `rounds` of selective backtracking over `g`: retract a
/// sampled effective decision, then immediately test the retracted
/// decision for re-applicability and replay it when possible — the
/// §3.3 revision-support loop, at generator scale.
pub fn drive_backtracking(
    g: &mut Gkbms,
    rng: &mut SynthRng,
    rounds: usize,
) -> GkbmsResult<BacktrackReport> {
    let mut report = BacktrackReport::default();
    for round in 0..rounds {
        let total = g.records().len();
        if total == 0 {
            break;
        }
        let mut picked = None;
        for _ in 0..16 {
            let i = rng.below(total);
            let name = g.records()[i].name.clone();
            if g.is_effective(&name) {
                picked = Some(name);
                break;
            }
        }
        let Some(name) = picked else { continue };
        let affected = g.retract_decision(&name)?;
        report.retracted += 1;
        report.objects_taken_out += affected.len();
        if let crate::replay::Replayability::Replayable = g.replayability(&name)? {
            let created = g.replay_decision(&name, &format!("{name}r{round}"))?;
            report.replayed += 1;
            report.objects_recreated += created.len();
        }
    }
    obs::counter!(
        "gkbms_synth_backtrack_rounds_total",
        "Backtracking rounds driven over synthetic corpora"
    )
    .add(rounds as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig {
            seed: 7,
            decisions: 60,
            fanout: 2,
            max_depth: 3,
            retraction_rate: 0.1,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SynthRng::new(99);
        let mut b = SynthRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SynthRng::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn plan_is_deterministic_and_scaled() {
        let cfg = small();
        let p1 = plan(&cfg);
        let p2 = plan(&cfg);
        assert_eq!(p1, p2);
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        assert_eq!(p1.decisions, cfg.decisions);
        let other = plan(&SynthConfig {
            seed: 8,
            ..cfg.clone()
        });
        assert_ne!(p1.fingerprint(), other.fingerprint());
    }

    #[test]
    fn plan_respects_mix_extremes() {
        let cfg = SynthConfig {
            mix: DecisionMix {
                distribute: 1,
                move_down: 0,
                normalize: 0,
                key_subst: 0,
            },
            retraction_rate: 0.0,
            decisions: 20,
            ..SynthConfig::default()
        };
        let p = plan(&cfg);
        assert!(p.ops.iter().all(|op| matches!(
            op,
            PlannedOp::Execute {
                kind: Kind::Distribute,
                ..
            }
        )));
    }

    #[test]
    fn generate_into_executes_the_plan() {
        let mut g = Gkbms::new().unwrap();
        let h = generate_into(&mut g, &small()).unwrap();
        assert!(h.executed() > 0);
        assert!(h.retractions() > 0, "retraction rate 0.1 over 60 steps");
        assert_eq!(
            g.records().len(),
            g.records()
                .iter()
                .map(|r| &r.name)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            "decision names unique"
        );
        // The corpus contains all four kinds... or at least mapping and
        // one refinement kind at this size.
        assert!(h
            .ops
            .iter()
            .any(|op| matches!(op, SynthOp::Execute { class, .. } if class == names::NORMALIZE)));
    }

    #[test]
    fn same_seed_same_history_and_state() {
        let cfg = small();
        let mut g1 = Gkbms::new().unwrap();
        let mut g2 = Gkbms::new().unwrap();
        let h1 = generate_into(&mut g1, &cfg).unwrap();
        let h2 = generate_into(&mut g2, &cfg).unwrap();
        assert_eq!(h1, h2);
        assert_eq!(h1.fingerprint(), h2.fingerprint());
    }

    #[test]
    fn apply_replays_to_equivalent_state() {
        let cfg = small();
        let mut g1 = Gkbms::new().unwrap();
        let h = generate_into(&mut g1, &cfg).unwrap();
        let mut g2 = Gkbms::new().unwrap();
        apply(&mut g2, &h).unwrap();
        assert_eq!(g1.records().len(), g2.records().len());
        assert_eq!(g1.current_objects(), g2.current_objects());
        assert_eq!(g1.kb().len(), g2.kb().len());
    }

    #[test]
    fn navigation_sweep_reports_nonzero() {
        let mut g = Gkbms::new().unwrap();
        generate_into(&mut g, &small()).unwrap();
        let mut rng = SynthRng::new(1);
        let nav = sweep_navigation(&g, &mut rng, 8).unwrap();
        assert!(nav.status_rows > 0);
        assert!(nav.process_rows > 0);
        assert!(nav.history_events > 0);
        assert!(nav.version_objects > 0);
    }

    #[test]
    fn backtracking_drive_retracts_and_replays() {
        let mut g = Gkbms::new().unwrap();
        generate_into(&mut g, &small()).unwrap();
        let mut rng = SynthRng::new(2);
        let report = drive_backtracking(&mut g, &mut rng, 6).unwrap();
        assert!(report.retracted > 0);
        assert!(report.objects_taken_out > 0);
        assert!(report.replayed > 0, "at least one retraction replays");
    }
}
