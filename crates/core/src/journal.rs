//! Continuous durability: the live write-ahead journal.
//!
//! [`Gkbms::save`] is a stop-the-world full rewrite — fine for an
//! explicit `\save`, wrong as the only durability story of a
//! documentation service whose charter is "nothing is ever
//! destructively deleted". Journal mode closes the gap:
//!
//! * every committed mutation (definition, registration, execution,
//!   explicit retraction, raw TELL/UNTELL, nogood) appends one op
//!   record — the same encoding `save` uses — to a live WAL at commit
//!   time;
//! * [`Gkbms::checkpoint`] compacts the history into a snapshot
//!   written crash-atomically and truncates the WAL;
//! * [`Gkbms::recover`] loads the snapshot (if any) and replays the
//!   WAL tail, tolerating a torn final record.
//!
//! The journal makes no fsync decisions of its own beyond flushing
//! each record into the OS: *when* to fsync (per op, batched group
//! commit, or never) is the caller's policy — see [`FsyncPolicy`] and
//! the server's group-commit implementation.
//!
//! Durability invariant: after `fsync` of the WAL has returned, every
//! op appended before it survives any crash; recovery restores a
//! prefix of the committed op sequence — never a subset with holes.

use crate::error::{GkbmsError, GkbmsResult};
use crate::persist;
use crate::system::Gkbms;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use storage::log::TailState;
use storage::record::codec::{self, Cursor};
use storage::{AppendLog, StorageResult};

/// File name of the checkpoint snapshot inside a journal directory.
pub const SNAPSHOT_FILE: &str = "snapshot";
/// File name of the write-ahead log inside a journal directory.
pub const WAL_FILE: &str = "wal";

/// When WAL appends are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before acknowledging every mutation — strict per-op
    /// durability, one fsync per write.
    Always,
    /// Group commit: a leader batches one fsync over all mutations
    /// appended since the last one, after waiting up to the given
    /// interval for more to accumulate (zero = no added latency,
    /// batching only what arrives during the previous fsync).
    Group(Duration),
    /// Never fsync on the write path; durability only at checkpoints
    /// and clean shutdown.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`/`none`, `group` or `group:<millis>`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" | "none" => Ok(FsyncPolicy::Never),
            "group" => Ok(FsyncPolicy::Group(Duration::ZERO)),
            _ => match s.strip_prefix("group:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Group(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad group interval `{ms}`")),
                None => Err(format!(
                    "unknown fsync policy `{s}` (expected always, group[:ms] or none)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Group(d) => write!(f, "group:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "none"),
        }
    }
}

/// What [`Gkbms::recover`] found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// A checkpoint snapshot was present and loaded.
    pub snapshot_loaded: bool,
    /// Ops replayed from the WAL tail.
    pub replayed_ops: u64,
    /// Stale WAL ops dropped because the snapshot already covered them
    /// — the leftovers of a checkpoint that crashed after publishing
    /// its snapshot but before truncating the WAL. Recovery completes
    /// the truncation instead of double-applying them.
    pub skipped_ops: u64,
    /// A torn final WAL record was truncated away.
    pub wal_truncated: bool,
    /// Wall-clock time of the whole recovery.
    pub elapsed: Duration,
}

/// What [`Gkbms::checkpoint`] did.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// WAL ops compacted into the snapshot (and truncated away).
    pub compacted_ops: u64,
    /// Total ops appended to the journal over its lifetime — after the
    /// checkpoint, every one of them is durable.
    pub appended_ops: u64,
    /// Wall-clock time of the checkpoint.
    pub elapsed: Duration,
}

/// The live write-ahead journal attached to a [`Gkbms`].
pub struct Journal {
    dir: PathBuf,
    wal: AppendLog,
    /// Total ops appended over the journal's lifetime (monotonic even
    /// across checkpoint truncations) — group commit tracks durability
    /// in this sequence, not in byte offsets, precisely because
    /// checkpoints reset the WAL's byte length.
    appended_ops: u64,
    /// Ops appended since the last checkpoint (== records in the WAL).
    ops_since_checkpoint: u64,
}

impl Journal {
    /// Opens the WAL with zeroed op counters; [`Gkbms::recover`] sets
    /// them from the sequence numbers found in the snapshot and WAL.
    fn open_in(dir: &Path) -> StorageResult<Journal> {
        let wal = AppendLog::open(dir.join(WAL_FILE))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            wal,
            appended_ops: 0,
            ops_since_checkpoint: 0,
        })
    }

    /// Appends one op record and flushes it into the OS page cache (no
    /// fsync — that is the caller's fsync policy).
    fn append(&mut self, epoch: u64, payload: &[u8]) -> StorageResult<()> {
        let seq = self.appended_ops + 1;
        self.append_framed(seq, epoch, payload)?;
        // Counters move with the buffered append, not the flush: once
        // the record is in the writer (and possibly in the file), a
        // failed flush must not let the op sequence drift from it.
        self.appended_ops = seq;
        self.ops_since_checkpoint += 1;
        obs::counter!(
            "gkbms_journal_appends_total",
            "Mutations appended to the write-ahead journal"
        )
        .inc();
        self.wal.flush()?;
        Ok(())
    }

    /// Appends a record shipped from a replication leader, preserving
    /// its sequence number and epoch so the replica's WAL stays
    /// byte-identical to the leader's. The record must be the direct
    /// successor of the last appended op.
    pub fn append_replicated(&mut self, seq: u64, epoch: u64, payload: &[u8]) -> StorageResult<()> {
        debug_assert_eq!(seq, self.appended_ops + 1, "replicated append out of order");
        self.append_framed(seq, epoch, payload)?;
        self.appended_ops = seq;
        self.ops_since_checkpoint += 1;
        obs::counter!(
            "gkbms_journal_appends_total",
            "Mutations appended to the write-ahead journal"
        )
        .inc();
        self.wal.flush()?;
        Ok(())
    }

    /// Appends one WAL record framed with its journal op sequence
    /// number and sequence epoch. The sequence is what lets recovery
    /// tell records a checkpoint snapshot already covers from genuinely
    /// newer ones; the epoch is what lets the replication applier fence
    /// off records written by a deposed leader.
    fn append_framed(&mut self, seq: u64, epoch: u64, payload: &[u8]) -> StorageResult<()> {
        self.wal.append(&encode_framed(seq, epoch, payload))?;
        Ok(())
    }

    /// Byte offset of the next WAL append — the position a replication
    /// tail reader resumes from when it has consumed the whole log.
    pub fn wal_byte_len(&self) -> u64 {
        self.wal.byte_len()
    }

    /// Path of the WAL file, for read-only tailing by the replication
    /// shipper.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Path of the checkpoint snapshot file (which may not exist yet),
    /// for snapshot transfer to a far-behind replica.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// fsyncs the WAL, making every appended op durable.
    pub fn sync(&mut self) -> StorageResult<()> {
        let start = Instant::now();
        self.wal.sync()?;
        obs::histogram!(
            "gkbms_journal_fsync_seconds",
            "Latency of WAL fsyncs (per-op and group-commit)"
        )
        .observe(start.elapsed());
        Ok(())
    }

    /// A cloned handle to the WAL file, for fsyncing outside the
    /// writer's lock (group commit). The handle shares the open file
    /// description with the journal, so it stays valid across
    /// checkpoint truncations.
    pub fn file(&mut self) -> StorageResult<File> {
        self.wal.file()
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total ops appended over the journal's lifetime.
    pub fn appended_ops(&self) -> u64 {
        self.appended_ops
    }

    /// Ops appended since the last checkpoint.
    pub fn ops_since_checkpoint(&self) -> u64 {
        self.ops_since_checkpoint
    }
}

/// Frames an op payload with its journal sequence number and epoch —
/// the exact bytes [`Journal`] appends to the WAL, exposed so a
/// replica can reproduce the leader's WAL byte-for-byte.
pub fn encode_framed(seq: u64, epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(16 + payload.len());
    codec::put_u64(&mut framed, seq);
    codec::put_u64(&mut framed, epoch);
    framed.extend_from_slice(payload);
    framed
}

/// Splits a framed WAL record into its op sequence number, sequence
/// epoch and payload.
pub fn decode_framed(bytes: &[u8]) -> StorageResult<(u64, u64, &[u8])> {
    let mut c = Cursor::new(bytes);
    let seq = c.get_u64()?;
    let epoch = c.get_u64()?;
    Ok((seq, epoch, &bytes[16..]))
}

impl Gkbms {
    /// Opens (or creates) the journal directory `dir` and recovers the
    /// GKBMS from it: loads the checkpoint snapshot if one exists,
    /// replays the WAL tail (truncating a torn final record), then
    /// attaches the journal so every further committed mutation is
    /// appended at commit time.
    pub fn recover(dir: impl AsRef<Path>) -> GkbmsResult<(Gkbms, RecoveryReport)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| telos::TelosError::Storage(storage::StorageError::Io(e)))?;
        let start = Instant::now();
        let snap = dir.join(SNAPSHOT_FILE);
        let snapshot_loaded = snap.exists();
        let mut g = if snapshot_loaded {
            Gkbms::load(&snap)?
        } else {
            Gkbms::new()?
        };
        // WAL records at or below the snapshot's covered op sequence
        // are the leftovers of a checkpoint that crashed between
        // publishing its snapshot and truncating the WAL — the snapshot
        // already holds them, so replaying them would double-apply.
        let covered = g.snapshot_covers;
        let mut journal = Journal::open_in(dir).map_err(telos::TelosError::Storage)?;
        let wal_truncated = matches!(journal.wal.tail_state(), TailState::TruncatedAt(_));
        let framed: Vec<Vec<u8>> = journal
            .wal
            .iter()
            .map_err(telos::TelosError::Storage)?
            .collect::<Result<Vec<_>, _>>()
            .map_err(telos::TelosError::Storage)?
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let mut skipped = 0u64;
        let mut replayed_ops = 0u64;
        let mut last_seq = covered;
        for f in &framed {
            let (seq, epoch, payload) = decode_framed(f).map_err(telos::TelosError::Storage)?;
            // The epoch of every frame counts, even skipped ones: the
            // snapshot may predate a promotion whose records the WAL
            // still holds.
            g.epoch = g.epoch.max(epoch);
            if seq <= covered {
                skipped += 1;
                continue;
            }
            // Replay with the journal still detached: re-applying an op
            // must not re-append it.
            persist::apply_record(&mut g, payload)?;
            last_seq = last_seq.max(seq);
            replayed_ops += 1;
        }
        journal.appended_ops = last_seq;
        journal.ops_since_checkpoint = replayed_ops;
        g.replica_applied = last_seq;
        if skipped > 0 && replayed_ops == 0 {
            // Complete the interrupted checkpoint by finishing its
            // truncation. Only safe when every record is covered (the
            // only state an interrupted checkpoint can leave, since it
            // holds the writer): rewriting a WAL that still has live
            // records would open its own crash window. A mixed WAL is
            // left in place — replay skips covered records per record,
            // and the next checkpoint truncates them.
            journal
                .wal
                .truncate_all()
                .map_err(telos::TelosError::Storage)?;
        }
        g.journal = Some(journal);
        let report = RecoveryReport {
            snapshot_loaded,
            replayed_ops,
            skipped_ops: skipped,
            wal_truncated,
            elapsed: start.elapsed(),
        };
        obs::counter!(
            "gkbms_recovery_replayed_ops_total",
            "WAL ops replayed during journal recovery"
        )
        .add(report.replayed_ops);
        obs::histogram!(
            "gkbms_recovery_replay_seconds",
            "Wall-clock time of journal recovery (snapshot load + WAL replay)"
        )
        .observe(report.elapsed);
        Ok((g, report))
    }

    /// Compacts the journal: writes the full history as a snapshot
    /// (crash-atomically: temp file, fsync, rename, directory fsync)
    /// and truncates the WAL. The snapshot's leading coverage record
    /// names the op sequence it holds, so the rename alone commits the
    /// checkpoint — a crash before the truncation leaves WAL records
    /// the snapshot covers, which recovery drops instead of replaying.
    /// After a checkpoint every op ever appended is durable regardless
    /// of fsync policy. Errors if no journal is attached.
    pub fn checkpoint(&mut self) -> GkbmsResult<CheckpointReport> {
        let (dir, covered) = match &self.journal {
            Some(j) => (j.dir.clone(), j.appended_ops),
            None => {
                return Err(GkbmsError::Unknown(
                    "checkpoint requested but no journal is attached".into(),
                ))
            }
        };
        let start = Instant::now();
        self.save_snapshot(&dir.join(SNAPSHOT_FILE), covered)?;
        let j = self.journal.as_mut().expect("journal checked above");
        let compacted = j.ops_since_checkpoint;
        j.wal.truncate_all().map_err(telos::TelosError::Storage)?;
        j.ops_since_checkpoint = 0;
        let report = CheckpointReport {
            compacted_ops: compacted,
            appended_ops: j.appended_ops,
            elapsed: start.elapsed(),
        };
        obs::counter!(
            "gkbms_checkpoints_total",
            "Journal checkpoints (snapshot + WAL truncation)"
        )
        .inc();
        obs::histogram!(
            "gkbms_checkpoint_seconds",
            "Wall-clock time of journal checkpoints"
        )
        .observe(report.elapsed);
        Ok(report)
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Mutable access to the attached journal (fsync, file handles).
    pub fn journal_mut(&mut self) -> Option<&mut Journal> {
        self.journal.as_mut()
    }

    /// Appends an encoded op to the journal, if one is attached.
    /// Called by every mutation method at its commit point.
    pub(crate) fn journal_append(&mut self, payload: Vec<u8>) -> GkbmsResult<()> {
        let epoch = self.epoch;
        if let Some(j) = self.journal.as_mut() {
            j.append(epoch, &payload)
                .map_err(telos::TelosError::Storage)?;
        }
        Ok(())
    }

    /// Applies one record shipped from a replication leader: replays
    /// the op through the standard replay path and appends the original
    /// frame (same sequence, same epoch) to the local journal, if one
    /// is attached. Sequence/epoch admission checks are the replication
    /// applier's job — this method trusts its caller and only keeps the
    /// applied position and epoch consistent.
    pub fn apply_replicated(&mut self, seq: u64, epoch: u64, payload: &[u8]) -> GkbmsResult<()> {
        // Replay with the journal detached so ops that journal
        // themselves (everything except nogoods) don't append under a
        // fresh sequence number; the shipped frame is appended
        // verbatim below, keeping replica WALs byte-identical to the
        // leader's.
        let journal = self.journal.take();
        let applied = persist::apply_record(self, payload);
        self.journal = journal;
        applied?;
        self.epoch = self.epoch.max(epoch);
        self.replica_applied = seq;
        if let Some(j) = self.journal.as_mut() {
            j.append_replicated(seq, epoch, payload)
                .map_err(telos::TelosError::Storage)?;
        }
        Ok(())
    }

    /// Installs a snapshot stream shipped by a replication leader into
    /// `dir` and recovers from it: the payloads (a coverage record
    /// followed by the full history, exactly the layout of a checkpoint
    /// snapshot file) are written crash-atomically as `dir/snapshot`,
    /// any stale local WAL is removed, and the result is opened via
    /// [`Gkbms::recover`]. The returned instance is positioned at the
    /// snapshot's covered sequence, ready to apply the WAL tail the
    /// leader ships next.
    pub fn install_replica_snapshot(
        dir: impl AsRef<Path>,
        payloads: Vec<Vec<u8>>,
    ) -> GkbmsResult<(Gkbms, RecoveryReport)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| telos::TelosError::Storage(storage::StorageError::Io(e)))?;
        Gkbms::write_payloads_atomic(&dir.join(SNAPSHOT_FILE), payloads)?;
        // The local WAL (if any) predates the snapshot we were just
        // shipped — a replica only falls back to snapshot transfer when
        // its own log is behind the leader's truncation horizon, so the
        // stale records are covered and must not replay over it.
        let wal = dir.join(WAL_FILE);
        if wal.exists() {
            std::fs::remove_file(&wal)
                .map_err(|e| telos::TelosError::Storage(storage::StorageError::Io(e)))?;
        }
        Gkbms::recover(dir)
    }

    /// Builds a journal-less replica directly from a shipped snapshot
    /// stream: replays the payloads into a fresh instance without
    /// touching disk. Used by followers running without `--journal`.
    pub fn replica_from_snapshot(payloads: &[Vec<u8>]) -> GkbmsResult<Gkbms> {
        let mut g = Gkbms::new()?;
        for p in payloads {
            persist::apply_record(&mut g, p)?;
        }
        g.replica_applied = g.snapshot_covers;
        Ok(g)
    }

    /// Promotes this instance to leader of a new sequence epoch: bumps
    /// the epoch and seals the journal with a durable epoch marker (the
    /// promotion point survives a crash even before the first
    /// post-promotion write). Records framed under any older epoch are
    /// refused by replication applier fencing from here on. Returns the
    /// new epoch.
    pub fn promote(&mut self) -> GkbmsResult<u64> {
        self.epoch += 1;
        let epoch = self.epoch;
        self.journal_append(persist::encode_seal(epoch))?;
        if let Some(j) = self.journal.as_mut() {
            j.sync().map_err(telos::TelosError::Storage)?;
        }
        obs::counter!(
            "gkbms_replication_promotions_total",
            "Replica promotions to leader (epoch bumps)"
        )
        .inc();
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use crate::system::DecisionRequest;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// A journaled GKBMS seeded with the scenario schema (which is
    /// itself journaled, op by op, as it is defined).
    fn journaled_scenario(dir: &Path) -> Gkbms {
        let (mut g, report) = Gkbms::recover(dir).unwrap();
        assert_eq!(report.replayed_ops, 0);
        assert!(!report.snapshot_loaded);
        // Replay the scenario definitions through the journaled
        // instance so they are captured as ops.
        let donor = scenario_gkbms();
        for p in donor.history_payloads() {
            persist::apply_record(&mut g, &p).unwrap();
        }
        g
    }

    #[test]
    fn mutations_survive_without_explicit_save() {
        let dir = tmp_dir("basic");
        {
            let mut g = journaled_scenario(&dir);
            g.register_object(
                "Invitation",
                kernel::TDL_ENTITY_CLASS,
                "design.tdl#Invitation",
            )
            .unwrap();
            g.execute(
                DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                    .with_tool("TDL-DBPL-Mapper")
                    .input("Invitation")
                    .output("InvitationRel", kernel::DBPL_REL),
            )
            .unwrap();
            g.tell_src("TELL AdHoc end").unwrap();
            g.journal_mut().unwrap().sync().unwrap();
            // No save(): the process "crashes" here.
        }
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.replayed_ops > 0);
        assert!(g.is_effective("mapInvitations"));
        assert!(g.kb().lookup("AdHoc").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_preserves_history() {
        let dir = tmp_dir("checkpoint");
        {
            let mut g = journaled_scenario(&dir);
            g.register_object(
                "Invitation",
                kernel::TDL_ENTITY_CLASS,
                "design.tdl#Invitation",
            )
            .unwrap();
            let before = g.journal().unwrap().ops_since_checkpoint();
            assert!(before > 0);
            let report = g.checkpoint().unwrap();
            assert_eq!(report.compacted_ops, before);
            assert_eq!(g.journal().unwrap().ops_since_checkpoint(), 0);
            // Post-checkpoint mutations land in the (fresh) WAL.
            g.tell_src("TELL AfterCheckpoint end").unwrap();
            g.journal_mut().unwrap().sync().unwrap();
            assert_eq!(g.journal().unwrap().ops_since_checkpoint(), 1);
        }
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed_ops, 1);
        assert!(g.kb().lookup("Invitation").is_some(), "from snapshot");
        assert!(g.kb().lookup("AfterCheckpoint").is_some(), "from WAL tail");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_tolerated() {
        let dir = tmp_dir("torn");
        {
            let mut g = journaled_scenario(&dir);
            g.tell_src("TELL Kept end").unwrap();
            g.journal_mut().unwrap().sync().unwrap();
            g.tell_src("TELL Doomed end").unwrap();
            g.journal_mut().unwrap().sync().unwrap();
        }
        // Crash mid-append of the last record.
        let wal = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal).unwrap().len();
        storage::crash::truncate_in_place(&wal, len - 3).unwrap();
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.wal_truncated);
        assert!(g.kb().lookup("Kept").is_some());
        assert!(g.kb().lookup("Doomed").is_none());
        // The journal is immediately usable for new writes.
        let mut g = g;
        g.tell_src("TELL PostCrash end").unwrap();
        g.journal_mut().unwrap().sync().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promote_bumps_epoch_durably_without_further_writes() {
        let dir = tmp_dir("promote");
        {
            let mut g = journaled_scenario(&dir);
            assert_eq!(g.epoch(), 1);
            g.tell_src("TELL Before end").unwrap();
            assert_eq!(g.promote().unwrap(), 2);
            // Crash here: the seal record alone must carry the epoch.
        }
        let (g, _) = Gkbms::recover(&dir).unwrap();
        assert_eq!(g.epoch(), 2);
        assert!(g.kb().lookup("Before").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_snapshot_preserves_epoch() {
        let dir = tmp_dir("ckpt-epoch");
        {
            let mut g = journaled_scenario(&dir);
            g.tell_src("TELL Kept end").unwrap();
            g.promote().unwrap();
            g.checkpoint().unwrap();
            // The WAL is now empty: the epoch must live in the
            // snapshot's coverage record.
        }
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(g.epoch(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replicated_apply_reproduces_leader_wal_bytes() {
        let ldir = tmp_dir("repl-leader");
        let fdir = tmp_dir("repl-follower");
        let mut leader = Gkbms::recover(&ldir).unwrap().0;
        leader.tell_src("TELL Paper end").unwrap();
        leader.tell_src("TELL p1 in Paper end").unwrap();
        leader.journal_mut().unwrap().sync().unwrap();
        let mut follower = Gkbms::recover(&fdir).unwrap().0;
        let mut wal = AppendLog::open(ldir.join(WAL_FILE)).unwrap();
        for rec in wal.iter().unwrap() {
            let (_, bytes) = rec.unwrap();
            let (seq, epoch, payload) = decode_framed(&bytes).unwrap();
            follower.apply_replicated(seq, epoch, payload).unwrap();
        }
        follower.journal_mut().unwrap().sync().unwrap();
        assert_eq!(follower.applied_seq(), leader.applied_seq());
        assert!(follower.kb().lookup("p1").is_some());
        assert_eq!(
            std::fs::read(ldir.join(WAL_FILE)).unwrap(),
            std::fs::read(fdir.join(WAL_FILE)).unwrap(),
            "replica WAL must be byte-identical to the leader's"
        );
        std::fs::remove_dir_all(&ldir).unwrap();
        std::fs::remove_dir_all(&fdir).unwrap();
    }

    #[test]
    fn journal_less_replica_builds_from_snapshot_stream() {
        let dir = tmp_dir("replica-mem");
        let payloads = {
            let mut g = journaled_scenario(&dir);
            g.tell_src("TELL Paper end").unwrap();
            g.checkpoint().unwrap();
            let mut log = AppendLog::open(dir.join(SNAPSHOT_FILE)).unwrap();
            log.iter()
                .unwrap()
                .map(|r| r.unwrap().1)
                .collect::<Vec<_>>()
        };
        let replica = Gkbms::replica_from_snapshot(&payloads).unwrap();
        assert!(replica.kb().lookup("Paper").is_some());
        assert!(replica.applied_seq() > 0);
        assert_eq!(replica.epoch(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_without_journal_errors() {
        let mut g = Gkbms::new().unwrap();
        assert!(g.checkpoint().is_err());
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("none"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("group"),
            Ok(FsyncPolicy::Group(Duration::ZERO))
        );
        assert_eq!(
            FsyncPolicy::parse("group:5"),
            Ok(FsyncPolicy::Group(Duration::from_millis(5)))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("group:abc").is_err());
        assert_eq!(
            FsyncPolicy::Group(Duration::from_millis(2)).to_string(),
            "group:2"
        );
    }
}
