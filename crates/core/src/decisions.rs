//! Decision classes, tool specifications and tool selection (fig 2-6).
//!
//! "Design decision classes specify how to transform an existing set
//! of design objects into another set of objects … each design
//! decision class is linked to a set of tool specifications. A
//! decision class may be fully supported by a tool, or the tool may
//! just aid manual decision execution. In the latter case,
//! verification obligations are defined by the decision class for
//! those constraints not guaranteed by the tool."

use std::fmt;

/// The §3.3.2 decision dimensions driving version and configuration
/// management: "Allowable multi-level configurations … are those which
/// are interrelated by mapping decisions (vertical configuration) …
/// Allowable one-level (sub)configurations must be consistent, as
/// documented by refinement decisions … Versioning rests upon choice
/// decisions."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionDimension {
    /// Maps objects between life-cycle levels (vertical configuration).
    Mapping,
    /// Refines objects within one level (horizontal configuration).
    Refinement,
    /// Chooses among alternatives (versioning).
    Choice,
}

impl fmt::Display for DecisionDimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionDimension::Mapping => write!(f, "mapping"),
            DecisionDimension::Refinement => write!(f, "refinement"),
            DecisionDimension::Choice => write!(f, "choice"),
        }
    }
}

/// A verification obligation of a decision class: a constraint that
/// must hold after execution, unless a tool specification guarantees
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Obligation name (e.g. `keys-unique`).
    pub name: String,
    /// Assertion text (evaluable) or prose description (checked by
    /// signature only).
    pub statement: String,
}

/// A design decision class.
#[derive(Debug, Clone)]
pub struct DecisionClass {
    /// Class name (e.g. `DecNormalize`).
    pub name: String,
    /// Optional more general decision class this one specializes
    /// ("normally the most specific one" wins at tool selection).
    pub specializes: Option<String>,
    /// Decision dimension.
    pub dimension: DecisionDimension,
    /// Design-object classes accepted as inputs (FROM).
    pub from_classes: Vec<String>,
    /// Design-object classes produced as outputs (TO).
    pub to_classes: Vec<String>,
    /// Precondition over the focus object, in the assertion language
    /// with free variable `x` (e.g. `x in TDL_EntityClass`).
    pub precondition: Option<String>,
    /// Verification obligations.
    pub obligations: Vec<Obligation>,
}

impl DecisionClass {
    /// A builder-style constructor.
    pub fn new(name: impl Into<String>, dimension: DecisionDimension) -> Self {
        DecisionClass {
            name: name.into(),
            specializes: None,
            dimension,
            from_classes: Vec::new(),
            to_classes: Vec::new(),
            precondition: None,
            obligations: Vec::new(),
        }
    }

    /// Sets the FROM classes.
    pub fn from_classes(mut self, classes: &[&str]) -> Self {
        self.from_classes = classes.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the TO classes.
    pub fn to_classes(mut self, classes: &[&str]) -> Self {
        self.to_classes = classes.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the precondition.
    pub fn precondition(mut self, expr: impl Into<String>) -> Self {
        self.precondition = Some(expr.into());
        self
    }

    /// Adds a verification obligation.
    pub fn obligation(mut self, name: &str, statement: &str) -> Self {
        self.obligations.push(Obligation {
            name: name.to_string(),
            statement: statement.to_string(),
        });
        self
    }

    /// Marks this class as a specialization of `parent`.
    pub fn specializing(mut self, parent: &str) -> Self {
        self.specializes = Some(parent.to_string());
        self
    }
}

/// A tool specification: which decision classes the tool can execute
/// and which obligations it guarantees.
#[derive(Debug, Clone)]
pub struct ToolSpec {
    /// Tool name (e.g. `TDL-DBPL-Mapper`, `DBPLEditor`).
    pub name: String,
    /// Decision classes the tool is associated with (BY links).
    pub executes: Vec<String>,
    /// Obligation names the tool's behaviour guarantees — "only those
    /// parts of the constraints not guaranteed by tool specifications
    /// have to be tested".
    pub guarantees: Vec<String>,
    /// True for fully automatic execution, false for "just aids manual
    /// decision execution".
    pub automatic: bool,
}

impl ToolSpec {
    /// Constructor.
    pub fn new(name: impl Into<String>, automatic: bool) -> Self {
        ToolSpec {
            name: name.into(),
            executes: Vec::new(),
            guarantees: Vec::new(),
            automatic,
        }
    }

    /// Associates the tool with a decision class.
    pub fn executes(mut self, decision_class: &str) -> Self {
        self.executes.push(decision_class.to_string());
        self
    }

    /// Records a guaranteed obligation.
    pub fn guarantees(mut self, obligation: &str) -> Self {
        self.guarantees.push(obligation.to_string());
        self
    }
}

/// How a pending obligation was discharged: "the 'proof' may be either
/// formal or by 'signature' of the decision maker".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Discharge {
    /// Formally: the obligation's statement was evaluated and holds.
    Formal {
        /// The obligation name.
        obligation: String,
    },
    /// By signature of a decision maker.
    Signature {
        /// The obligation name.
        obligation: String,
        /// Who signed.
        by: String,
    },
}

impl Discharge {
    /// The discharged obligation's name.
    pub fn obligation(&self) -> &str {
        match self {
            Discharge::Formal { obligation } => obligation,
            Discharge::Signature { obligation, .. } => obligation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_class() {
        let dc = DecisionClass::new("DecNormalize", DecisionDimension::Refinement)
            .from_classes(&["DBPL_Rel"])
            .to_classes(&["NormalizedDBPL_Rel", "DBPL_Selector", "DBPL_Constructor"])
            .precondition("x in DBPL_Rel")
            .obligation(
                "normalized",
                "output relations are in 1NF with correct keys",
            )
            .specializing("DBPL_MappingDec");
        assert_eq!(dc.name, "DecNormalize");
        assert_eq!(dc.from_classes, vec!["DBPL_Rel"]);
        assert_eq!(dc.to_classes.len(), 3);
        assert_eq!(dc.obligations.len(), 1);
        assert_eq!(dc.specializes.as_deref(), Some("DBPL_MappingDec"));
        assert_eq!(dc.dimension.to_string(), "refinement");
    }

    #[test]
    fn tool_spec_builder() {
        let t = ToolSpec::new("TDL-DBPL-Mapper", true)
            .executes("TDL_MappingDec")
            .guarantees("well-typed");
        assert!(t.automatic);
        assert_eq!(t.executes, vec!["TDL_MappingDec"]);
        assert_eq!(t.guarantees, vec!["well-typed"]);
    }

    #[test]
    fn discharge_names() {
        let f = Discharge::Formal {
            obligation: "normalized".into(),
        };
        let s = Discharge::Signature {
            obligation: "keys".into(),
            by: "developer".into(),
        };
        assert_eq!(f.obligation(), "normalized");
        assert_eq!(s.obligation(), "keys");
    }
}
