//! Version and configuration management (§3.3.2, fig 3-4).
//!
//! "Allowable multi-level configurations of world/system models,
//! designs, and implementations are those which are interrelated by
//! mapping decisions (vertical configuration by means of
//! equivalences). Allowable one-level (sub)configurations must be
//! consistent, as documented by refinement decisions … (horizontal
//! configuration). Versioning rests upon choice decisions: an
//! alternative version is created each time an object is refined or
//! mapped alternatively … In this way, version and configuration
//! management come as a natural by-product of the decision-based
//! documentation approach."

use crate::decisions::DecisionDimension;
use crate::error::{GkbmsError, GkbmsResult};
use crate::metamodel::kernel;
use crate::system::Gkbms;
use std::collections::HashMap;

/// One configured level of the system: the current objects at a
/// life-cycle level plus the decisions that justify them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// Level name (`Requirements` / `Design` / `Implementation`).
    pub level: String,
    /// The member objects, sorted.
    pub objects: Vec<String>,
    /// The effective decisions whose outputs are members.
    pub justified_by: Vec<String>,
}

/// A version alternative at one choice point (fig 3-4's `%`-marked
/// branches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alternative {
    /// The choice decision creating the alternative.
    pub decision: String,
    /// Its output objects.
    pub objects: Vec<String>,
    /// Whether this alternative is currently chosen (not retracted).
    pub current: bool,
}

/// A choice point: alternatives competing over the same inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoicePoint {
    /// The shared input objects.
    pub over: Vec<String>,
    /// The alternatives, in execution order.
    pub alternatives: Vec<Alternative>,
}

impl Gkbms {
    /// The life-cycle level of a design object (via its classes'
    /// `level` attribute). For objects no longer believed (retracted
    /// versions), the level is recovered from the decision record that
    /// created them — history is never lost.
    pub fn level_of(&self, object: &str) -> Option<String> {
        if let Some(obj) = self.kb.lookup(object) {
            for class in self.kb.all_classes_of(obj) {
                let levels = self.kb.attr_values(class, kernel::LEVEL);
                if let Some(&l) = levels.first() {
                    return Some(self.kb.display(l));
                }
            }
        }
        // Historic object: find the class recorded at creation.
        for r in self.records().iter().rev() {
            if let Some(at) = r.outputs.iter().position(|o| o == object) {
                let class = r.output_classes.get(at)?;
                return self.level_of_class(class);
            }
        }
        None
    }

    /// The `level` attribute of a design-object class.
    pub fn level_of_class(&self, class: &str) -> Option<String> {
        let c = self.kb.lookup(class)?;
        for cls in std::iter::once(c).chain(self.kb.isa_ancestors(c)) {
            let levels = self.kb.attr_values(cls, kernel::LEVEL);
            if let Some(&l) = levels.first() {
                return Some(self.kb.display(l));
            }
        }
        None
    }

    /// "Configure the latest complete DBPL database program system
    /// version": the current objects of `level`, excluding all
    /// non-used (retracted) versions, with their justifying decisions.
    pub fn configure_level(&self, level: &str) -> GkbmsResult<Configuration> {
        if !kernel::LEVELS.contains(&level) && self.kb.lookup(level).is_none() {
            return Err(GkbmsError::Unknown(format!("level `{level}`")));
        }
        let mut objects: Vec<String> = self
            .current_objects()
            .into_iter()
            .filter(|o| self.level_of(o).as_deref() == Some(level))
            .collect();
        objects.sort();
        let mut justified_by: Vec<String> = self
            .records()
            .iter()
            .filter(|r| !r.retracted && r.outputs.iter().any(|o| objects.contains(o)))
            .filter(|r| self.is_effective(&r.name))
            .map(|r| r.name.clone())
            .collect();
        justified_by.sort();
        Ok(Configuration {
            level: level.to_string(),
            objects,
            justified_by,
        })
    }

    /// Vertical configuration check: every object of `level` must be
    /// justified by a *mapping* decision from a current higher-level
    /// object (or be registered directly). Returns the unjustified
    /// objects — an empty result means the configuration is allowable.
    pub fn vertical_gaps(&self, level: &str) -> GkbmsResult<Vec<String>> {
        let config = self.configure_level(level)?;
        let mut gaps = Vec::new();
        for obj in &config.objects {
            let mapped = self.records().iter().any(|r| {
                !r.retracted
                    && r.outputs.contains(obj)
                    && self
                        .classes
                        .get(&r.class)
                        .is_some_and(|dc| dc.dimension == DecisionDimension::Mapping)
                    && r.inputs.iter().all(|i| self.is_current(i))
            });
            let derived_at_all = self
                .records()
                .iter()
                .any(|r| !r.retracted && r.outputs.contains(obj));
            if derived_at_all && !mapped {
                // Derived by refinement only: trace back to a mapped
                // ancestor within the level.
                let refined_from_current = self.records().iter().any(|r| {
                    !r.retracted
                        && r.outputs.contains(obj)
                        && r.inputs.iter().all(|i| self.is_current(i))
                });
                if !refined_from_current {
                    gaps.push(obj.clone());
                }
            }
        }
        gaps.sort();
        Ok(gaps)
    }

    /// The choice points of the history: groups of *choice* decisions
    /// sharing the same input set — each group's members are
    /// alternative versions (fig 3-4).
    pub fn choice_points(&self) -> Vec<ChoicePoint> {
        let mut groups: HashMap<Vec<String>, Vec<Alternative>> = HashMap::new();
        for r in self.records() {
            let Some(dc) = self.classes.get(&r.class) else {
                continue;
            };
            if dc.dimension != DecisionDimension::Choice {
                continue;
            }
            let mut key = r.inputs.clone();
            key.sort();
            groups.entry(key).or_default().push(Alternative {
                decision: r.name.clone(),
                objects: r.outputs.clone(),
                current: !r.retracted,
            });
        }
        let mut out: Vec<ChoicePoint> = groups
            .into_iter()
            .map(|(over, alternatives)| ChoicePoint { over, alternatives })
            .collect();
        out.sort_by(|a, b| a.over.cmp(&b.over));
        out
    }

    /// Renders the fig 3-4 view: the three levels with their current
    /// configurations, decision dimensions, and alternatives.
    pub fn render_version_space(&self) -> String {
        let mut out = String::new();
        for level in kernel::LEVELS {
            let Ok(config) = self.configure_level(level) else {
                continue;
            };
            out.push_str(&format!("=== {level} ===\n"));
            out.push_str(&format!("  objects: {}\n", config.objects.join(", ")));
            for r in self.records() {
                let Some(dc) = self.classes.get(&r.class) else {
                    continue;
                };
                let touches = r
                    .outputs
                    .iter()
                    .any(|o| self.level_of(o).as_deref() == Some(level));
                if !touches {
                    continue;
                }
                let marker = match dc.dimension {
                    DecisionDimension::Mapping => "==",
                    DecisionDimension::Refinement => "--",
                    DecisionDimension::Choice => "%%",
                };
                let status = if r.retracted { " (retracted)" } else { "" };
                out.push_str(&format!(
                    "  {marker} {} [{}]{}: {} -> {}\n",
                    r.name,
                    dc.dimension,
                    status,
                    r.inputs.join(", "),
                    r.outputs.join(", ")
                ));
            }
        }
        let choices = self.choice_points();
        if !choices.is_empty() {
            out.push_str("=== choice points ===\n");
            for cp in choices {
                out.push_str(&format!("  over {}:\n", cp.over.join(", ")));
                for alt in cp.alternatives {
                    out.push_str(&format!(
                        "    {} {} -> {}\n",
                        if alt.current { "[*]" } else { "[ ]" },
                        alt.decision,
                        alt.objects.join(", ")
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::decisions::{DecisionClass, DecisionDimension, Discharge};
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use crate::system::{DecisionRequest, Gkbms};

    fn with_key_choice() -> Gkbms {
        let mut g = scenario_gkbms();
        g.define_decision_class(
            DecisionClass::new("DecKeyChoice", DecisionDimension::Choice)
                .from_classes(&[kernel::DBPL_REL])
                .to_classes(&[kernel::DBPL_REL]),
        )
        .unwrap();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g
    }

    #[test]
    fn levels_resolved_from_classes() {
        let g = with_key_choice();
        assert_eq!(g.level_of("Invitation").as_deref(), Some("Design"));
        assert_eq!(
            g.level_of("InvitationRel").as_deref(),
            Some("Implementation")
        );
        assert_eq!(g.level_of("NoSuch"), None);
    }

    #[test]
    fn configure_latest_level() {
        let g = with_key_choice();
        let config = g.configure_level("Implementation").unwrap();
        assert_eq!(config.objects, vec!["InvitationRel"]);
        assert_eq!(config.justified_by, vec!["mapInvitations"]);
        assert!(g.configure_level("NoLevel").is_err());
    }

    #[test]
    fn retracted_versions_excluded_from_configuration() {
        let mut g = with_key_choice();
        g.retract_decision("mapInvitations").unwrap();
        let config = g.configure_level("Implementation").unwrap();
        assert!(config.objects.is_empty());
        assert!(config.justified_by.is_empty());
    }

    #[test]
    fn choice_points_group_alternatives() {
        let mut g = with_key_choice();
        // Two alternative key choices over the same relation (fig 3-4's
        // two implementations).
        g.execute(
            DecisionRequest::new("DecKeyChoice", "keepSurrogate", "dev")
                .input("InvitationRel")
                .output("InvitationRelV1", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecKeyChoice", "useAssociative", "dev")
                .input("InvitationRel")
                .output("InvitationRelV2", kernel::DBPL_REL),
        )
        .unwrap();
        let cps = g.choice_points();
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].over, vec!["InvitationRel"]);
        assert_eq!(cps[0].alternatives.len(), 2);
        assert!(cps[0].alternatives.iter().all(|a| a.current));
        // Retracting one leaves the other chosen.
        g.retract_decision("useAssociative").unwrap();
        let cps = g.choice_points();
        let current: Vec<bool> = cps[0].alternatives.iter().map(|a| a.current).collect();
        assert_eq!(current.iter().filter(|&&c| c).count(), 1);
    }

    #[test]
    fn vertical_configuration_has_no_gaps_when_mapped() {
        let g = with_key_choice();
        assert!(g.vertical_gaps("Implementation").unwrap().is_empty());
    }

    #[test]
    fn render_version_space_shows_dimensions() {
        let mut g = with_key_choice();
        g.execute(
            DecisionRequest::new("DecNormalize", "normalizeInvitations", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        let s = g.render_version_space();
        assert!(s.contains("=== Implementation ==="));
        assert!(s.contains("== mapInvitations [mapping]"));
        assert!(s.contains("-- normalizeInvitations [refinement]"));
        assert!(s.contains("InvitationRel2"));
    }
}
