//! Decision replay and re-applicability testing (§3.3).
//!
//! "Besides pure backtracking of decisions, tool specifications enable
//! some kind of revision support; for instance, adding an attribute in
//! the design could be processed by the GKBMS by replaying decisions
//! (GKBMS tests their re-applicability)."

use crate::error::{GkbmsError, GkbmsResult};
use crate::system::{DecisionRequest, Gkbms};

/// The outcome of testing one decision for re-applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Replayability {
    /// Inputs current, precondition holds: can be replayed as-is.
    Replayable,
    /// Some input is gone; lists the missing inputs.
    MissingInputs(Vec<String>),
    /// The precondition no longer holds for the named input.
    PreconditionFails(String),
    /// Its outputs still exist: replay would collide.
    OutputsExist(Vec<String>),
}

impl Gkbms {
    /// Tests whether a (typically retracted) decision could be
    /// re-executed in the current state.
    pub fn replayability(&self, name: &str) -> GkbmsResult<Replayability> {
        let r = self
            .record(name)
            .ok_or_else(|| GkbmsError::Unknown(format!("decision `{name}`")))?
            .clone();
        let missing: Vec<String> = r
            .inputs
            .iter()
            .filter(|i| !self.is_current(i))
            .cloned()
            .collect();
        if !missing.is_empty() {
            return Ok(Replayability::MissingInputs(missing));
        }
        if let Some(dc) = self.classes.get(&r.class) {
            if let Some(pre) = dc.precondition.clone() {
                for input in &r.inputs {
                    let id = self.kb.expect(input)?;
                    let expr = telos::assertion::parse(&pre).map_err(GkbmsError::Telos)?;
                    let mut env = telos::assertion::Env::new();
                    env.insert("x".to_string(), id);
                    let ok = telos::assertion::eval(&self.kb, &expr, &mut env)
                        .map_err(GkbmsError::Telos)?;
                    if !ok {
                        return Ok(Replayability::PreconditionFails(input.clone()));
                    }
                }
            }
        }
        let existing: Vec<String> = r
            .outputs
            .iter()
            .filter(|o| self.is_current(o))
            .cloned()
            .collect();
        if !existing.is_empty() {
            return Ok(Replayability::OutputsExist(existing));
        }
        Ok(Replayability::Replayable)
    }

    /// Replays a retracted decision under a new instance name,
    /// re-creating its outputs with the original class, tool and
    /// discharges. Fails if it is not replayable.
    pub fn replay_decision(&mut self, name: &str, as_name: &str) -> GkbmsResult<Vec<String>> {
        match self.replayability(name)? {
            Replayability::Replayable => {}
            other => {
                return Err(GkbmsError::Precondition(format!(
                    "decision `{name}` is not replayable: {other:?}"
                )))
            }
        }
        let r = self.record(name).expect("checked by replayability").clone();
        let mut req = DecisionRequest::new(&r.class, as_name, &r.performer);
        req.tool = r.tool.clone();
        req.inputs = r.inputs.clone();
        req.discharges = r.discharges.clone();
        // Output classes: recover each original output's class from the
        // KB (the class link survives untell only in history, so fall
        // back to the decision class's first TO class).
        let dc = self
            .classes
            .get(&r.class)
            .ok_or_else(|| GkbmsError::Unknown(format!("decision class `{}`", r.class)))?
            .clone();
        for out in &r.outputs {
            let class = self
                .class_of_historic_object(out)?
                .or_else(|| dc.to_classes.first().cloned())
                .ok_or_else(|| {
                    GkbmsError::Precondition(format!("cannot recover class of `{out}`"))
                })?;
            req.outputs.push((out.clone(), class));
        }
        let summary = self.execute(req)?;
        Ok(summary.created)
    }

    /// The design-object class an object had when it was last believed
    /// (recovered from the full proposition history). Fails with a
    /// typed error if the history has outgrown the 32-bit id space,
    /// instead of wrapping ids and recovering the wrong class.
    fn class_of_historic_object(&self, name: &str) -> GkbmsResult<Option<String>> {
        // Find the most recent individual proposition with this name.
        let mut best: Option<(i64, telos::PropId)> = None;
        for i in 0..self.kb.len() {
            let id = crate::error::checked_prop_id(i)?;
            let Ok(p) = self.kb.get(id) else { continue };
            if !p.is_individual() || self.kb.resolve(p.label) != name {
                continue;
            }
            let start = match p.belief.start() {
                telos::TimePoint::At(t) => t,
                _ => 0,
            };
            if best.map(|(s, _)| start >= s).unwrap_or(true) {
                best = Some((start, id));
            }
        }
        let Some((_, obj)) = best else {
            return Ok(None);
        };
        // Its class links, believed or not — take the latest.
        for link in self.kb.links_from(obj) {
            let Ok(p) = self.kb.get(link) else { continue };
            if self.kb.resolve(p.label) == telos::kb::L_INSTANCEOF {
                return Ok(Some(self.kb.display(p.dest)));
            }
        }
        // Believed links are gone after untell; scan history.
        let mut latest: Option<(i64, String)> = None;
        for i in 0..self.kb.len() {
            let id = crate::error::checked_prop_id(i)?;
            let Ok(p) = self.kb.get(id) else { continue };
            if p.source == obj && self.kb.resolve(p.label) == telos::kb::L_INSTANCEOF {
                let start = match p.belief.start() {
                    telos::TimePoint::At(t) => t,
                    _ => 0,
                };
                if latest.as_ref().map(|(s, _)| start >= *s).unwrap_or(true) {
                    latest = Some((start, self.kb.display(p.dest)));
                }
            }
        }
        Ok(latest.map(|(_, c)| c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::Discharge;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;

    fn mapped() -> Gkbms {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g
    }

    #[test]
    fn effective_decision_reports_outputs_exist() {
        let g = mapped();
        assert_eq!(
            g.replayability("mapInvitations").unwrap(),
            Replayability::OutputsExist(vec!["InvitationRel".into()])
        );
        assert!(g.replayability("ghost").is_err());
    }

    #[test]
    fn retracted_decision_is_replayable() {
        let mut g = mapped();
        g.retract_decision("mapInvitations").unwrap();
        assert_eq!(
            g.replayability("mapInvitations").unwrap(),
            Replayability::Replayable
        );
        let created = g
            .replay_decision("mapInvitations", "mapInvitations2")
            .unwrap();
        assert_eq!(created, vec!["InvitationRel"]);
        assert!(g.is_current("InvitationRel"));
        assert!(g.is_effective("mapInvitations2"));
        // The replayed output recovered its original class.
        let rel = g.kb().lookup("InvitationRel").unwrap();
        let class = g.kb().lookup(kernel::DBPL_REL).unwrap();
        assert!(g.kb().is_instance_of(rel, class));
    }

    #[test]
    fn missing_inputs_block_replay() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "map1", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecNormalize", "norm1", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        // Retract the upstream mapping: norm1's input vanishes too.
        g.retract_decision("map1").unwrap();
        assert_eq!(
            g.replayability("norm1").unwrap(),
            Replayability::MissingInputs(vec!["InvitationRel".into()])
        );
        assert!(g.replay_decision("norm1", "norm2").is_err());
        // Replaying the mapping first unblocks the refinement — the
        // "revision support" pattern of §3.3.
        g.replay_decision("map1", "map2").unwrap();
        assert_eq!(g.replayability("norm1").unwrap(), Replayability::Replayable);
        g.replay_decision("norm1", "norm2").unwrap();
        assert!(g.is_current("InvitationRel2"));
    }
}
