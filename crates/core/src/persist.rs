//! Persistence of the GKBMS documentation service.
//!
//! "Ex post, it plays the role of a documentation service" — and a
//! documentation service must outlive the process. The GKBMS persists
//! *by replay*: [`Gkbms::save`] writes the definition and decision
//! history (object classes, decision classes, tools, registrations,
//! executions, explicit retractions, nogoods) to an append-only log;
//! [`Gkbms::load`] re-executes it, reconstructing the KB, the JTMS and
//! every derived structure. Cascaded retractions are *not* stored —
//! replaying the explicit retraction re-derives them, which doubles as
//! a consistency check of the dependency machinery.

use crate::decisions::{DecisionClass, DecisionDimension, Discharge, Obligation, ToolSpec};
use crate::error::{GkbmsError, GkbmsResult};
use crate::system::{DecisionRequest, Gkbms};
use std::path::Path;
use storage::record::codec::{self, Cursor};
use storage::AppendLog;

const OP_OBJECT_CLASS: u32 = 1;
const OP_DECISION_CLASS: u32 = 2;
const OP_TOOL: u32 = 3;
const OP_REGISTER: u32 = 4;
const OP_EXECUTE: u32 = 5;
const OP_RETRACT: u32 = 6;
const OP_NOGOOD: u32 = 7;
const OP_TELL: u32 = 8;
const OP_UNTELL: u32 = 9;

fn put_opt_str(out: &mut Vec<u8>, v: &Option<String>) {
    match v {
        None => codec::put_u32(out, 0),
        Some(s) => {
            codec::put_u32(out, 1);
            codec::put_str(out, s);
        }
    }
}

fn get_opt_str(c: &mut Cursor<'_>) -> GkbmsResult<Option<String>> {
    match c.get_u32().map_err(telos::TelosError::Storage)? {
        0 => Ok(None),
        1 => Ok(Some(
            c.get_str().map_err(telos::TelosError::Storage)?.to_string(),
        )),
        other => Err(GkbmsError::Unknown(format!(
            "optional-string tag {other} in saved history"
        ))),
    }
}

fn put_str_list(out: &mut Vec<u8>, v: &[String]) {
    codec::put_u32(out, v.len() as u32);
    for s in v {
        codec::put_str(out, s);
    }
}

fn get_str_list(c: &mut Cursor<'_>) -> Result<Vec<String>, storage::StorageError> {
    let n = c.get_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.get_str()?.to_string());
    }
    Ok(out)
}

fn dimension_tag(d: DecisionDimension) -> u32 {
    match d {
        DecisionDimension::Mapping => 0,
        DecisionDimension::Refinement => 1,
        DecisionDimension::Choice => 2,
    }
}

fn dimension_from(tag: u32) -> GkbmsResult<DecisionDimension> {
    Ok(match tag {
        0 => DecisionDimension::Mapping,
        1 => DecisionDimension::Refinement,
        2 => DecisionDimension::Choice,
        other => {
            return Err(GkbmsError::Unknown(format!(
                "decision dimension tag {other} in saved history"
            )))
        }
    })
}

impl Gkbms {
    /// Saves the complete history to `path` (a fresh log; an existing
    /// file is replaced).
    pub fn save(&self, path: impl AsRef<Path>) -> GkbmsResult<()> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        let mut log = AppendLog::open(path).map_err(telos::TelosError::Storage)?;
        let mut put = |payload: Vec<u8>| -> GkbmsResult<()> {
            log.append(&payload).map_err(telos::TelosError::Storage)?;
            Ok(())
        };

        for (name, level, parent) in &self.object_class_log {
            let mut p = Vec::new();
            codec::put_u32(&mut p, OP_OBJECT_CLASS);
            codec::put_str(&mut p, name);
            codec::put_str(&mut p, level);
            put_opt_str(&mut p, parent);
            put(p)?;
        }
        for name in &self.class_order {
            let dc = &self.classes[name];
            let mut p = Vec::new();
            codec::put_u32(&mut p, OP_DECISION_CLASS);
            codec::put_str(&mut p, &dc.name);
            put_opt_str(&mut p, &dc.specializes);
            codec::put_u32(&mut p, dimension_tag(dc.dimension));
            put_str_list(&mut p, &dc.from_classes);
            put_str_list(&mut p, &dc.to_classes);
            put_opt_str(&mut p, &dc.precondition);
            codec::put_u32(&mut p, dc.obligations.len() as u32);
            for ob in &dc.obligations {
                codec::put_str(&mut p, &ob.name);
                codec::put_str(&mut p, &ob.statement);
            }
            put(p)?;
        }
        for name in &self.tool_order {
            let t = &self.tools[name];
            let mut p = Vec::new();
            codec::put_u32(&mut p, OP_TOOL);
            codec::put_str(&mut p, &t.name);
            codec::put_u32(&mut p, t.automatic as u32);
            put_str_list(&mut p, &t.executes);
            put_str_list(&mut p, &t.guarantees);
            put(p)?;
        }
        for (name, class, source) in &self.register_log {
            let mut p = Vec::new();
            codec::put_u32(&mut p, OP_REGISTER);
            codec::put_str(&mut p, name);
            codec::put_str(&mut p, class);
            codec::put_str(&mut p, source);
            put(p)?;
        }

        // Interleave executions and explicit retractions by tick.
        #[derive(Clone, Copy)]
        enum Ev<'a> {
            Exec(&'a crate::system::DecisionRecord),
            Retract(&'a str),
            Tell(&'a str),
            Untell(&'a str),
        }
        let mut events: Vec<(i64, Ev)> = self
            .records
            .iter()
            .map(|r| (r.tick, Ev::Exec(r)))
            .chain(
                self.retraction_log
                    .iter()
                    .map(|(t, n)| (*t, Ev::Retract(n.as_str()))),
            )
            .chain(self.tell_log.iter().map(|(t, ev)| {
                let ev = match ev {
                    crate::system::TellEvent::Tell(src) => Ev::Tell(src.as_str()),
                    crate::system::TellEvent::Untell(name) => Ev::Untell(name.as_str()),
                };
                (*t, ev)
            }))
            .collect();
        events.sort_by_key(|(t, _)| *t);
        for (_, ev) in events {
            match ev {
                Ev::Exec(r) => {
                    let mut p = Vec::new();
                    codec::put_u32(&mut p, OP_EXECUTE);
                    codec::put_str(&mut p, &r.class);
                    codec::put_str(&mut p, &r.name);
                    codec::put_str(&mut p, &r.performer);
                    put_opt_str(&mut p, &r.tool);
                    put_str_list(&mut p, &r.inputs);
                    codec::put_u32(&mut p, r.outputs.len() as u32);
                    for (o, c) in r.outputs.iter().zip(&r.output_classes) {
                        codec::put_str(&mut p, o);
                        codec::put_str(&mut p, c);
                    }
                    codec::put_u32(&mut p, r.discharges.len() as u32);
                    for d in &r.discharges {
                        match d {
                            Discharge::Formal { obligation } => {
                                codec::put_u32(&mut p, 0);
                                codec::put_str(&mut p, obligation);
                            }
                            Discharge::Signature { obligation, by } => {
                                codec::put_u32(&mut p, 1);
                                codec::put_str(&mut p, obligation);
                                codec::put_str(&mut p, by);
                            }
                        }
                    }
                    put(p)?;
                }
                Ev::Retract(name) => {
                    let mut p = Vec::new();
                    codec::put_u32(&mut p, OP_RETRACT);
                    codec::put_str(&mut p, name);
                    put(p)?;
                }
                Ev::Tell(src) => {
                    let mut p = Vec::new();
                    codec::put_u32(&mut p, OP_TELL);
                    codec::put_str(&mut p, src);
                    put(p)?;
                }
                Ev::Untell(name) => {
                    let mut p = Vec::new();
                    codec::put_u32(&mut p, OP_UNTELL);
                    codec::put_str(&mut p, name);
                    put(p)?;
                }
            }
        }
        for ng in &self.nogoods {
            let mut p = Vec::new();
            codec::put_u32(&mut p, OP_NOGOOD);
            put_str_list(&mut p, ng);
            put(p)?;
        }
        log.sync().map_err(telos::TelosError::Storage)?;
        Ok(())
    }

    /// Loads a saved history, re-executing it into a fresh GKBMS.
    pub fn load(path: impl AsRef<Path>) -> GkbmsResult<Gkbms> {
        let mut g = Gkbms::new()?;
        let mut log = AppendLog::open(path).map_err(telos::TelosError::Storage)?;
        let items: Vec<Vec<u8>> = log
            .iter()
            .map_err(telos::TelosError::Storage)?
            .collect::<Result<Vec<_>, _>>()
            .map_err(telos::TelosError::Storage)?
            .into_iter()
            .map(|(_, payload)| payload)
            .collect();
        for payload in items {
            let mut c = Cursor::new(&payload);
            let tag = c.get_u32().map_err(telos::TelosError::Storage)?;
            match tag {
                OP_OBJECT_CLASS => {
                    let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let level = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let parent = get_opt_str(&mut c)?;
                    g.define_object_class(&name, &level, parent.as_deref())?;
                }
                OP_DECISION_CLASS => {
                    let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let specializes = get_opt_str(&mut c)?;
                    let dim = dimension_from(c.get_u32().map_err(telos::TelosError::Storage)?)?;
                    let from = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
                    let to = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
                    let pre = get_opt_str(&mut c)?;
                    let n = c.get_u32().map_err(telos::TelosError::Storage)? as usize;
                    let mut dc = DecisionClass::new(name, dim);
                    dc.specializes = specializes;
                    dc.from_classes = from;
                    dc.to_classes = to;
                    dc.precondition = pre;
                    for _ in 0..n {
                        let oname = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                        let stmt = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                        dc.obligations.push(Obligation {
                            name: oname,
                            statement: stmt,
                        });
                    }
                    g.define_decision_class(dc)?;
                }
                OP_TOOL => {
                    let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let automatic = c.get_u32().map_err(telos::TelosError::Storage)? != 0;
                    let executes = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
                    let guarantees = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
                    let mut spec = ToolSpec::new(name, automatic);
                    spec.executes = executes;
                    spec.guarantees = guarantees;
                    g.register_tool(spec)?;
                }
                OP_REGISTER => {
                    let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let class = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let source = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    g.register_object(&name, &class, &source)?;
                }
                OP_EXECUTE => {
                    let class = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let performer = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    let tool = get_opt_str(&mut c)?;
                    let inputs = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
                    let n_out = c.get_u32().map_err(telos::TelosError::Storage)? as usize;
                    let mut req = DecisionRequest::new(&class, &name, &performer);
                    req.tool = tool;
                    req.inputs = inputs;
                    for _ in 0..n_out {
                        let o = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                        let oc = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                        req.outputs.push((o, oc));
                    }
                    let n_dis = c.get_u32().map_err(telos::TelosError::Storage)? as usize;
                    for _ in 0..n_dis {
                        let kind = c.get_u32().map_err(telos::TelosError::Storage)?;
                        let obligation =
                            c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                        req.discharges.push(if kind == 0 {
                            Discharge::Formal { obligation }
                        } else {
                            let by = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                            Discharge::Signature { obligation, by }
                        });
                    }
                    g.execute(req)?;
                }
                OP_RETRACT => {
                    let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    g.retract_decision(&name)?;
                }
                OP_NOGOOD => {
                    let ng = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
                    g.nogoods.push(ng);
                }
                OP_TELL => {
                    let src = c.get_str().map_err(telos::TelosError::Storage)?;
                    g.tell_src(src)?;
                }
                OP_UNTELL => {
                    let name = c.get_str().map_err(telos::TelosError::Storage)?;
                    g.untell(name)?;
                }
                other => {
                    return Err(GkbmsError::Unknown(format!(
                        "op tag {other} in saved history"
                    )))
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-gkbms-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn full_history() -> Gkbms {
        let mut g = scenario_gkbms();
        g.define_object_class("SQL_View", "Implementation", Some(kernel::DBPL_CONSTRUCTOR))
            .unwrap();
        g.register_object(
            "Invitation",
            kernel::TDL_ENTITY_CLASS,
            "design.tdl#Invitation",
        )
        .unwrap();
        g.register_object("Minutes", kernel::TDL_ENTITY_CLASS, "design.tdl#Minutes")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecNormalize", "normalize", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapMinutes", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Minutes")
                .output("MinutesRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.report_conflict("keys", &["normalize", "mapMinutes"])
            .unwrap();
        g
    }

    #[test]
    fn save_load_roundtrips_state() {
        let path = tmp("roundtrip");
        let original = full_history();
        original.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        // Same current objects.
        assert_eq!(loaded.current_objects(), original.current_objects());
        // Same records with same effectiveness.
        assert_eq!(loaded.records().len(), original.records().len());
        for (a, b) in loaded.records().iter().zip(original.records()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.retracted, b.retracted, "{}", a.name);
            assert_eq!(a.outputs, b.outputs);
        }
        // The cascaded retraction was re-derived, not stored.
        assert!(!loaded.is_effective("mapMinutes"));
        assert!(loaded.is_effective("normalize"));
        // Nogoods survive.
        assert!(loaded.would_repeat_nogood(&["normalize", "mapMinutes"]));
        // Navigation works on the reloaded system.
        assert_eq!(
            loaded.causal_chain("InvitationRel2").unwrap(),
            vec!["mapInvitations", "normalize"]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loaded_system_accepts_new_decisions() {
        let path = tmp("extend");
        full_history().save(&path).unwrap();
        let mut g = Gkbms::load(&path).unwrap();
        // Replay the retracted decision under a new name.
        g.replay_decision("mapMinutes", "mapMinutes2").unwrap();
        assert!(g.is_current("MinutesRel"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn raw_tells_and_untells_replay() {
        let path = tmp("tells");
        let mut g = Gkbms::new().unwrap();
        g.tell_src("TELL Paper end\nTELL kept in Paper end\nTELL gone in Paper end")
            .unwrap();
        g.untell("gone").unwrap();
        g.register_object("Spec1", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        assert!(loaded.kb().lookup("kept").is_some(), "TELL replayed");
        assert!(loaded.kb().lookup("gone").is_none(), "UNTELL replayed");
        assert!(loaded.kb().lookup("Spec1").is_some());
        // The untold object's propositions are preserved as history,
        // not destroyed: the KB has more propositions than believed.
        assert!(loaded.kb().len() > loaded.kb().believed_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn opt_str_roundtrips_and_rejects_bad_tags() {
        for v in [None, Some(String::new()), Some("parent".to_string())] {
            let mut buf = Vec::new();
            put_opt_str(&mut buf, &v);
            let mut c = Cursor::new(&buf);
            assert_eq!(get_opt_str(&mut c).unwrap(), v);
        }
        // Any tag other than 0/1 is corruption, not an implicit Some.
        for tag in [2u32, 7, u32::MAX] {
            let mut buf = Vec::new();
            codec::put_u32(&mut buf, tag);
            codec::put_str(&mut buf, "payload");
            let mut c = Cursor::new(&buf);
            let err = get_opt_str(&mut c).unwrap_err();
            assert!(
                matches!(&err, GkbmsError::Unknown(m) if m.contains(&tag.to_string())),
                "tag {tag}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_opt_str_tag_in_saved_history_is_rejected() {
        let path = tmp("opt-tag");
        // An OP_OBJECT_CLASS record whose parent tag is 2: the old
        // decoder silently read it as Some, masking the corruption.
        let mut p = Vec::new();
        codec::put_u32(&mut p, OP_OBJECT_CLASS);
        codec::put_str(&mut p, "Rogue");
        codec::put_str(&mut p, "Implementation");
        codec::put_u32(&mut p, 2);
        codec::put_str(&mut p, kernel::DBPL_CONSTRUCTOR);
        {
            let mut log = AppendLog::open(&path).unwrap();
            log.append(&p).unwrap();
            log.sync().unwrap();
        }
        let err = match Gkbms::load(&path) {
            Ok(_) => panic!("corrupt tag accepted"),
            Err(e) => e,
        };
        assert!(
            matches!(&err, GkbmsError::Unknown(m) if m.contains("optional-string tag 2")),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a log").unwrap();
        assert!(Gkbms::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_history_roundtrips() {
        let path = tmp("empty");
        let g = Gkbms::new().unwrap();
        g.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        assert!(loaded.records().is_empty());
        assert!(loaded.current_objects().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
