//! Persistence of the GKBMS documentation service.
//!
//! "Ex post, it plays the role of a documentation service" — and a
//! documentation service must outlive the process. The GKBMS persists
//! *by replay*: [`Gkbms::save`] writes the definition and decision
//! history (object classes, decision classes, tools, registrations,
//! executions, explicit retractions, nogoods) to an append-only log;
//! [`Gkbms::load`] re-executes it, reconstructing the KB, the JTMS and
//! every derived structure. Cascaded retractions are *not* stored —
//! replaying the explicit retraction re-derives them, which doubles as
//! a consistency check of the dependency machinery.
//!
//! `save` is crash-atomic: the history is written to a sibling temp
//! file, fsynced, renamed over the target, and the parent directory is
//! fsynced — at no instant does the old history cease to exist before
//! the new one is durable.
//!
//! The same record encoding doubles as the wire format of the live
//! write-ahead journal (see [`crate::journal`]): each committed
//! mutation appends one op record, and recovery replays them through
//! [`apply_record`] exactly as `load` does.

use crate::decisions::{DecisionClass, DecisionDimension, Discharge, Obligation, ToolSpec};
use crate::error::{GkbmsError, GkbmsResult};
use crate::system::{DecisionRecord, DecisionRequest, Gkbms, TellEvent};
use std::path::Path;
use storage::record::codec::{self, Cursor};
use storage::AppendLog;

const OP_OBJECT_CLASS: u32 = 1;
const OP_DECISION_CLASS: u32 = 2;
const OP_TOOL: u32 = 3;
const OP_REGISTER: u32 = 4;
const OP_EXECUTE: u32 = 5;
const OP_RETRACT: u32 = 6;
const OP_NOGOOD: u32 = 7;
const OP_TELL: u32 = 8;
const OP_UNTELL: u32 = 9;
/// Snapshot-meta record: the journal op sequence a checkpoint snapshot
/// covers. Written as the first record of every checkpoint snapshot and
/// never journaled itself; recovery skips WAL records at or below the
/// covered sequence, which makes the snapshot's atomic rename the
/// commit point of a checkpoint (see `Gkbms::checkpoint`).
const OP_CHECKPOINT_COVERS: u32 = 10;
/// Epoch seal: a promoted replica bumps its sequence epoch and appends
/// this marker as its first own journal record, making the promotion
/// point durable even before the first post-promotion mutation. Replay
/// raises the epoch and changes no other state; records framed with a
/// lower epoch are fenced off by the replication applier.
const OP_SEAL: u32 = 11;
/// A registered materialized view: name plus user rules. Replayed
/// through [`Gkbms::register_view`], which rebuilds the model from the
/// KB state at that point of the history — so recovery and replication
/// both reconstruct maintained views for free.
const OP_REGISTER_VIEW: u32 = 12;

fn put_opt_str(out: &mut Vec<u8>, v: &Option<String>) {
    match v {
        None => codec::put_u32(out, 0),
        Some(s) => {
            codec::put_u32(out, 1);
            codec::put_str(out, s);
        }
    }
}

fn get_opt_str(c: &mut Cursor<'_>) -> GkbmsResult<Option<String>> {
    match c.get_u32().map_err(telos::TelosError::Storage)? {
        0 => Ok(None),
        1 => Ok(Some(
            c.get_str().map_err(telos::TelosError::Storage)?.to_string(),
        )),
        other => Err(GkbmsError::Unknown(format!(
            "optional-string tag {other} in saved history"
        ))),
    }
}

fn put_str_list(out: &mut Vec<u8>, v: &[String]) {
    codec::put_u32(out, v.len() as u32);
    for s in v {
        codec::put_str(out, s);
    }
}

fn get_str_list(c: &mut Cursor<'_>) -> Result<Vec<String>, storage::StorageError> {
    let n = c.get_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.get_str()?.to_string());
    }
    Ok(out)
}

fn dimension_tag(d: DecisionDimension) -> u32 {
    match d {
        DecisionDimension::Mapping => 0,
        DecisionDimension::Refinement => 1,
        DecisionDimension::Choice => 2,
    }
}

fn dimension_from(tag: u32) -> GkbmsResult<DecisionDimension> {
    Ok(match tag {
        0 => DecisionDimension::Mapping,
        1 => DecisionDimension::Refinement,
        2 => DecisionDimension::Choice,
        other => {
            return Err(GkbmsError::Unknown(format!(
                "decision dimension tag {other} in saved history"
            )))
        }
    })
}

// ----- op encoders ----------------------------------------------------------
//
// Shared between `save` (bulk history) and the live journal (one record
// per committed mutation), so both on-disk forms replay through the one
// `apply_record` below.

pub(crate) fn encode_object_class(name: &str, level: &str, parent: Option<&str>) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_OBJECT_CLASS);
    codec::put_str(&mut p, name);
    codec::put_str(&mut p, level);
    put_opt_str(&mut p, &parent.map(|s| s.to_string()));
    p
}

pub(crate) fn encode_decision_class(dc: &DecisionClass) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_DECISION_CLASS);
    codec::put_str(&mut p, &dc.name);
    put_opt_str(&mut p, &dc.specializes);
    codec::put_u32(&mut p, dimension_tag(dc.dimension));
    put_str_list(&mut p, &dc.from_classes);
    put_str_list(&mut p, &dc.to_classes);
    put_opt_str(&mut p, &dc.precondition);
    codec::put_u32(&mut p, dc.obligations.len() as u32);
    for ob in &dc.obligations {
        codec::put_str(&mut p, &ob.name);
        codec::put_str(&mut p, &ob.statement);
    }
    p
}

pub(crate) fn encode_tool(t: &ToolSpec) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_TOOL);
    codec::put_str(&mut p, &t.name);
    codec::put_u32(&mut p, t.automatic as u32);
    put_str_list(&mut p, &t.executes);
    put_str_list(&mut p, &t.guarantees);
    p
}

pub(crate) fn encode_register(name: &str, class: &str, source: &str) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_REGISTER);
    codec::put_str(&mut p, name);
    codec::put_str(&mut p, class);
    codec::put_str(&mut p, source);
    p
}

pub(crate) fn encode_execute(r: &DecisionRecord) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_EXECUTE);
    codec::put_str(&mut p, &r.class);
    codec::put_str(&mut p, &r.name);
    codec::put_str(&mut p, &r.performer);
    put_opt_str(&mut p, &r.tool);
    put_str_list(&mut p, &r.inputs);
    codec::put_u32(&mut p, r.outputs.len() as u32);
    for (o, c) in r.outputs.iter().zip(&r.output_classes) {
        codec::put_str(&mut p, o);
        codec::put_str(&mut p, c);
    }
    codec::put_u32(&mut p, r.discharges.len() as u32);
    for d in &r.discharges {
        match d {
            Discharge::Formal { obligation } => {
                codec::put_u32(&mut p, 0);
                codec::put_str(&mut p, obligation);
            }
            Discharge::Signature { obligation, by } => {
                codec::put_u32(&mut p, 1);
                codec::put_str(&mut p, obligation);
                codec::put_str(&mut p, by);
            }
        }
    }
    p
}

pub(crate) fn encode_retract(name: &str) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_RETRACT);
    codec::put_str(&mut p, name);
    p
}

pub(crate) fn encode_nogood(ng: &[String]) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_NOGOOD);
    put_str_list(&mut p, ng);
    p
}

pub(crate) fn encode_tell(src: &str) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_TELL);
    codec::put_str(&mut p, src);
    p
}

pub(crate) fn encode_untell(name: &str) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_UNTELL);
    codec::put_str(&mut p, name);
    p
}

pub(crate) fn encode_register_view(name: &str, rules: &str) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_REGISTER_VIEW);
    codec::put_str(&mut p, name);
    codec::put_str(&mut p, rules);
    p
}

pub(crate) fn encode_checkpoint_covers(covered_seq: u64, epoch: u64) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_CHECKPOINT_COVERS);
    codec::put_u64(&mut p, covered_seq);
    codec::put_u64(&mut p, epoch);
    p
}

pub(crate) fn encode_seal(epoch: u64) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, OP_SEAL);
    codec::put_u64(&mut p, epoch);
    p
}

/// Decodes one op record and applies it to `g` through the public
/// mutation API — the single replay path used by [`Gkbms::load`] and by
/// journal recovery.
pub(crate) fn apply_record(g: &mut Gkbms, payload: &[u8]) -> GkbmsResult<()> {
    let mut c = Cursor::new(payload);
    let tag = c.get_u32().map_err(telos::TelosError::Storage)?;
    match tag {
        OP_OBJECT_CLASS => {
            let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let level = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let parent = get_opt_str(&mut c)?;
            g.define_object_class(&name, &level, parent.as_deref())?;
        }
        OP_DECISION_CLASS => {
            let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let specializes = get_opt_str(&mut c)?;
            let dim = dimension_from(c.get_u32().map_err(telos::TelosError::Storage)?)?;
            let from = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
            let to = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
            let pre = get_opt_str(&mut c)?;
            let n = c.get_u32().map_err(telos::TelosError::Storage)? as usize;
            let mut dc = DecisionClass::new(name, dim);
            dc.specializes = specializes;
            dc.from_classes = from;
            dc.to_classes = to;
            dc.precondition = pre;
            for _ in 0..n {
                let oname = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                let stmt = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                dc.obligations.push(Obligation {
                    name: oname,
                    statement: stmt,
                });
            }
            g.define_decision_class(dc)?;
        }
        OP_TOOL => {
            let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let automatic = c.get_u32().map_err(telos::TelosError::Storage)? != 0;
            let executes = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
            let guarantees = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
            let mut spec = ToolSpec::new(name, automatic);
            spec.executes = executes;
            spec.guarantees = guarantees;
            g.register_tool(spec)?;
        }
        OP_REGISTER => {
            let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let class = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let source = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            g.register_object(&name, &class, &source)?;
        }
        OP_EXECUTE => {
            let class = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let performer = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let tool = get_opt_str(&mut c)?;
            let inputs = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
            let n_out = c.get_u32().map_err(telos::TelosError::Storage)? as usize;
            let mut req = DecisionRequest::new(&class, &name, &performer);
            req.tool = tool;
            req.inputs = inputs;
            for _ in 0..n_out {
                let o = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                let oc = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                req.outputs.push((o, oc));
            }
            let n_dis = c.get_u32().map_err(telos::TelosError::Storage)? as usize;
            for _ in 0..n_dis {
                let kind = c.get_u32().map_err(telos::TelosError::Storage)?;
                let obligation = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                req.discharges.push(if kind == 0 {
                    Discharge::Formal { obligation }
                } else {
                    let by = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
                    Discharge::Signature { obligation, by }
                });
            }
            g.execute(req)?;
        }
        OP_RETRACT => {
            let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            g.retract_decision(&name)?;
        }
        OP_NOGOOD => {
            let ng = get_str_list(&mut c).map_err(telos::TelosError::Storage)?;
            g.nogoods.push(ng);
        }
        OP_TELL => {
            let src = c.get_str().map_err(telos::TelosError::Storage)?;
            g.tell_src(src)?;
        }
        OP_UNTELL => {
            let name = c.get_str().map_err(telos::TelosError::Storage)?;
            g.untell(name)?;
        }
        OP_CHECKPOINT_COVERS => {
            g.snapshot_covers = c.get_u64().map_err(telos::TelosError::Storage)?;
            let epoch = c.get_u64().map_err(telos::TelosError::Storage)?;
            g.epoch = g.epoch.max(epoch);
        }
        OP_SEAL => {
            let epoch = c.get_u64().map_err(telos::TelosError::Storage)?;
            g.epoch = g.epoch.max(epoch);
        }
        OP_REGISTER_VIEW => {
            let name = c.get_str().map_err(telos::TelosError::Storage)?.to_string();
            let rules = c.get_str().map_err(telos::TelosError::Storage)?;
            g.register_view(&name, rules)?;
        }
        other => {
            return Err(GkbmsError::Unknown(format!(
                "op tag {other} in saved history"
            )))
        }
    }
    Ok(())
}

/// Sibling temp path used by the atomic save: same directory (so the
/// rename cannot cross filesystems), distinguishable suffix.
fn save_tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `payloads` as an append log at `path`, crash-atomically:
/// temp file, fsync, rename over the target, parent-directory fsync.
fn write_log_atomic(path: &Path, payloads: Vec<Vec<u8>>) -> GkbmsResult<()> {
    let tmp = save_tmp_path(path);
    let _ = std::fs::remove_file(&tmp);
    {
        let mut log = AppendLog::open(&tmp).map_err(telos::TelosError::Storage)?;
        for payload in payloads {
            log.append(&payload).map_err(telos::TelosError::Storage)?;
        }
        log.sync().map_err(telos::TelosError::Storage)?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| telos::TelosError::Storage(storage::StorageError::Io(e)))?;
    storage::log::sync_parent_dir(path).map_err(telos::TelosError::Storage)?;
    Ok(())
}

impl Gkbms {
    /// The complete history as replayable op records, in replay order:
    /// definitions and registrations first, then executions, explicit
    /// retractions and raw TELL/UNTELL traffic interleaved by commit
    /// sequence number, then nogoods.
    pub(crate) fn history_payloads(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (name, level, parent) in &self.object_class_log {
            out.push(encode_object_class(name, level, parent.as_deref()));
        }
        for name in &self.class_order {
            out.push(encode_decision_class(&self.classes[name]));
        }
        for name in &self.tool_order {
            out.push(encode_tool(&self.tools[name]));
        }
        for (name, class, source) in &self.register_log {
            out.push(encode_register(name, class, source));
        }

        // Interleave executions, explicit retractions and raw tells by
        // their shared monotonic commit sequence number. Sorting by
        // belief tick alone is not enough: events sharing a tick would
        // replay in category order rather than commit order.
        enum Ev<'a> {
            Exec(&'a DecisionRecord),
            Retract(&'a str),
            Tell(&'a TellEvent),
        }
        let mut events: Vec<(u64, Ev)> = self
            .records
            .iter()
            .map(|r| (r.seq, Ev::Exec(r)))
            .chain(
                self.retraction_log
                    .iter()
                    .map(|(s, _, n)| (*s, Ev::Retract(n.as_str()))),
            )
            .chain(self.tell_log.iter().map(|(s, _, ev)| (*s, Ev::Tell(ev))))
            .collect();
        events.sort_by_key(|(s, _)| *s);
        for (_, ev) in events {
            out.push(match ev {
                Ev::Exec(r) => encode_execute(r),
                Ev::Retract(name) => encode_retract(name),
                Ev::Tell(TellEvent::Tell(src)) => encode_tell(src),
                Ev::Tell(TellEvent::Untell(name)) => encode_untell(name),
            });
        }
        for ng in &self.nogoods {
            out.push(encode_nogood(ng));
        }
        // View registrations replay last, over the fully reconstructed
        // state: the model a registration builds from the final state
        // equals the model maintained through the history, so only the
        // `as_of` watermark is (conservatively) later than it was live.
        for v in &self.views {
            out.push(encode_register_view(v.name(), v.rules()));
        }
        out
    }

    /// Saves the complete history to `path`, crash-atomically replacing
    /// any existing file: the log is written to a sibling temp file and
    /// fsynced, then renamed over the target, then the parent directory
    /// is fsynced. A crash at any point leaves either the old complete
    /// history or the new one — never a partial or missing file.
    pub fn save(&self, path: impl AsRef<Path>) -> GkbmsResult<()> {
        write_log_atomic(path.as_ref(), self.history_payloads())
    }

    /// Saves a checkpoint snapshot: the complete history prefixed with
    /// an [`OP_CHECKPOINT_COVERS`] record naming the journal op
    /// sequence (and sequence epoch) the snapshot covers, so recovery
    /// can tell WAL records the snapshot already holds from genuinely
    /// newer ones.
    pub(crate) fn save_snapshot(&self, path: &Path, covered_seq: u64) -> GkbmsResult<()> {
        let mut payloads = vec![encode_checkpoint_covers(covered_seq, self.epoch)];
        payloads.extend(self.history_payloads());
        write_log_atomic(path, payloads)
    }

    /// Writes `payloads` as a crash-atomic snapshot/history file at
    /// `path` — the shared primitive behind `save`, `save_snapshot` and
    /// replica snapshot installation.
    pub(crate) fn write_payloads_atomic(path: &Path, payloads: Vec<Vec<u8>>) -> GkbmsResult<()> {
        write_log_atomic(path, payloads)
    }

    /// Loads a saved history, re-executing it into a fresh GKBMS.
    pub fn load(path: impl AsRef<Path>) -> GkbmsResult<Gkbms> {
        let mut g = Gkbms::new()?;
        let mut log = AppendLog::open(path).map_err(telos::TelosError::Storage)?;
        let items: Vec<Vec<u8>> = log
            .iter()
            .map_err(telos::TelosError::Storage)?
            .collect::<Result<Vec<_>, _>>()
            .map_err(telos::TelosError::Storage)?
            .into_iter()
            .map(|(_, payload)| payload)
            .collect();
        for payload in items {
            apply_record(&mut g, &payload)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-gkbms-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn full_history() -> Gkbms {
        let mut g = scenario_gkbms();
        g.define_object_class("SQL_View", "Implementation", Some(kernel::DBPL_CONSTRUCTOR))
            .unwrap();
        g.register_object(
            "Invitation",
            kernel::TDL_ENTITY_CLASS,
            "design.tdl#Invitation",
        )
        .unwrap();
        g.register_object("Minutes", kernel::TDL_ENTITY_CLASS, "design.tdl#Minutes")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecNormalize", "normalize", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapMinutes", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Minutes")
                .output("MinutesRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.report_conflict("keys", &["normalize", "mapMinutes"])
            .unwrap();
        g
    }

    #[test]
    fn save_load_roundtrips_state() {
        let path = tmp("roundtrip");
        let original = full_history();
        original.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        // Same current objects.
        assert_eq!(loaded.current_objects(), original.current_objects());
        // Same records with same effectiveness.
        assert_eq!(loaded.records().len(), original.records().len());
        for (a, b) in loaded.records().iter().zip(original.records()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.retracted, b.retracted, "{}", a.name);
            assert_eq!(a.outputs, b.outputs);
        }
        // The cascaded retraction was re-derived, not stored.
        assert!(!loaded.is_effective("mapMinutes"));
        assert!(loaded.is_effective("normalize"));
        // Nogoods survive.
        assert!(loaded.would_repeat_nogood(&["normalize", "mapMinutes"]));
        // Navigation works on the reloaded system.
        assert_eq!(
            loaded.causal_chain("InvitationRel2").unwrap(),
            vec!["mapInvitations", "normalize"]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loaded_system_accepts_new_decisions() {
        let path = tmp("extend");
        full_history().save(&path).unwrap();
        let mut g = Gkbms::load(&path).unwrap();
        // Replay the retracted decision under a new name.
        g.replay_decision("mapMinutes", "mapMinutes2").unwrap();
        assert!(g.is_current("MinutesRel"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn raw_tells_and_untells_replay() {
        let path = tmp("tells");
        let mut g = Gkbms::new().unwrap();
        g.tell_src("TELL Paper end\nTELL kept in Paper end\nTELL gone in Paper end")
            .unwrap();
        g.untell("gone").unwrap();
        g.register_object("Spec1", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        assert!(loaded.kb().lookup("kept").is_some(), "TELL replayed");
        assert!(loaded.kb().lookup("gone").is_none(), "UNTELL replayed");
        assert!(loaded.kb().lookup("Spec1").is_some());
        // The untold object's propositions are preserved as history,
        // not destroyed: the KB has more propositions than believed.
        assert!(loaded.kb().len() > loaded.kb().believed_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let path = tmp("atomic");
        let g1 = full_history();
        g1.save(&path).unwrap();
        // Saving a different history over it must fully replace it.
        let mut g2 = Gkbms::new().unwrap();
        g2.tell_src("TELL OnlyThis end").unwrap();
        g2.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        assert!(loaded.records().is_empty());
        assert!(loaded.kb().lookup("OnlyThis").is_some());
        // No temp litter left behind.
        assert!(!save_tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_save_preserves_existing_history() {
        let path = tmp("atomic-fail");
        let original = full_history();
        original.save(&path).unwrap();
        let before = std::fs::read(&path).unwrap();
        // Force the temp-file write to fail by occupying the temp path
        // with a directory: this "interrupts" the save before the
        // rename, like a crash mid-write would.
        let tmp_path = save_tmp_path(&path);
        std::fs::create_dir(&tmp_path).unwrap();
        assert!(original.save(&path).is_err());
        std::fs::remove_dir(&tmp_path).unwrap();
        // The target was never touched: byte-identical and loadable.
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let loaded = Gkbms::load(&path).unwrap();
        assert_eq!(loaded.records().len(), original.records().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_temp_file_is_overwritten() {
        let path = tmp("atomic-stale");
        // A crash between temp-write and rename leaves a stale temp
        // file; the next save must replace it, not append to it.
        std::fs::write(save_tmp_path(&path), b"stale garbage").unwrap();
        full_history().save(&path).unwrap();
        assert!(!save_tmp_path(&path).exists());
        assert_eq!(
            Gkbms::load(&path).unwrap().records().len(),
            full_history().records().len()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn same_tick_events_replay_in_commit_order() {
        let path = tmp("same-tick");
        let mut g = scenario_gkbms();
        g.register_object(
            "Invitation",
            kernel::TDL_ENTITY_CLASS,
            "design.tdl#Invitation",
        )
        .unwrap();
        // Commit order: raw TELL first, then an execution, then an
        // UNTELL — then force all three onto one belief tick, as a
        // coarse-grained clock would. A tick-only sort replays the
        // execution first (category order), violating commit order.
        g.tell_src("TELL Memo end").unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.untell("Memo").unwrap();
        let shared_tick = 99;
        g.tell_log[0].1 = shared_tick;
        g.tell_log[1].1 = shared_tick;
        g.records[0].tick = shared_tick;
        g.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        // Replay preserved commit order: tell < execute < untell by the
        // reloaded system's own (freshly assigned) sequence numbers.
        let tell_seq = loaded.tell_log[0].0;
        let untell_seq = loaded.tell_log[1].0;
        let exec_seq = loaded.records[0].seq;
        assert!(
            tell_seq < exec_seq && exec_seq < untell_seq,
            "commit order lost: tell={tell_seq} exec={exec_seq} untell={untell_seq}"
        );
        // And the untell still wins over the tell.
        assert!(loaded.kb().lookup("Memo").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn retraction_of_earlier_decision_keeps_commit_order_on_same_tick() {
        let path = tmp("same-tick-retract");
        let mut g = full_history();
        // mapMinutes was explicitly... no: `keys` conflict retracted it.
        // Retract a still-effective decision and collapse ticks with the
        // latest execution.
        g.retract_decision("mapInvitations").unwrap();
        let shared = 123;
        g.records.last_mut().unwrap().tick = shared;
        g.retraction_log.last_mut().unwrap().1 = shared;
        g.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        assert!(!loaded.is_effective("mapInvitations"));
        assert_eq!(loaded.records().len(), g.records().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn opt_str_roundtrips_and_rejects_bad_tags() {
        for v in [None, Some(String::new()), Some("parent".to_string())] {
            let mut buf = Vec::new();
            put_opt_str(&mut buf, &v);
            let mut c = Cursor::new(&buf);
            assert_eq!(get_opt_str(&mut c).unwrap(), v);
        }
        // Any tag other than 0/1 is corruption, not an implicit Some.
        for tag in [2u32, 7, u32::MAX] {
            let mut buf = Vec::new();
            codec::put_u32(&mut buf, tag);
            codec::put_str(&mut buf, "payload");
            let mut c = Cursor::new(&buf);
            let err = get_opt_str(&mut c).unwrap_err();
            assert!(
                matches!(&err, GkbmsError::Unknown(m) if m.contains(&tag.to_string())),
                "tag {tag}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_opt_str_tag_in_saved_history_is_rejected() {
        let path = tmp("opt-tag");
        // An OP_OBJECT_CLASS record whose parent tag is 2: the old
        // decoder silently read it as Some, masking the corruption.
        let mut p = Vec::new();
        codec::put_u32(&mut p, OP_OBJECT_CLASS);
        codec::put_str(&mut p, "Rogue");
        codec::put_str(&mut p, "Implementation");
        codec::put_u32(&mut p, 2);
        codec::put_str(&mut p, kernel::DBPL_CONSTRUCTOR);
        {
            let mut log = AppendLog::open(&path).unwrap();
            log.append(&p).unwrap();
            log.sync().unwrap();
        }
        let err = match Gkbms::load(&path) {
            Ok(_) => panic!("corrupt tag accepted"),
            Err(e) => e,
        };
        assert!(
            matches!(&err, GkbmsError::Unknown(m) if m.contains("optional-string tag 2")),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a log").unwrap();
        assert!(Gkbms::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_history_roundtrips() {
        let path = tmp("empty");
        let g = Gkbms::new().unwrap();
        g.save(&path).unwrap();
        let loaded = Gkbms::load(&path).unwrap();
        assert!(loaded.records().is_empty());
        assert!(loaded.current_objects().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
