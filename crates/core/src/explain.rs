//! The design explanation facility (§3.3.3).
//!
//! "As an enhancement of the navigation facilities, the predicative
//! specifications of tool and decision classes together with
//! ConceptBase rules and constraints will be used to develop a design
//! explanation facility." Given a design object, [`Gkbms::explain`]
//! renders *why it exists in its current form*: the justifying
//! decision, its class and dimension, the performing agent and tool,
//! how each verification obligation was covered, and — recursively —
//! the justification of every input.

use crate::decisions::Discharge;
use crate::error::{GkbmsError, GkbmsResult};
use crate::metamodel::names;
use crate::system::Gkbms;
use std::collections::HashSet;

impl Gkbms {
    /// Renders the justification tree of a design object.
    pub fn explain(&self, object: &str) -> GkbmsResult<String> {
        if self.kb.lookup(object).is_none()
            && !self
                .records()
                .iter()
                .any(|r| r.outputs.contains(&object.to_string()))
        {
            return Err(GkbmsError::Unknown(format!("design object `{object}`")));
        }
        let mut out = String::new();
        let mut seen = HashSet::new();
        self.explain_object(object, 0, &mut seen, &mut out);
        Ok(out)
    }

    fn explain_object(
        &self,
        object: &str,
        depth: usize,
        seen: &mut HashSet<String>,
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth);
        let status = if self.is_current(object) {
            "current"
        } else {
            "not current (retracted or superseded)"
        };
        out.push_str(&format!("{pad}{object} — {status}\n"));
        if !seen.insert(object.to_string()) {
            out.push_str(&format!("{pad}  (explained above)\n"));
            return;
        }
        // The creating decision, if any (latest record producing it).
        let creator = self
            .records()
            .iter()
            .rev()
            .find(|r| r.outputs.contains(&object.to_string()));
        match creator {
            None => {
                // A registered object: show its external source.
                if let Some(id) = self.kb.lookup(object) {
                    let sources = self.kb.attr_values(id, names::SOURCE_I);
                    if let Some(&s) = sources.first() {
                        out.push_str(&format!(
                            "{pad}  registered design object (source: {})\n",
                            self.kb.display(s)
                        ));
                        return;
                    }
                }
                out.push_str(&format!("{pad}  registered design object\n"));
            }
            Some(r) => {
                let dimension = self
                    .classes
                    .get(&r.class)
                    .map(|dc| dc.dimension.to_string())
                    .unwrap_or_else(|| "?".to_string());
                let retracted = if r.retracted { ", RETRACTED" } else { "" };
                out.push_str(&format!(
                    "{pad}  justified by `{}` (class {}, {dimension}{retracted})\n",
                    r.name, r.class
                ));
                out.push_str(&format!(
                    "{pad}  performed by {} at tick {}{}\n",
                    r.performer,
                    r.tick,
                    r.tool
                        .as_ref()
                        .map(|t| format!(" using {t}"))
                        .unwrap_or_else(|| " (manually)".to_string())
                ));
                self.explain_obligations(r, &pad, out);
                for input in &r.inputs {
                    self.explain_object(input, depth + 1, seen, out);
                }
            }
        }
    }

    fn explain_obligations(
        &self,
        record: &crate::system::DecisionRecord,
        pad: &str,
        out: &mut String,
    ) {
        let Some(dc) = self.classes.get(&record.class) else {
            return;
        };
        if dc.obligations.is_empty() {
            return;
        }
        let guarantees: Vec<&str> = record
            .tool
            .as_ref()
            .and_then(|t| self.tools.get(t))
            .map(|t| t.guarantees.iter().map(|s| s.as_str()).collect())
            .unwrap_or_default();
        for ob in &dc.obligations {
            let how = if guarantees.contains(&ob.name.as_str()) {
                format!(
                    "guaranteed by tool {}",
                    record.tool.as_deref().unwrap_or("?")
                )
            } else {
                match record.discharges.iter().find(|d| d.obligation() == ob.name) {
                    Some(Discharge::Formal { .. }) => "proved formally".to_string(),
                    Some(Discharge::Signature { by, .. }) => {
                        format!("signed by {by}")
                    }
                    None => "UNCOVERED".to_string(),
                }
            };
            out.push_str(&format!(
                "{pad}  obligation `{}`: {how} — {}\n",
                ob.name, ob.statement
            ));
        }
    }

    /// Explains a decision instance: its documentation record rendered
    /// as prose.
    pub fn explain_decision(&self, name: &str) -> GkbmsResult<String> {
        let r = self
            .record(name)
            .ok_or_else(|| GkbmsError::Unknown(format!("decision `{name}`")))?;
        let mut out = format!(
            "decision `{}` of class {} {}\n",
            r.name,
            r.class,
            if r.retracted {
                "(retracted)"
            } else {
                "(effective)"
            }
        );
        out.push_str(&format!(
            "  performed by {} at tick {}{}\n",
            r.performer,
            r.tick,
            r.tool
                .as_ref()
                .map(|t| format!(" using {t}"))
                .unwrap_or_else(|| " (manually)".to_string())
        ));
        out.push_str(&format!("  from: {}\n", r.inputs.join(", ")));
        out.push_str(&format!("  to:   {}\n", r.outputs.join(", ")));
        self.explain_obligations(r, "", &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::decisions::Discharge;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use crate::system::DecisionRequest;

    fn history() -> crate::system::Gkbms {
        let mut g = scenario_gkbms();
        g.register_object(
            "Invitation",
            kernel::TDL_ENTITY_CLASS,
            "design.tdl#Invitation",
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecNormalize", "normalizeInvitations", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        g
    }

    #[test]
    fn explanation_traces_to_registered_sources() {
        let g = history();
        let e = g.explain("InvitationRel2").unwrap();
        assert!(e.contains("InvitationRel2 — current"));
        assert!(e.contains("justified by `normalizeInvitations`"));
        assert!(e.contains("refinement"));
        assert!(e.contains("signed by dev"));
        assert!(e.contains("justified by `mapInvitations`"));
        assert!(e.contains("guaranteed by tool TDL-DBPL-Mapper"));
        assert!(e.contains("registered design object (source: design.tdl#Invitation)"));
        // Indentation grows with depth.
        assert!(e.contains("\n    Invitation — current"));
    }

    #[test]
    fn explanation_marks_retracted_objects() {
        let mut g = history();
        g.retract_decision("normalizeInvitations").unwrap();
        let e = g.explain("InvitationRel2").unwrap();
        assert!(e.contains("not current"));
        assert!(e.contains("RETRACTED"));
    }

    #[test]
    fn shared_subtrees_not_reexplained() {
        let mut g = history();
        g.execute(
            DecisionRequest::new("DecNormalize", "again", "dev")
                .input("InvitationRel")
                .output("Other", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        // Explain an object twice in one tree: second time marked.
        let e = g.explain("InvitationRel").unwrap();
        assert_eq!(e.matches("justified by `mapInvitations`").count(), 1);
    }

    #[test]
    fn explain_decision_renders_record() {
        let g = history();
        let e = g.explain_decision("mapInvitations").unwrap();
        assert!(e.contains("class TDL_MappingDec (effective)"));
        assert!(e.contains("from: Invitation"));
        assert!(e.contains("to:   InvitationRel"));
        assert!(g.explain_decision("ghost").is_err());
    }

    #[test]
    fn unknown_object_is_error() {
        let g = history();
        assert!(g.explain("Ghost").is_err());
    }
}
