//! Dependency-graph derivation with lemma caching (figs 2-2 … 2-4).
//!
//! "The inference engines may enhance their performance by lemma
//! generation; this capability is, e.g., used in creating dependency
//! graph objects of the GKBMS." The derived graph is cached on the
//! [`Gkbms`] and invalidated by any decision execution or retraction;
//! [`Gkbms::graph_builds`] counts actual rebuilds for the benches.

use crate::system::Gkbms;
use datalog::ast::{Atom, Program, Term, Value};
use datalog::db::Database;
use datalog::magic;
use modelbase::display::dot;
use modelbase::display::graphdag::Graph;

impl Gkbms {
    /// Builds (or serves from cache) the dependency graph over all
    /// effective decisions: `input --from--> decision --to--> output`,
    /// plus `tool --by--> decision` edges.
    pub fn dependency_graph(&mut self) -> Graph {
        if let Some(g) = &self.graph_cache {
            return g.clone();
        }
        self.graph_builds += 1;
        let mut g = Graph::new();
        for r in &self.records {
            if r.retracted {
                continue;
            }
            let dlabel = format!("{}:{}", r.class, r.name);
            g.node(dlabel.clone());
            for input in &r.inputs {
                g.edge(input.clone(), dlabel.clone(), "from");
            }
            for output in &r.outputs {
                g.edge(dlabel.clone(), output.clone(), "to");
            }
            if let Some(tool) = &r.tool {
                g.edge(tool.clone(), dlabel.clone(), "by");
            }
        }
        self.graph_cache = Some(g.clone());
        g
    }

    /// The fig 2-4 view: the dependency graph with the objects affected
    /// by a (hypothetical or performed) retraction highlighted.
    pub fn dependency_graph_highlighting(&mut self, affected: &[String]) -> Graph {
        let mut g = self.dependency_graph();
        for name in affected {
            g.highlight(name);
        }
        g
    }

    /// DOT export of the current dependency graph.
    pub fn dependency_dot(&mut self) -> String {
        dot::to_dot(&self.dependency_graph(), "gkbms-dependencies")
    }

    /// Objects transitively derived from `object` through effective
    /// decisions — what a change to `object` would touch.
    ///
    /// Derived by the inference engines: the effective decisions export
    /// as `dep(Input, Output)` edges, and the magic-sets transformation
    /// of transitive reachability (seeded with `object`) runs on the
    /// indexed bottom-up engine, so only the relevant part of the
    /// closure is computed.
    pub fn consequences_of(&self, object: &str) -> Vec<String> {
        let mut edb = Database::new();
        for r in self.records.iter().filter(|r| !r.retracted) {
            for input in &r.inputs {
                for output in &r.outputs {
                    edb.insert(
                        "dep",
                        vec![Value::sym(input.clone()), Value::sym(output.clone())],
                    )
                    .expect("dep/2 arity is fixed");
                }
            }
        }
        let program =
            Program::parse("reach(X, Y) :- dep(X, Y).\nreach(X, Z) :- dep(X, Y), reach(Y, Z).")
                .expect("reachability program parses");
        let query = Atom::new("reach", vec![Term::sym(object), Term::var("Y")]);
        let answers = magic::magic_evaluate(&program, &edb, &query)
            .expect("reachability evaluation cannot fail");
        let mut out: Vec<String> = answers
            .into_iter()
            .map(|t| t[1].to_string())
            .filter(|o| o != object)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::decisions::Discharge;
    use crate::metamodel::kernel;
    use crate::system::tests::scenario_gkbms;
    use crate::system::DecisionRequest;

    #[test]
    fn graph_reflects_decisions() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        let graph = g.dependency_graph();
        let rendered = graph.render();
        assert!(rendered.contains("Invitation --from--> TDL_MappingDec:mapInvitations"));
        assert!(rendered.contains("TDL_MappingDec:mapInvitations --to--> InvitationRel"));
        assert!(rendered.contains("TDL-DBPL-Mapper --by--> TDL_MappingDec:mapInvitations"));
        let dot = g.dependency_dot();
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn lemma_cache_avoids_rebuilds() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "m", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        let _ = g.dependency_graph();
        let _ = g.dependency_graph();
        let _ = g.dependency_graph();
        assert_eq!(g.graph_builds, 1, "served from the lemma cache");
        // A new decision invalidates the cache.
        g.execute(
            DecisionRequest::new("DecNormalize", "n", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        let _ = g.dependency_graph();
        assert_eq!(g.graph_builds, 2);
    }

    #[test]
    fn retracted_decisions_leave_the_graph() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "m", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.retract_decision("m").unwrap();
        let rendered = g.dependency_graph().render();
        assert!(!rendered.contains("InvitationRel"));
    }

    #[test]
    fn lemma_cache_invalidated_by_retraction_under_churn() {
        // Regression: the cache must be dropped on *retraction*, not
        // just on execution — a stale lemma would keep serving edges
        // for decisions that no longer hold. Driven by the synthetic
        // generator so the cycle repeats across a realistic mix.
        use crate::synth::{self, SynthConfig, SynthRng};
        let mut g = crate::system::Gkbms::new().unwrap();
        synth::generate_into(
            &mut g,
            &SynthConfig {
                seed: 3,
                decisions: 50,
                retraction_rate: 0.0,
                ..SynthConfig::default()
            },
        )
        .unwrap();
        let mut rng = SynthRng::new(9);
        let baseline = g.graph_builds;
        for round in 0..5u64 {
            let _ = g.dependency_graph();
            let _ = g.dependency_graph();
            assert_eq!(
                g.graph_builds,
                baseline + round + 1,
                "repeat reads serve from the lemma cache"
            );
            // Retract one effective decision; the next read must rebuild
            // and the retracted decision's edges must be gone.
            let name = loop {
                let i = rng.below(g.records().len());
                let r = &g.records()[i];
                if g.is_effective(&r.name) {
                    break r.name.clone();
                }
            };
            g.retract_decision(&name).unwrap();
            let rendered = g.dependency_graph().render();
            assert_eq!(
                g.graph_builds,
                baseline + round + 2,
                "retraction invalidates the lemma cache"
            );
            let token = format!(":{name}");
            assert!(
                !rendered.split_whitespace().any(|w| w.ends_with(&token)),
                "retracted decision `{name}` still in graph"
            );
        }
    }

    #[test]
    fn consequences_are_transitive() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "m", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("DecNormalize", "n", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .output("InvReceivRel", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        assert_eq!(
            g.consequences_of("Invitation"),
            vec!["InvReceivRel", "InvitationRel", "InvitationRel2"]
        );
        assert_eq!(
            g.consequences_of("InvitationRel"),
            vec!["InvReceivRel", "InvitationRel2"]
        );
        assert!(g.consequences_of("InvReceivRel").is_empty());
    }

    #[test]
    fn highlighting_marks_affected() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "m", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        let affected = g.consequences_of("Invitation");
        let graph = g.dependency_graph_highlighting(&affected);
        assert!(graph.render().contains("*[InvitationRel]*"));
    }
}
