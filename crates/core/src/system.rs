//! The GKBMS proper: design-object registration, system-guided tool
//! selection, decision execution as nested transactions, and selective
//! backtracking (§2.2, §3.2).
//!
//! Every executed decision is documented in the Telos KB (fig 3-3's
//! bottom layer) *and* contributes a justification to an embedded JTMS:
//! `inputs ∧ decision ⊢ outputs`. Retracting a decision takes exactly
//! its consequences OUT — "supporting this consistent, selective
//! backtracking is the main purpose of introducing the explicit
//! documentation of design decisions and dependencies" (§2.1).

use crate::decisions::{DecisionClass, Discharge, ToolSpec};
use crate::error::{GkbmsError, GkbmsResult};
use crate::metamodel::{self, names, ProcessModel};
use rms::jtms::{Jtms, JtmsNodeId};
use std::collections::HashMap;
use telos::assertion;
use telos::{Kb, PropId};

/// A request to execute a design decision.
#[derive(Debug, Clone)]
pub struct DecisionRequest {
    /// Decision class name.
    pub class: String,
    /// Instance name (e.g. `normalizeInvitations`).
    pub name: String,
    /// The deciding agent.
    pub performer: String,
    /// Tool used, if any.
    pub tool: Option<String>,
    /// Names of existing design objects consumed (FROM).
    pub inputs: Vec<String>,
    /// `(name, design-object class)` pairs created (TO).
    pub outputs: Vec<(String, String)>,
    /// Discharges for obligations the tool does not guarantee.
    pub discharges: Vec<Discharge>,
}

impl DecisionRequest {
    /// A builder-style constructor.
    pub fn new(class: &str, name: &str, performer: &str) -> Self {
        DecisionRequest {
            class: class.to_string(),
            name: name.to_string(),
            performer: performer.to_string(),
            tool: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
            discharges: Vec::new(),
        }
    }

    /// Sets the tool.
    pub fn with_tool(mut self, tool: &str) -> Self {
        self.tool = Some(tool.to_string());
        self
    }

    /// Adds an input object.
    pub fn input(mut self, name: &str) -> Self {
        self.inputs.push(name.to_string());
        self
    }

    /// Adds an output object with its design-object class.
    pub fn output(mut self, name: &str, class: &str) -> Self {
        self.outputs.push((name.to_string(), class.to_string()));
        self
    }

    /// Adds a discharge.
    pub fn discharge(mut self, d: Discharge) -> Self {
        self.discharges.push(d);
        self
    }
}

/// The documentation record of one executed decision.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    /// Instance name.
    pub name: String,
    /// Decision class.
    pub class: String,
    /// The deciding agent.
    pub performer: String,
    /// Tool used, if any.
    pub tool: Option<String>,
    /// Input object names.
    pub inputs: Vec<String>,
    /// Output object names.
    pub outputs: Vec<String>,
    /// Design-object class of each output (parallel to `outputs`).
    pub output_classes: Vec<String>,
    /// Recorded discharges.
    pub discharges: Vec<Discharge>,
    /// Belief tick at execution.
    pub tick: i64,
    /// Monotonic commit sequence number: total order of executions,
    /// explicit retractions and raw TELL/UNTELL events across one
    /// GKBMS history, used to replay same-tick events in commit order.
    pub seq: u64,
    /// True once retracted.
    pub retracted: bool,
    /// The decision instance proposition.
    pub prop: PropId,
}

/// Summary returned by a successful execution.
#[derive(Debug, Clone)]
pub struct DecisionSummary {
    /// Decision instance name.
    pub name: String,
    /// Objects created.
    pub created: Vec<String>,
    /// Belief tick of the execution.
    pub tick: i64,
}

/// One entry of the raw TELL/UNTELL log (persisted by replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TellEvent {
    /// Objectbase concrete syntax, possibly several frames.
    Tell(String),
    /// Cascading UNTELL of one object.
    Untell(String),
}

/// The Global KBMS.
pub struct Gkbms {
    pub(crate) kb: Kb,
    pub(crate) pm: ProcessModel,
    pub(crate) jtms: Jtms,
    pub(crate) classes: HashMap<String, DecisionClass>,
    pub(crate) class_order: Vec<String>,
    pub(crate) tools: HashMap<String, ToolSpec>,
    pub(crate) records: Vec<DecisionRecord>,
    pub(crate) object_node: HashMap<String, JtmsNodeId>,
    pub(crate) decision_node: HashMap<String, JtmsNodeId>,
    pub(crate) graph_cache: Option<modelbase::display::Graph>,
    /// Decision-level nogoods recorded by conflict resolution.
    pub(crate) nogoods: Vec<Vec<String>>,
    /// Definition/registration logs, for persistence by replay.
    pub(crate) object_class_log: Vec<(String, String, Option<String>)>,
    pub(crate) tool_order: Vec<String>,
    pub(crate) register_log: Vec<(String, String, String)>,
    /// Explicit retractions as `(seq, tick, decision)` (cascades are
    /// re-derived on replay).
    pub(crate) retraction_log: Vec<(u64, i64, String)>,
    /// Raw TELL/UNTELL traffic as `(seq, tick, event)`, so ad-hoc
    /// frames told through the service survive save/load like
    /// decisions do.
    pub(crate) tell_log: Vec<(u64, i64, TellEvent)>,
    /// Commit sequence counter shared by records, retractions and raw
    /// tells — the total event order that persistence sorts on.
    pub(crate) seq: u64,
    /// Live write-ahead journal, when attached via [`Gkbms::recover`].
    pub(crate) journal: Option<crate::journal::Journal>,
    /// Journal op sequence covered by the checkpoint snapshot this
    /// instance was loaded from, 0 otherwise. Set by replaying the
    /// snapshot's leading coverage record; recovery skips WAL records
    /// at or below it so an interrupted checkpoint (snapshot renamed,
    /// WAL not yet truncated) never double-applies history.
    pub(crate) snapshot_covers: u64,
    /// Sequence epoch: starts at 1 and is bumped by [`Gkbms::promote`]
    /// when a replica takes over as leader. Every WAL record is framed
    /// with the epoch it was written under; the replication applier
    /// refuses records from an older epoch (fencing a deposed leader).
    pub(crate) epoch: u64,
    /// Last op sequence applied from a replication stream — mirrors
    /// `journal.appended_ops` on journaled replicas, and is the only
    /// applied-position record on journal-less ones.
    pub(crate) replica_applied: u64,
    /// Registered materialized deductive views, incrementally
    /// maintained by every belief-changing mutation (see
    /// [`crate::views`]).
    pub(crate) views: Vec<crate::views::RegisteredView>,
    /// The per-SCC fingerprint cache of the admission-time analyzer:
    /// a TELL re-analyzes only the components its delta dirties.
    /// Behind a mutex because linting is a `&self` read operation.
    pub(crate) lint_cache: std::sync::Mutex<analysis::AnalysisCache>,
    /// The lint context derived from the KB, keyed on
    /// `(kb.len(), kb.now())` so back-to-back lints of an unchanged
    /// KB skip the O(KB) context rebuild.
    pub(crate) lint_ctx: std::sync::Mutex<Option<((usize, i64), analysis::LintContext)>>,
    /// Statistics: dependency-graph rebuilds (lemma generation, E-2).
    pub graph_builds: u64,
}

impl Gkbms {
    /// A fresh GKBMS with the process model and DAIDA kernel installed.
    pub fn new() -> GkbmsResult<Self> {
        let mut kb = Kb::new();
        let pm = metamodel::bootstrap(&mut kb)?;
        metamodel::install_kernel(&mut kb, &pm)?;
        Ok(Gkbms {
            kb,
            pm,
            jtms: Jtms::new(),
            classes: HashMap::new(),
            class_order: Vec::new(),
            tools: HashMap::new(),
            records: Vec::new(),
            object_node: HashMap::new(),
            decision_node: HashMap::new(),
            graph_cache: None,
            nogoods: Vec::new(),
            object_class_log: Vec::new(),
            tool_order: Vec::new(),
            register_log: Vec::new(),
            retraction_log: Vec::new(),
            tell_log: Vec::new(),
            seq: 0,
            journal: None,
            snapshot_covers: 0,
            epoch: 1,
            replica_applied: 0,
            views: Vec::new(),
            lint_cache: std::sync::Mutex::new(analysis::AnalysisCache::new()),
            lint_ctx: std::sync::Mutex::new(None),
            graph_builds: 0,
        })
    }

    /// The current sequence epoch (1 on a fresh system; bumped by every
    /// [`Gkbms::promote`] in the system's history).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The last journal op sequence this instance holds: the journal's
    /// appended-op counter when one is attached, or the position of the
    /// last replicated record applied into a journal-less replica.
    pub fn applied_seq(&self) -> u64 {
        match &self.journal {
            Some(j) => j.appended_ops(),
            None => self.replica_applied,
        }
    }

    /// Next commit sequence number.
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Read access to the knowledge base.
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// Mutable access to the knowledge base, for documentation-level
    /// TELL/UNTELL applied through the server's wire protocol. Frames
    /// told this way are ordinary Telos propositions — they do not
    /// create JTMS justifications (that is what [`Gkbms::execute`] is
    /// for), but they participate in ASK, consistency checking, and
    /// temporal navigation like everything else.
    pub fn kb_mut(&mut self) -> &mut Kb {
        &mut self.kb
    }

    /// A read-only snapshot of the KB pinned at the current belief
    /// tick — the query surface handed to snapshot-isolated read
    /// sessions.
    pub fn snapshot(&self) -> telos::Snapshot<'_> {
        self.kb.snapshot()
    }

    /// A read-only snapshot pinned at belief tick `at`.
    pub fn snapshot_at(&self, at: i64) -> telos::Snapshot<'_> {
        self.kb.snapshot_at(at)
    }

    /// Opens a write transaction boundary: advances the belief clock so
    /// that everything a subsequent write creates lies strictly after
    /// any snapshot watermark pinned at or before the current tick.
    /// Returns the new tick. The server calls this before every
    /// mutating request; local single-threaded use does not need it.
    pub fn begin_write(&mut self) -> i64 {
        self.kb.tick()
    }

    /// TELLs objectbase concrete syntax (`TELL … end`, possibly several
    /// frames) as one write transaction, logging the source so it is
    /// replayed by [`Gkbms::load`]. Returns the number of frames told.
    pub fn tell_src(&mut self, src: &str) -> GkbmsResult<usize> {
        self.tell_src_checked(src, false).map(|(n, _)| n)
    }

    /// [`Gkbms::tell_src`] with the admission-time static analyzer in
    /// front: lint errors reject the batch before anything is written;
    /// warnings are admitted and returned — unless `strict`, which
    /// rejects them too (the server's `strict_lint` switch).
    pub fn tell_src_checked(
        &mut self,
        src: &str,
        strict: bool,
    ) -> GkbmsResult<(usize, Vec<analysis::Diagnostic>)> {
        let frames = objectbase::ObjectFrame::parse_all(src)?;
        let diags = self.lint_frames(&frames);
        if analysis::has_errors(&diags) || (strict && !diags.is_empty()) {
            return Err(GkbmsError::Lint(diags));
        }
        let tick = self.begin_write();
        let mark = self.kb.len();
        let told = objectbase::transform::tell_all(&mut self.kb, &frames);
        // Views must track the KB even when a multi-frame batch fails
        // midway (earlier frames stay told).
        self.propagate_new_props(mark)?;
        told?;
        let seq = self.next_seq();
        self.tell_log
            .push((seq, tick, TellEvent::Tell(src.to_string())));
        self.journal_append(crate::persist::encode_tell(src))?;
        obs::counter!("gkbms_tells_total", "Frames TELLed into the knowledge base")
            .add(frames.len() as u64);
        Ok((frames.len(), diags))
    }

    /// Runs the static analyzer on a parsed frame batch against the
    /// current KB, recording lint metrics.
    pub fn lint_frames(&self, frames: &[objectbase::ObjectFrame]) -> Vec<analysis::Diagnostic> {
        self.with_lint_metrics(|ctx, cache| {
            analysis::frames::lint_frames_cached(frames, ctx, cache)
        })
    }

    /// Lints arbitrary source — a CML script or a datalog program —
    /// against the current KB without admitting anything (the `\lint`
    /// command and the server's `Lint` op).
    pub fn lint_src(&self, src: &str) -> Vec<analysis::Diagnostic> {
        self.with_lint_metrics(|ctx, cache| analysis::lint_source_cached(src, ctx, cache))
    }

    /// Renders the deductive evaluator's plan and cost estimate (the
    /// `Explain` wire op and `\explain`): the base program, the stored
    /// rules, and any extra rules in `src`, costed against the KB's
    /// measured EDB cardinalities.
    pub fn explain_src(&self, src: &str) -> GkbmsResult<String> {
        let ctx = self.lint_context();
        analysis::explain_source(src, &ctx)
            .map_err(|e| GkbmsError::Precondition(format!("explain: {e}")))
    }

    /// The lint context for the current KB state, rebuilt only when
    /// the KB changed since the last lint.
    pub(crate) fn lint_context(&self) -> analysis::LintContext {
        let key = (self.kb.len(), self.kb.now());
        let mut slot = self.lint_ctx.lock().expect("lint ctx lock");
        match &*slot {
            Some((k, ctx)) if *k == key => ctx.clone(),
            _ => {
                let ctx = analysis::LintContext::from_kb(&self.kb);
                *slot = Some((key, ctx.clone()));
                ctx
            }
        }
    }

    fn with_lint_metrics(
        &self,
        run: impl FnOnce(
            &analysis::LintContext,
            &mut analysis::AnalysisCache,
        ) -> Vec<analysis::Diagnostic>,
    ) -> Vec<analysis::Diagnostic> {
        let start = std::time::Instant::now();
        let ctx = self.lint_context();
        let mut cache = self.lint_cache.lock().expect("lint cache lock");
        let (before_re, before_hits) = (cache.sccs_reanalyzed, cache.fingerprint_hits);
        let diags = run(&ctx, &mut cache);
        obs::counter!(
            "gkbms_lint_incremental_sccs_reanalyzed_total",
            "Rule-base SCCs the incremental analyzer actually re-analyzed"
        )
        .add(cache.sccs_reanalyzed - before_re);
        obs::counter!(
            "gkbms_lint_fingerprint_hits_total",
            "Rule-base SCCs served from the analyzer's fingerprint cache"
        )
        .add(cache.fingerprint_hits - before_hits);
        drop(cache);
        obs::histogram!(
            "gkbms_lint_seconds",
            "Wall-clock latency of admission-time lint runs"
        )
        .observe(start.elapsed());
        let errors = diags
            .iter()
            .filter(|d| d.severity == analysis::Severity::Error)
            .count() as u64;
        let warnings = diags.len() as u64 - errors;
        const HELP: &str = "Diagnostics emitted by the rule-base static analyzer";
        if errors > 0 {
            obs::registry()
                .counter("gkbms_lint_diagnostics_total{severity=\"error\"}", HELP)
                .add(errors);
        }
        if warnings > 0 {
            obs::registry()
                .counter("gkbms_lint_diagnostics_total{severity=\"warning\"}", HELP)
                .add(warnings);
        }
        diags
    }

    /// UNTELLs `name` (cascading) as one write transaction, logging the
    /// event for replay. Returns the number of propositions untold.
    pub fn untell(&mut self, name: &str) -> GkbmsResult<usize> {
        let tick = self.begin_write();
        let gone = objectbase::transform::untell_object(&mut self.kb, name)?;
        self.propagate_untold(&gone);
        let seq = self.next_seq();
        self.tell_log
            .push((seq, tick, TellEvent::Untell(name.to_string())));
        self.journal_append(crate::persist::encode_untell(name))?;
        obs::counter!(
            "gkbms_untells_total",
            "Objects UNTELLed (belief intervals closed)"
        )
        .inc();
        Ok(gone.len())
    }

    /// Read access to the JTMS.
    pub fn jtms(&self) -> &Jtms {
        &self.jtms
    }

    /// The process-model metaclass ids.
    pub fn process_model(&self) -> &ProcessModel {
        &self.pm
    }

    /// Executed decision records, in execution order.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// The record of a named decision.
    pub fn record(&self, name: &str) -> Option<&DecisionRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    // ----- schema-level definitions ---------------------------------------

    /// Runs a mutation and flows every proposition it created into the
    /// registered views — even on error, since failed definitions can
    /// leave earlier propositions of the batch believed.
    fn tracked<T>(&mut self, f: impl FnOnce(&mut Self) -> GkbmsResult<T>) -> GkbmsResult<T> {
        let mark = self.kb.len();
        let r = f(self);
        self.propagate_new_props(mark)?;
        r
    }

    /// Defines a design-object class (an instance of `DesignObject`).
    pub fn define_object_class(
        &mut self,
        name: &str,
        level: &str,
        parent: Option<&str>,
    ) -> GkbmsResult<PropId> {
        self.tracked(|g| g.define_object_class_inner(name, level, parent))
    }

    fn define_object_class_inner(
        &mut self,
        name: &str,
        level: &str,
        parent: Option<&str>,
    ) -> GkbmsResult<PropId> {
        let c = self.kb.individual(name)?;
        self.kb.instantiate(c, self.pm.design_object)?;
        let l = self.kb.individual(level)?;
        self.kb.put_attr(c, metamodel::kernel::LEVEL, l)?;
        // Declare the instance-level link labels so tokens' links are
        // well-formed under the aggregation axiom.
        self.kb
            .put_attr(c, names::JUSTIFICATION_I, self.pm.design_decision)?;
        self.kb.put_attr(c, names::SOURCE_I, self.pm.source_ref)?;
        if let Some(p) = parent {
            let p = self
                .kb
                .lookup(p)
                .ok_or_else(|| GkbmsError::Unknown(format!("object class `{p}`")))?;
            self.kb.specialize(c, p)?;
        }
        self.object_class_log.push((
            name.to_string(),
            level.to_string(),
            parent.map(|s| s.to_string()),
        ));
        self.journal_append(crate::persist::encode_object_class(name, level, parent))?;
        Ok(c)
    }

    /// Defines a decision class (an instance of `DesignDecision`,
    /// fig 3-3 middle layer).
    pub fn define_decision_class(&mut self, dc: DecisionClass) -> GkbmsResult<PropId> {
        self.tracked(|g| g.define_decision_class_inner(dc))
    }

    fn define_decision_class_inner(&mut self, dc: DecisionClass) -> GkbmsResult<PropId> {
        if self.classes.contains_key(&dc.name) {
            return Err(GkbmsError::Duplicate(format!(
                "decision class `{}`",
                dc.name
            )));
        }
        let prop = self.kb.individual(&dc.name)?;
        self.kb.instantiate(prop, self.pm.design_decision)?;
        for from in &dc.from_classes {
            let f = self
                .kb
                .lookup(from)
                .ok_or_else(|| GkbmsError::Unknown(format!("object class `{from}`")))?;
            self.kb.put_attr(prop, names::FROM_I, f)?;
        }
        for to in &dc.to_classes {
            let t = self
                .kb
                .lookup(to)
                .ok_or_else(|| GkbmsError::Unknown(format!("object class `{to}`")))?;
            self.kb.put_attr(prop, names::TO_I, t)?;
        }
        self.kb.put_attr(prop, names::BY_I, self.pm.design_tool)?;
        // Declare status/performer labels for decision instances.
        let status_target = self.kb.builtins().proposition;
        self.kb.put_attr(prop, "status", status_target)?;
        self.kb.put_attr(prop, "performer", self.pm.agent)?;
        if let Some(parent) = &dc.specializes {
            let p = self
                .kb
                .lookup(parent)
                .ok_or_else(|| GkbmsError::Unknown(format!("decision class `{parent}`")))?;
            self.kb.specialize(prop, p)?;
        }
        let payload = crate::persist::encode_decision_class(&dc);
        self.class_order.push(dc.name.clone());
        self.classes.insert(dc.name.clone(), dc);
        self.journal_append(payload)?;
        Ok(prop)
    }

    /// Registers a tool specification (an instance of `DesignTool`).
    pub fn register_tool(&mut self, spec: ToolSpec) -> GkbmsResult<PropId> {
        self.tracked(|g| g.register_tool_inner(spec))
    }

    fn register_tool_inner(&mut self, spec: ToolSpec) -> GkbmsResult<PropId> {
        if self.tools.contains_key(&spec.name) {
            return Err(GkbmsError::Duplicate(format!("tool `{}`", spec.name)));
        }
        let prop = self.kb.individual(&spec.name)?;
        self.kb.instantiate(prop, self.pm.design_tool)?;
        for dc in &spec.executes {
            let d = self
                .kb
                .lookup(dc)
                .ok_or_else(|| GkbmsError::Unknown(format!("decision class `{dc}`")))?;
            // The BY association at the class level (fig 2-6).
            self.kb.put_attr(d, names::BY_I, prop)?;
        }
        let payload = crate::persist::encode_tool(&spec);
        self.tool_order.push(spec.name.clone());
        self.tools.insert(spec.name.clone(), spec);
        self.journal_append(payload)?;
        Ok(prop)
    }

    // ----- object registration ---------------------------------------------

    /// Registers a design object token: an abstraction of a source
    /// "recorded outside the GKB in the DAIDA sub-environments"
    /// (fig 2-5). Registered objects are premises in the JTMS.
    pub fn register_object(
        &mut self,
        name: &str,
        class: &str,
        source: &str,
    ) -> GkbmsResult<PropId> {
        self.tracked(|g| g.register_object_inner(name, class, source))
    }

    fn register_object_inner(
        &mut self,
        name: &str,
        class: &str,
        source: &str,
    ) -> GkbmsResult<PropId> {
        let c = self
            .kb
            .lookup(class)
            .ok_or_else(|| GkbmsError::Unknown(format!("object class `{class}`")))?;
        let obj = self.kb.individual(name)?;
        self.kb.instantiate(obj, c)?;
        let src = self.kb.individual(source)?;
        self.kb.instantiate(src, self.pm.source_ref)?;
        self.kb.put_attr(obj, names::SOURCE_I, src)?;
        let node = *self
            .object_node
            .entry(name.to_string())
            .or_insert_with(|| self.jtms.node(name));
        self.jtms.justify(node, &[], &[]);
        self.graph_cache = None;
        self.register_log
            .push((name.to_string(), class.to_string(), source.to_string()));
        self.journal_append(crate::persist::encode_register(name, class, source))?;
        Ok(obj)
    }

    /// The JTMS node of a design object (creating it on demand).
    pub(crate) fn node_for(&mut self, name: &str) -> JtmsNodeId {
        if let Some(&n) = self.object_node.get(name) {
            return n;
        }
        let n = self.jtms.node(name);
        self.object_node.insert(name.to_string(), n);
        n
    }

    /// True if the design object is currently believed (IN).
    pub fn is_current(&self, name: &str) -> bool {
        self.object_node
            .get(name)
            .is_some_and(|&n| self.jtms.is_in(n))
    }

    /// Names of all currently believed design objects, sorted.
    pub fn current_objects(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .object_node
            .iter()
            .filter(|(_, &n)| self.jtms.is_in(n))
            .map(|(name, _)| name.clone())
            .collect();
        out.sort();
        out
    }

    // ----- tool selection (fig 2-6) -----------------------------------------

    /// Specialization depth of a decision class (for most-specific-
    /// first ordering).
    fn class_depth(&self, name: &str) -> usize {
        let mut depth = 0;
        let mut cur = name;
        while let Some(dc) = self.classes.get(cur) {
            match &dc.specializes {
                Some(p) => {
                    depth += 1;
                    cur = p;
                }
                None => break,
            }
            if depth > self.classes.len() {
                break; // defensive: malformed specialization chain
            }
        }
        depth
    }

    /// "The class of a selected object is matched against the input
    /// classes of decision classes; by testing the other input objects
    /// and preconditions of these classes, possible decisions
    /// applicable to this object are determined. A tool is now
    /// applicable to the initial object if it can execute one of these
    /// decision classes, normally the most specific one."
    ///
    /// Returns `(decision class, applicable tools)` pairs, most
    /// specific decision class first.
    pub fn applicable_decisions(&self, object: &str) -> GkbmsResult<Vec<(String, Vec<String>)>> {
        let obj = self
            .kb
            .lookup(object)
            .ok_or_else(|| GkbmsError::Unknown(format!("design object `{object}`")))?;
        let mut out: Vec<(String, Vec<String>)> = Vec::new();
        for name in &self.class_order {
            let dc = &self.classes[name];
            let class_match = dc.from_classes.iter().any(|fc| {
                self.kb
                    .lookup(fc)
                    .is_some_and(|fcid| self.kb.is_instance_of(obj, fcid))
            });
            if !class_match {
                continue;
            }
            if let Some(pre) = &dc.precondition {
                if !self.eval_precondition(pre, obj)? {
                    continue;
                }
            }
            let tools: Vec<String> = self
                .tools
                .values()
                .filter(|t| self.tool_covers(t, name))
                .map(|t| t.name.clone())
                .collect();
            out.push((name.clone(), sorted(tools)));
        }
        out.sort_by(|a, b| {
            self.class_depth(&b.0)
                .cmp(&self.class_depth(&a.0))
                .then_with(|| a.0.cmp(&b.0))
        });
        Ok(out)
    }

    /// True if the tool executes the class or one of its
    /// generalizations (an editor bound to the general mapping
    /// decision also serves the specific one).
    fn tool_covers(&self, tool: &ToolSpec, class: &str) -> bool {
        let mut cur = Some(class.to_string());
        let mut fuel = self.classes.len() + 1;
        while let Some(c) = cur {
            if tool.executes.contains(&c) {
                return true;
            }
            cur = self.classes.get(&c).and_then(|dc| dc.specializes.clone());
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        false
    }

    fn eval_precondition(&self, pre: &str, obj: PropId) -> GkbmsResult<bool> {
        let expr = assertion::parse(pre).map_err(GkbmsError::Telos)?;
        let mut env = assertion::Env::new();
        env.insert("x".to_string(), obj);
        assertion::eval(&self.kb, &expr, &mut env).map_err(GkbmsError::Telos)
    }

    // ----- decision execution ------------------------------------------------

    /// Executes a decision as a nested transaction: validates inputs,
    /// precondition and obligations; documents the decision instance
    /// with from/to/by links; checks consistency (set-oriented, over
    /// the batch); on violation, rolls everything back.
    pub fn execute(&mut self, req: DecisionRequest) -> GkbmsResult<DecisionSummary> {
        let dc = self
            .classes
            .get(&req.class)
            .ok_or_else(|| GkbmsError::Unknown(format!("decision class `{}`", req.class)))?
            .clone();
        if self.record(&req.name).is_some() {
            return Err(GkbmsError::Duplicate(format!("decision `{}`", req.name)));
        }

        // Inputs must exist, be believed, and satisfy the precondition.
        let mut input_ids = Vec::new();
        for input in &req.inputs {
            if self.object_node.contains_key(input.as_str()) && !self.is_current(input) {
                return Err(GkbmsError::Precondition(format!(
                    "input `{input}` is not current (retracted)"
                )));
            }
            let id = self
                .kb
                .lookup(input)
                .ok_or_else(|| GkbmsError::Unknown(format!("input object `{input}`")))?;
            if !self.is_current(input) {
                return Err(GkbmsError::Precondition(format!(
                    "input `{input}` is not current (never registered as a design object)"
                )));
            }
            input_ids.push(id);
        }
        if let Some(pre) = &dc.precondition {
            for (input, &id) in req.inputs.iter().zip(&input_ids) {
                if !self.eval_precondition(pre, id)? {
                    return Err(GkbmsError::Precondition(format!(
                        "`{pre}` fails for input `{input}`"
                    )));
                }
            }
        }

        // Tool association (fig 2-6): the tool must execute this class
        // or a generalization of it.
        if let Some(tool) = &req.tool {
            let spec = self
                .tools
                .get(tool)
                .ok_or_else(|| GkbmsError::Unknown(format!("tool `{tool}`")))?;
            if !self.tool_covers(spec, &dc.name) {
                return Err(GkbmsError::Precondition(format!(
                    "tool `{tool}` is not associated with decision class `{}`",
                    dc.name
                )));
            }
        }

        // Obligations: guaranteed by the tool, or discharged formally /
        // by signature.
        let guarantees: Vec<String> = req
            .tool
            .as_ref()
            .and_then(|t| self.tools.get(t))
            .map(|t| t.guarantees.clone())
            .unwrap_or_default();
        for ob in &dc.obligations {
            if guarantees.contains(&ob.name) {
                continue;
            }
            let discharge = req
                .discharges
                .iter()
                .find(|d| d.obligation() == ob.name)
                .ok_or_else(|| {
                    GkbmsError::Obligation(format!(
                        "`{}` of `{}` — not guaranteed by the tool and not discharged",
                        ob.name, dc.name
                    ))
                })?;
            if let Discharge::Formal { .. } = discharge {
                // A formal proof evaluates the obligation's statement.
                let expr = assertion::parse(&ob.statement).map_err(|e| {
                    GkbmsError::Obligation(format!(
                        "`{}` cannot be proved formally ({e}); sign it instead",
                        ob.name
                    ))
                })?;
                let holds =
                    assertion::eval(&self.kb, &expr, &mut assertion::Env::new()).map_err(|e| {
                        GkbmsError::Obligation(format!("`{}` unevaluable: {e}", ob.name))
                    })?;
                if !holds {
                    return Err(GkbmsError::Obligation(format!(
                        "`{}` formally refuted",
                        ob.name
                    )));
                }
            }
        }

        // ----- nested transaction body -----
        let mark = self.kb.len();
        let result = self.execute_body(&req, &dc, &input_ids);
        match result {
            Ok(summary) => Ok(summary),
            Err(e) => {
                // Abort: untell everything the body created, and take
                // the same deltas back out of the registered views.
                let created: Vec<PropId> = (mark..self.kb.len())
                    .map(crate::error::checked_prop_id)
                    .collect::<GkbmsResult<_>>()?;
                let mut undone = Vec::new();
                for id in created.into_iter().rev() {
                    if self.kb.get(id).map(|p| p.is_believed()).unwrap_or(false) {
                        let _ = self.kb.untell(id);
                        undone.push(id);
                    }
                }
                self.propagate_untold(&undone);
                Err(e)
            }
        }
    }

    fn execute_body(
        &mut self,
        req: &DecisionRequest,
        dc: &DecisionClass,
        input_ids: &[PropId],
    ) -> GkbmsResult<DecisionSummary> {
        let mark = self.kb.len();
        let class_prop = self.kb.expect(&dc.name)?;
        let decision = self.kb.individual(&req.name)?;
        self.kb.instantiate(decision, class_prop)?;
        let performer = self.kb.individual(&req.performer)?;
        self.kb.instantiate(performer, self.pm.agent)?;
        self.kb.put_attr(decision, "performer", performer)?;
        for &input in input_ids {
            self.kb.put_attr(decision, names::FROM_I, input)?;
        }
        let mut output_names = Vec::new();
        for (name, class) in &req.outputs {
            let c = self
                .kb
                .lookup(class)
                .ok_or_else(|| GkbmsError::Unknown(format!("object class `{class}`")))?;
            // The output class must be covered by the decision class's
            // TO declaration (exactly or as a specialization).
            let to_ok = dc.to_classes.iter().any(|tc| {
                self.kb
                    .lookup(tc)
                    .is_some_and(|tcid| tcid == c || self.kb.isa_ancestors(c).contains(&tcid))
            });
            if !to_ok && !dc.to_classes.is_empty() {
                return Err(GkbmsError::Precondition(format!(
                    "output class `{class}` is not among TO classes of `{}`",
                    dc.name
                )));
            }
            let obj = self.kb.individual(name)?;
            self.kb.instantiate(obj, c)?;
            self.kb.put_attr(decision, names::TO_I, obj)?;
            self.kb.put_attr(obj, names::JUSTIFICATION_I, decision)?;
            output_names.push(name.clone());
        }
        if let Some(tool) = &req.tool {
            let t = self.kb.expect(tool)?;
            self.kb.put_attr(decision, names::BY_I, t)?;
        }

        // Set-oriented consistency check over the batch (E-1). The
        // views see the batch first so the class-closure step can be
        // answered from the materialized `inT` relation.
        let created: Vec<PropId> = (mark..self.kb.len())
            .map(crate::error::checked_prop_id)
            .collect::<GkbmsResult<_>>()?;
        self.propagate_new_props(mark)?;
        let (violations, _) = self.check_touched_with_views(&created);
        if !violations.is_empty() {
            return Err(GkbmsError::Aborted {
                violations: violations.iter().map(|v| v.to_string()).collect(),
            });
        }

        // JTMS: the decision is an assumption; outputs are justified by
        // the decision together with its inputs.
        let dnode = self.jtms.assumption(format!("decision:{}", req.name));
        self.decision_node.insert(req.name.clone(), dnode);
        let mut antecedents = vec![dnode];
        for input in &req.inputs {
            antecedents.push(self.node_for(input));
        }
        for out in &output_names {
            let onode = self.node_for(out);
            self.jtms.justify(onode, &antecedents, &[]);
        }

        let tick = self.kb.tick();
        let seq = self.next_seq();
        self.records.push(DecisionRecord {
            name: req.name.clone(),
            class: dc.name.clone(),
            performer: req.performer.clone(),
            tool: req.tool.clone(),
            inputs: req.inputs.clone(),
            outputs: output_names.clone(),
            output_classes: req.outputs.iter().map(|(_, c)| c.clone()).collect(),
            discharges: req.discharges.clone(),
            tick,
            seq,
            retracted: false,
            prop: decision,
        });
        let payload = crate::persist::encode_execute(self.records.last().unwrap());
        self.journal_append(payload)?;
        self.graph_cache = None;
        obs::counter!(
            "gkbms_decisions_executed_total",
            "Design decisions executed successfully"
        )
        .inc();
        obs::counter!(
            "gkbms_obligations_discharged_total",
            "Proof obligations discharged (formally or by signature)"
        )
        .add(req.discharges.len() as u64);
        Ok(DecisionSummary {
            name: req.name.clone(),
            created: output_names,
            tick,
        })
    }

    // ----- selective backtracking (fig 2-4) -----------------------------------

    /// Retracts a decision "together with all its consequent changes,
    /// without redoing all the rest of the design". Returns the names
    /// of the design objects that went out of belief — fig 2-4's
    /// highlighted objects.
    pub fn retract_decision(&mut self, name: &str) -> GkbmsResult<Vec<String>> {
        let at = self
            .records
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| GkbmsError::NotRetractable(format!("unknown decision `{name}`")))?;
        if self.records[at].retracted {
            return Err(GkbmsError::NotRetractable(format!(
                "decision `{name}` already retracted"
            )));
        }
        let dnode = self.decision_node[name];
        let before: Vec<(String, bool)> = self
            .object_node
            .iter()
            .map(|(n, &id)| (n.clone(), self.jtms.is_in(id)))
            .collect();
        self.jtms.retract(dnode);
        let mut retracted_decisions = vec![at];
        // Cascade: decisions whose outputs just went OUT are dangling —
        // retract their assumptions too, so a later replay of an
        // upstream decision cannot silently reinstate them (their KB
        // objects are untold below; reinstating them is the job of an
        // explicit replay, §3.3).
        loop {
            let mut changed = false;
            for i in 0..self.records.len() {
                if self.records[i].retracted || retracted_decisions.contains(&i) {
                    continue;
                }
                let dangling = self.records[i].outputs.iter().any(|o| !self.is_current(o));
                if dangling {
                    let node = self.decision_node[&self.records[i].name];
                    self.jtms.retract(node);
                    retracted_decisions.push(i);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut affected: Vec<String> = before
            .into_iter()
            .filter(|(n, was_in)| *was_in && !self.is_current(n))
            .map(|(n, _)| n)
            .collect();
        affected.sort();

        // Documentation: close belief of the affected objects and mark
        // the decision instances as retracted; the records stay — the
        // GKBMS never forgets history.
        let mut gone = Vec::new();
        for obj in &affected {
            if let Some(id) = self.kb.lookup(obj) {
                gone.extend(self.kb.untell_cascade(id)?);
            }
        }
        self.propagate_untold(&gone);
        let mark = self.kb.len();
        let retracted_status = self.kb.individual("retracted")?;
        for i in retracted_decisions {
            let prop = self.records[i].prop;
            self.kb.put_attr(prop, "status", retracted_status)?;
            self.records[i].retracted = true;
        }
        self.propagate_new_props(mark)?;
        let t = self.kb.tick();
        let seq = self.next_seq();
        self.retraction_log.push((seq, t, name.to_string()));
        self.journal_append(crate::persist::encode_retract(name))?;
        self.graph_cache = None;
        obs::counter!(
            "gkbms_decisions_retracted_total",
            "Design decisions retracted (explicit plus cascaded)"
        )
        .inc();
        Ok(affected)
    }

    /// True if the decision is effective: executed, not retracted, and
    /// all its outputs still current.
    pub fn is_effective(&self, name: &str) -> bool {
        self.record(name)
            .is_some_and(|r| !r.retracted && r.outputs.iter().all(|o| self.is_current(o)))
    }
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::decisions::DecisionDimension;
    use crate::metamodel::kernel;

    /// A GKBMS with the scenario's decision classes and tools.
    pub(crate) fn scenario_gkbms() -> Gkbms {
        let mut g = Gkbms::new().unwrap();
        g.define_decision_class(
            DecisionClass::new("DBPL_MappingDec", DecisionDimension::Mapping)
                .from_classes(&[kernel::TDL_ENTITY_CLASS])
                .to_classes(&[
                    kernel::DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                ]),
        )
        .unwrap();
        g.define_decision_class(
            DecisionClass::new("TDL_MappingDec", DecisionDimension::Mapping)
                .from_classes(&[kernel::TDL_ENTITY_CLASS])
                .to_classes(&[
                    kernel::DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                ])
                .precondition("x in TDL_EntityClass")
                .obligation("complete-mapping", "every attribute is mapped")
                .specializing("DBPL_MappingDec"),
        )
        .unwrap();
        g.define_decision_class(
            DecisionClass::new("DecNormalize", DecisionDimension::Refinement)
                .from_classes(&[kernel::DBPL_REL])
                .to_classes(&[
                    kernel::NORMALIZED_DBPL_REL,
                    kernel::DBPL_SELECTOR,
                    kernel::DBPL_CONSTRUCTOR,
                ])
                .obligation("normalized", "outputs are 1NF with correct keys"),
        )
        .unwrap();
        g.register_tool(
            ToolSpec::new("TDL-DBPL-Mapper", true)
                .executes("TDL_MappingDec")
                .guarantees("complete-mapping"),
        )
        .unwrap();
        g.register_tool(ToolSpec::new("DBPLEditor", false).executes("DBPL_MappingDec"))
            .unwrap();
        g
    }

    #[test]
    fn registration_and_currency() {
        let mut g = scenario_gkbms();
        g.register_object(
            "Invitation",
            kernel::TDL_ENTITY_CLASS,
            "design.tdl#Invitation",
        )
        .unwrap();
        assert!(g.is_current("Invitation"));
        assert!(!g.is_current("Ghost"));
        assert_eq!(g.current_objects(), vec!["Invitation"]);
        // The source reference is recorded.
        let obj = g.kb().lookup("Invitation").unwrap();
        let sources = g.kb().attr_values(obj, names::SOURCE_I);
        assert_eq!(sources.len(), 1);
    }

    #[test]
    fn snapshot_surface_pins_reads() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        let watermark = g.kb().now();
        let snap_class = g.kb().lookup(kernel::TDL_ENTITY_CLASS).unwrap();
        g.begin_write();
        g.register_object("Minutes", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        let snap = g.snapshot_at(watermark);
        assert!(snap.lookup("Minutes").is_none(), "snapshot predates it");
        assert_eq!(snap.all_instances_of(snap_class).len(), 1);
        assert_eq!(g.snapshot().all_instances_of(snap_class).len(), 2);
    }

    #[test]
    fn tool_selection_most_specific_first() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        let menu = g.applicable_decisions("Invitation").unwrap();
        let names: Vec<&str> = menu.iter().map(|(c, _)| c.as_str()).collect();
        assert_eq!(names, vec!["TDL_MappingDec", "DBPL_MappingDec"]);
        // The specialized mapper serves the specific class; the editor
        // (bound to the general class) serves both.
        assert_eq!(menu[0].1, vec!["DBPLEditor", "TDL-DBPL-Mapper"]);
        assert_eq!(menu[1].1, vec!["DBPLEditor"]);
    }

    #[test]
    fn execute_documents_decision() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        let summary = g
            .execute(
                DecisionRequest::new("TDL_MappingDec", "mapInvitations", "developer")
                    .with_tool("TDL-DBPL-Mapper")
                    .input("Invitation")
                    .output("InvitationRel", kernel::DBPL_REL),
            )
            .unwrap();
        assert_eq!(summary.created, vec!["InvitationRel"]);
        assert!(g.is_current("InvitationRel"));
        assert!(g.is_effective("mapInvitations"));
        // KB documentation: from/to/by links on the decision instance.
        let d = g.kb().lookup("mapInvitations").unwrap();
        let from = g.kb().attr_values(d, names::FROM_I);
        assert_eq!(from, vec![g.kb().lookup("Invitation").unwrap()]);
        let to = g.kb().attr_values(d, names::TO_I);
        assert_eq!(to, vec![g.kb().lookup("InvitationRel").unwrap()]);
        let by = g.kb().attr_values(d, names::BY_I);
        assert_eq!(by, vec![g.kb().lookup("TDL-DBPL-Mapper").unwrap()]);
        // The output's justification points back (fig 3-3).
        let out = g.kb().lookup("InvitationRel").unwrap();
        assert_eq!(g.kb().attr_values(out, names::JUSTIFICATION_I), vec![d]);
    }

    #[test]
    fn obligations_enforced() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        // Without the mapper tool, complete-mapping is not guaranteed.
        let err = g.execute(
            DecisionRequest::new("TDL_MappingDec", "manualMap", "developer")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        );
        assert!(matches!(err, Err(GkbmsError::Obligation(_))));
        // A signature discharges it.
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "manualMap", "developer")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "complete-mapping".into(),
                    by: "developer".into(),
                }),
        )
        .unwrap();
        assert!(g.is_effective("manualMap"));
    }

    #[test]
    fn formal_discharge_requires_evaluable_truth() {
        let mut g = scenario_gkbms();
        g.define_decision_class(
            DecisionClass::new("DecFormal", DecisionDimension::Refinement)
                .from_classes(&[kernel::DBPL_REL])
                .to_classes(&[kernel::DBPL_REL])
                .obligation("self-holds", "DBPL_Rel in DesignObject"),
        )
        .unwrap();
        g.register_object("R", kernel::DBPL_REL, "src").unwrap();
        // The statement is an evaluable assertion that holds.
        g.execute(
            DecisionRequest::new("DecFormal", "d1", "dev")
                .input("R")
                .output("R2", kernel::DBPL_REL)
                .discharge(Discharge::Formal {
                    obligation: "self-holds".into(),
                }),
        )
        .unwrap();
        // A prose obligation cannot be formally discharged.
        g.define_decision_class(
            DecisionClass::new("DecProse", DecisionDimension::Refinement)
                .from_classes(&[kernel::DBPL_REL])
                .to_classes(&[kernel::DBPL_REL])
                .obligation("manual", "this is prose, not an assertion ()"),
        )
        .unwrap();
        let err = g.execute(
            DecisionRequest::new("DecProse", "d2", "dev")
                .input("R2")
                .output("R3", kernel::DBPL_REL)
                .discharge(Discharge::Formal {
                    obligation: "manual".into(),
                }),
        );
        assert!(matches!(err, Err(GkbmsError::Obligation(_))));
    }

    #[test]
    fn unknown_references_rejected() {
        let mut g = scenario_gkbms();
        assert!(matches!(
            g.register_object("X", "NoClass", "src"),
            Err(GkbmsError::Unknown(_))
        ));
        assert!(matches!(
            g.applicable_decisions("Ghost"),
            Err(GkbmsError::Unknown(_))
        ));
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        assert!(matches!(
            g.execute(DecisionRequest::new("NoSuchDec", "d", "dev").input("Invitation")),
            Err(GkbmsError::Unknown(_))
        ));
        assert!(matches!(
            g.execute(
                DecisionRequest::new("TDL_MappingDec", "d", "dev")
                    .with_tool("NoSuchTool")
                    .input("Invitation")
            ),
            Err(GkbmsError::Unknown(_))
        ));
    }

    #[test]
    fn output_class_must_match_to_declaration() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        let before = g.kb().believed_count();
        let err = g.execute(
            DecisionRequest::new("TDL_MappingDec", "badMap", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                // TDL_EntityClass is not among the TO classes:
                .output("Wrong", kernel::TDL_ENTITY_CLASS),
        );
        assert!(matches!(err, Err(GkbmsError::Precondition(_))));
        // The nested transaction rolled back: no stray beliefs.
        assert_eq!(g.kb().believed_count(), before);
        assert!(!g.is_current("Wrong"));
        assert!(g.record("badMap").is_none());
    }

    #[test]
    fn selective_backtracking_takes_only_consequences() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.register_object("Minutes", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapInvitations", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "mapMinutes", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Minutes")
                .output("MinutesRel", kernel::DBPL_REL),
        )
        .unwrap();
        // A refinement depending on InvitationRel.
        g.execute(
            DecisionRequest::new("DecNormalize", "normalizeInvitations", "dev")
                .input("InvitationRel")
                .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        )
        .unwrap();
        let affected = g.retract_decision("mapInvitations").unwrap();
        assert_eq!(affected, vec!["InvitationRel", "InvitationRel2"]);
        assert!(!g.is_current("InvitationRel"));
        assert!(!g.is_current("InvitationRel2"));
        assert!(
            g.is_current("MinutesRel"),
            "the rest of the design survives"
        );
        assert!(g.is_current("Minutes"));
        assert!(!g.is_effective("mapInvitations"));
        assert!(!g.is_effective("normalizeInvitations"), "dangling decision");
        assert!(g.is_effective("mapMinutes"));
        // History is preserved: the objects were believed at their tick.
        let t = g.record("normalizeInvitations").unwrap().tick;
        let inv2 = g.kb().props_with_label("InvitationRel2");
        assert!(inv2.is_empty(), "no longer believed");
        let rel2_ever = g.kb().believed_at(t);
        assert!(!rel2_ever.is_empty());
    }

    #[test]
    fn double_retraction_rejected() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "m", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.retract_decision("m").unwrap();
        assert!(matches!(
            g.retract_decision("m"),
            Err(GkbmsError::NotRetractable(_))
        ));
        assert!(matches!(
            g.retract_decision("ghost"),
            Err(GkbmsError::NotRetractable(_))
        ));
    }

    #[test]
    fn retracted_inputs_block_new_decisions() {
        let mut g = scenario_gkbms();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "m", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        g.retract_decision("m").unwrap();
        let err = g.execute(
            DecisionRequest::new("DecNormalize", "n", "dev")
                .input("InvitationRel")
                .output("X", kernel::NORMALIZED_DBPL_REL)
                .discharge(Discharge::Signature {
                    obligation: "normalized".into(),
                    by: "dev".into(),
                }),
        );
        assert!(matches!(err, Err(GkbmsError::Precondition(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = scenario_gkbms();
        assert!(matches!(
            g.define_decision_class(DecisionClass::new(
                "DecNormalize",
                DecisionDimension::Refinement
            )),
            Err(GkbmsError::Duplicate(_))
        ));
        assert!(matches!(
            g.register_tool(ToolSpec::new("DBPLEditor", false)),
            Err(GkbmsError::Duplicate(_))
        ));
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("TDL_MappingDec", "m", "dev")
                .with_tool("TDL-DBPL-Mapper")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        assert!(matches!(
            g.execute(
                DecisionRequest::new("TDL_MappingDec", "m", "dev")
                    .with_tool("TDL-DBPL-Mapper")
                    .input("Invitation")
                    .output("Other", kernel::DBPL_REL),
            ),
            Err(GkbmsError::Duplicate(_))
        ));
    }
}
