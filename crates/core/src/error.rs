//! Error type of the GKBMS.

use std::fmt;

/// Errors raised by the GKBMS.
#[derive(Debug)]
pub enum GkbmsError {
    /// A named object / class / tool / decision does not exist.
    Unknown(String),
    /// A name is already taken.
    Duplicate(String),
    /// A decision's precondition failed.
    Precondition(String),
    /// A verification obligation was neither guaranteed by the tool
    /// nor discharged.
    Obligation(String),
    /// The decision was executed but left the KB inconsistent; it was
    /// rolled back (nested-transaction abort).
    Aborted {
        /// The violations that caused the abort.
        violations: Vec<String>,
    },
    /// The underlying proposition processor failed.
    Telos(telos::TelosError),
    /// The object processor failed.
    Object(objectbase::ObError),
    /// A decision cannot be retracted (unknown or already retracted).
    NotRetractable(String),
    /// The static analyzer rejected the batch at admission time.
    Lint(Vec<analysis::Diagnostic>),
    /// A proposition index no longer fits the 32-bit id space of
    /// `telos::PropId` — the history has outgrown what the proposition
    /// processor can address, and continuing would wrap ids silently.
    IdOverflow {
        /// The out-of-range index.
        index: usize,
    },
}

/// Convenient alias used throughout the crate.
pub type GkbmsResult<T> = Result<T, GkbmsError>;

/// Checked conversion from a KB index to a [`telos::PropId`]. At
/// million-op histories the old `i as u32` pattern would wrap and
/// silently corrupt replay; this surfaces the condition as a typed
/// error instead.
pub(crate) fn checked_prop_id(index: usize) -> GkbmsResult<telos::PropId> {
    u32::try_from(index)
        .map(telos::PropId)
        .map_err(|_| GkbmsError::IdOverflow { index })
}

impl fmt::Display for GkbmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GkbmsError::Unknown(m) => write!(f, "unknown: {m}"),
            GkbmsError::Duplicate(m) => write!(f, "duplicate: {m}"),
            GkbmsError::Precondition(m) => write!(f, "precondition failed: {m}"),
            GkbmsError::Obligation(m) => write!(f, "undischarged obligation: {m}"),
            GkbmsError::Aborted { violations } => write!(
                f,
                "decision aborted, {} violation(s): {}",
                violations.len(),
                violations.join("; ")
            ),
            GkbmsError::Telos(e) => write!(f, "proposition processor: {e}"),
            GkbmsError::Object(e) => write!(f, "object processor: {e}"),
            GkbmsError::NotRetractable(m) => write!(f, "not retractable: {m}"),
            GkbmsError::Lint(diags) => {
                let lines: Vec<String> = diags.iter().map(|d| d.one_line()).collect();
                write!(f, "rejected by lint: {}", lines.join("; "))
            }
            GkbmsError::IdOverflow { index } => {
                write!(f, "proposition index {index} exceeds the 32-bit id space")
            }
        }
    }
}

impl std::error::Error for GkbmsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GkbmsError::Telos(e) => Some(e),
            GkbmsError::Object(e) => Some(e),
            _ => None,
        }
    }
}

impl From<telos::TelosError> for GkbmsError {
    fn from(e: telos::TelosError) -> Self {
        GkbmsError::Telos(e)
    }
}

impl From<objectbase::ObError> for GkbmsError {
    fn from(e: objectbase::ObError) -> Self {
        GkbmsError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = GkbmsError::Aborted {
            violations: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("2 violation"));
        assert!(GkbmsError::Obligation("key-unique".into())
            .to_string()
            .contains("key-unique"));
    }
}
