//! The key-substitution decision and its conflict check (figs 2-3, 2-4).
//!
//! "Observing that the system contains only invitations and no other
//! subclasses of papers, the developer decides to 'make the system
//! more user-friendly', by replacing the artificial paperkey attribute
//! … with date, author. This change also implies adaption of the
//! corresponding constructor, selector, and possibly transaction
//! definitions."
//!
//! "Unfortunately, the assumption that Invitations are the only kind
//! of Papers leads to an inconsistency as soon as the mapping of
//! Minutes … is considered" — surrogate keys are globally unique
//! across a hierarchy, but an associative key chosen for one subclass
//! does not identify papers across *all* subclasses; any constructor
//! unioning several relations then has no candidate key.
//! [`check_union_key_conflicts`] detects exactly this.

use crate::dbpl::{DbplModule, DbplType, Decl};
use crate::error::{LangError, LangResult};

/// What a key substitution changed, for GKBMS documentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyChange {
    /// The relation whose key was replaced.
    pub relation: String,
    /// The removed surrogate column name.
    pub removed_surrogate: String,
    /// The new key column names.
    pub new_key: Vec<String>,
    /// Other declarations adapted (foreign-key relations, selectors,
    /// constructors whose text mentioned the surrogate).
    pub adapted: Vec<String>,
}

/// Replaces the surrogate key of `relation` by the associative key
/// `new_key` (existing columns). Foreign-key occurrences of the
/// surrogate column in other relations are replaced by the new key
/// columns, and selector/constructor texts mentioning the surrogate
/// are rewritten.
pub fn substitute_key(
    module: &mut DbplModule,
    relation: &str,
    new_key: &[&str],
) -> LangResult<KeyChange> {
    let rel = module.expect_relation(relation)?.clone();
    if !rel.has_surrogate_key() {
        return Err(LangError::Precondition(format!(
            "`{relation}` does not have a surrogate key"
        )));
    }
    if new_key.is_empty() {
        return Err(LangError::Precondition("empty associative key".into()));
    }
    let surrogate = rel.key[0].clone();
    for k in new_key {
        let col = rel
            .column(k)
            .ok_or_else(|| LangError::Unknown(format!("column `{k}` of `{relation}`")))?;
        if matches!(col.ty, DbplType::SetOf(_)) {
            return Err(LangError::Precondition(format!(
                "set-valued column `{k}` cannot be part of a key"
            )));
        }
    }
    // Types of the new key columns, for foreign-key replacement.
    let key_cols: Vec<(String, DbplType)> = new_key
        .iter()
        .map(|k| {
            let c = rel.column(k).expect("checked above");
            (c.name.clone(), c.ty.clone())
        })
        .collect();

    let mut adapted = Vec::new();
    let decls: Vec<Decl> = module.decls.clone();
    for d in decls {
        match d {
            Decl::Relation(mut r) if r.name == relation => {
                r.key = new_key.iter().map(|s| s.to_string()).collect();
                r.columns.retain(|c| c.name != surrogate);
                module.replace(Decl::Relation(r))?;
            }
            Decl::Relation(mut r) => {
                // Foreign-key occurrence of the surrogate column.
                if let Some(at) = r.columns.iter().position(|c| c.name == surrogate) {
                    r.columns.splice(
                        at..=at,
                        key_cols.iter().map(|(n, t)| crate::dbpl::Column {
                            name: n.clone(),
                            ty: t.clone(),
                        }),
                    );
                    if let Some(kat) = r.key.iter().position(|k| *k == surrogate) {
                        r.key
                            .splice(kat..=kat, new_key.iter().map(|s| s.to_string()));
                    }
                    adapted.push(r.name.clone());
                    module.replace(Decl::Relation(r))?;
                }
            }
            Decl::Selector(mut s) => {
                if s.predicate.contains(&surrogate) {
                    s.predicate = s.predicate.replace(&surrogate, &new_key.join(", "));
                    adapted.push(s.name.clone());
                    module.replace(Decl::Selector(s))?;
                }
            }
            Decl::Constructor(mut c) => {
                if c.query.contains(&surrogate) {
                    c.query = c.query.replace(&surrogate, &new_key.join(", "));
                    adapted.push(c.name.clone());
                    module.replace(Decl::Constructor(c))?;
                }
            }
            Decl::Transaction(mut t) => {
                let mut touched = false;
                for stmt in &mut t.body {
                    if stmt.contains(&surrogate) {
                        *stmt = stmt.replace(&surrogate, &new_key.join(", "));
                        touched = true;
                    }
                }
                if touched {
                    adapted.push(t.name.clone());
                    module.replace(Decl::Transaction(t))?;
                }
            }
        }
    }
    Ok(KeyChange {
        relation: relation.to_string(),
        removed_surrogate: surrogate,
        new_key: new_key.iter().map(|s| s.to_string()).collect(),
        adapted,
    })
}

/// A candidate-key conflict at a union constructor (fig 2-4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyConflict {
    /// The constructor without a candidate key.
    pub constructor: String,
    /// Its member relations.
    pub relations: Vec<String>,
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for KeyConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "constructor `{}` over {:?}: {}",
            self.constructor, self.relations, self.reason
        )
    }
}

/// Checks every constructor unioning two or more relations: the union
/// has a candidate key only if all member relations share the same
/// single surrogate key (surrogates are unique across the hierarchy).
/// Associative keys are unique only *within* their relation, so a
/// union over relations where any member's key is associative — or
/// where key names differ — has no candidate key.
pub fn check_union_key_conflicts(module: &DbplModule) -> Vec<KeyConflict> {
    let mut out = Vec::new();
    for d in &module.decls {
        let Decl::Constructor(c) = d else { continue };
        if c.kind != crate::dbpl::ConsKind::Union {
            continue; // joins carry their key obligations in selectors
        }
        let members: Vec<_> = c
            .over
            .iter()
            .filter_map(|name| module.relation(name))
            .collect();
        if members.len() < 2 {
            continue;
        }
        let all_surrogate_same = members.iter().all(|r| r.has_surrogate_key())
            && members.windows(2).all(|w| w[0].key == w[1].key);
        if !all_surrogate_same {
            let culprit = members
                .iter()
                .find(|r| !r.has_surrogate_key())
                .map(|r| {
                    format!(
                        "`{}` is keyed by ({}), unique only within `{}` — the union has no candidate key",
                        r.name,
                        r.key.join(", "),
                        r.name
                    )
                })
                .unwrap_or_else(|| "member relations disagree on the key".to_string());
            out.push(KeyConflict {
                constructor: c.name.clone(),
                relations: c.over.clone(),
                reason: culprit,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbpl::DbplModule;
    use crate::mapping::{MappingStrategy, MoveDown};
    use crate::normalize::{normalize, NormalizeNames};
    use crate::taxisdl::{document_model, TdlModel};

    fn invitations_only_module() -> DbplModule {
        // The state of fig 2-3: only Invitation mapped (the developer
        // has not yet considered Minutes), then normalized.
        let m = TdlModel::parse(
            "EntityClass Person with end\n\
             EntityClass Date with end\n\
             EntityClass Paper with\n\
               author : Person;\n\
               date : Date\n\
             end\n\
             EntityClass Invitation isA Paper with\n\
               sender : Person;\n\
               receivers : setof Person\n\
             end",
        )
        .unwrap();
        let out = MoveDown.map_hierarchy(&m, "Paper").unwrap();
        let mut module = DbplModule::new("DocumentDB");
        for d in out.decls {
            module.add(d).unwrap();
        }
        let names = NormalizeNames {
            base: "InvitationRel2".into(),
            member: "InvReceivRel".into(),
            member_column: "receiver".into(),
            selector: "InvitationsPaperIC".into(),
            constructor: "ConsInvitation".into(),
        };
        normalize(&mut module, "InvitationRel", "receivers", names).unwrap();
        module
    }

    #[test]
    fn key_substitution_reproduces_fig_2_3() {
        let mut module = invitations_only_module();
        let change = substitute_key(&mut module, "InvitationRel2", &["date", "author"]).unwrap();
        assert_eq!(change.removed_surrogate, "paperkey");
        assert_eq!(change.new_key, vec!["date", "author"]);
        // The base relation lost the surrogate.
        let base = module.relation("InvitationRel2").unwrap();
        assert!(base.column("paperkey").is_none());
        assert_eq!(base.key, vec!["date", "author"]);
        // The member relation's foreign key was expanded.
        let member = module.relation("InvReceivRel").unwrap();
        let cols: Vec<&str> = member.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(cols, vec!["date", "author", "receiver"]);
        assert_eq!(member.key, vec!["date", "author", "receiver"]);
        // Selector and constructor were adapted, as the paper says.
        assert!(change.adapted.contains(&"InvReceivRel".to_string()));
        assert!(change.adapted.contains(&"InvitationsPaperIC".to_string()));
        assert!(change.adapted.contains(&"ConsInvitation".to_string()));
        let sel = module.code_frame("InvitationsPaperIC").unwrap();
        assert!(sel.contains("date, author"));
        assert!(!sel.contains("paperkey"));
    }

    #[test]
    fn no_conflict_while_invitations_are_the_only_papers() {
        let mut module = invitations_only_module();
        substitute_key(&mut module, "InvitationRel2", &["date", "author"]).unwrap();
        assert!(check_union_key_conflicts(&module).is_empty());
    }

    #[test]
    fn mapping_minutes_exposes_the_conflict() {
        // Fig 2-4: after the key substitution, map Minutes into the
        // full document model — ConsPapers now unions an
        // associatively-keyed relation with a surrogate-keyed one.
        let mut module = invitations_only_module();
        substitute_key(&mut module, "InvitationRel2", &["date", "author"]).unwrap();
        let full = document_model();
        let out = MoveDown.map_hierarchy(&full, "Paper").unwrap();
        // Bring in MinutesRel and the two-member ConsPapers view.
        for d in out.decls {
            match d.name() {
                "MinutesRel" => module.add(d).unwrap(),
                "ConsPapers" => {
                    let mut c = match d {
                        Decl::Constructor(c) => c,
                        other => panic!("unexpected {other:?}"),
                    };
                    c.over = vec!["InvitationRel2".into(), "MinutesRel".into()];
                    module.replace(Decl::Constructor(c)).unwrap();
                }
                _ => {}
            }
        }
        let conflicts = check_union_key_conflicts(&module);
        assert_eq!(conflicts.len(), 1);
        let c = &conflicts[0];
        assert_eq!(c.constructor, "ConsPapers");
        assert!(c.reason.contains("InvitationRel2"));
        assert!(c.to_string().contains("ConsPapers"));
    }

    #[test]
    fn surrogate_union_has_no_conflict() {
        let full = document_model();
        let out = MoveDown.map_hierarchy(&full, "Paper").unwrap();
        let mut module = DbplModule::new("DocumentDB");
        for d in out.decls {
            module.add(d).unwrap();
        }
        assert!(check_union_key_conflicts(&module).is_empty());
    }

    #[test]
    fn preconditions() {
        let mut module = invitations_only_module();
        assert!(substitute_key(&mut module, "Ghost", &["date"]).is_err());
        assert!(substitute_key(&mut module, "InvitationRel2", &[]).is_err());
        assert!(substitute_key(&mut module, "InvitationRel2", &["ghost"]).is_err());
        // After substitution the key is no longer surrogate: second
        // substitution is a precondition failure.
        substitute_key(&mut module, "InvitationRel2", &["date", "author"]).unwrap();
        assert!(matches!(
            substitute_key(&mut module, "InvitationRel2", &["date"]),
            Err(LangError::Precondition(_))
        ));
    }

    #[test]
    fn set_valued_key_rejected() {
        let m = document_model();
        let out = MoveDown.map_hierarchy(&m, "Paper").unwrap();
        let mut module = DbplModule::new("M");
        for d in out.decls {
            module.add(d).unwrap();
        }
        assert!(matches!(
            substitute_key(&mut module, "InvitationRel", &["receivers"]),
            Err(LangError::Precondition(_))
        ));
    }
}
