//! Error type of the language stack.

use std::fmt;

/// Errors raised by parsers and transformation assistants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Syntax error in TaxisDL or DBPL source.
    Parse(String),
    /// A referenced class / relation / attribute does not exist.
    Unknown(String),
    /// A transformation precondition failed.
    Precondition(String),
    /// The decision would produce an inconsistent module (e.g. the
    /// candidate-key conflict of fig 2-4).
    Conflict(String),
}

/// Convenient alias used throughout the crate.
pub type LangResult<T> = Result<T, LangError>;

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(m) => write!(f, "parse error: {m}"),
            LangError::Unknown(m) => write!(f, "unknown object: {m}"),
            LangError::Precondition(m) => write!(f, "precondition failed: {m}"),
            LangError::Conflict(m) => write!(f, "conflict: {m}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(LangError::Conflict("key".into())
            .to_string()
            .contains("key"));
        assert!(LangError::Unknown("X".into()).to_string().contains('X'));
    }
}
