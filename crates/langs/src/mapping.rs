//! Mapping assistants: TaxisDL generalization hierarchies → DBPL
//! relations, views and constraints (§2.1).
//!
//! "There are several possible mapping strategies \[BGM85, WEDD87\]:
//! *distribute* would generate one relation per TaxisDL entity class,
//! whereas *move-down* only generates relations for leaves of the
//! hierarchy and represents the other ones by views (called
//! constructors in DBPL)."
//!
//! Both strategies introduce an artificial surrogate key ("initially
//! required to map the object-oriented TaxisDL model which does not
//! have keys") and return a [`MappingOutcome`]: the generated
//! declarations plus the dependency trace the GKBMS records as FROM/TO
//! links of the mapping decision.

use crate::dbpl::{
    Column, ConsKind, Constructor, DbplTransaction, DbplType, Decl, Relation, Selector,
};
use crate::error::LangResult;
use crate::taxisdl::{TdlAttribute, TdlModel, TransactionClass};

/// One dependency edge recorded by a mapping: TaxisDL object →
/// generated DBPL object, with the applied rule's name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEdge {
    /// Source (TaxisDL) object name.
    pub from: String,
    /// Generated (DBPL) object name.
    pub to: String,
    /// Name of the mapping rule that created the edge.
    pub rule: String,
}

/// The result of a mapping decision.
#[derive(Debug, Clone, Default)]
pub struct MappingOutcome {
    /// Generated declarations, in creation order.
    pub decls: Vec<Decl>,
    /// Dependency trace.
    pub trace: Vec<MapEdge>,
}

impl MappingOutcome {
    fn emit(&mut self, from: &str, decl: Decl, rule: &str) {
        self.trace.push(MapEdge {
            from: from.to_string(),
            to: decl.name().to_string(),
            rule: rule.to_string(),
        });
        self.decls.push(decl);
    }
}

/// A mapping strategy from a TaxisDL hierarchy to DBPL declarations.
pub trait MappingStrategy {
    /// Strategy name (the decision-class label shown in fig 2-1's menu).
    fn name(&self) -> &'static str;

    /// Maps the hierarchy rooted at `root`.
    fn map_hierarchy(&self, model: &TdlModel, root: &str) -> LangResult<MappingOutcome>;
}

/// The surrogate key column name for a hierarchy root: `paperkey` for
/// `Paper`.
pub fn surrogate_key_name(root: &str) -> String {
    format!("{}key", root.to_lowercase())
}

/// Conventional relation name for an entity class: `InvitationRel`.
pub fn relation_name(class: &str) -> String {
    format!("{class}Rel")
}

/// Conventional constructor name: `ConsPapers` for `Paper` (the paper
/// pluralizes; we follow it by appending `s`).
pub fn constructor_name(class: &str) -> String {
    format!("Cons{class}s")
}

fn column_of(attr: &TdlAttribute) -> Column {
    let base = DbplType::Named(attr.target.clone());
    Column {
        name: attr.label.clone(),
        ty: if attr.set_valued {
            DbplType::SetOf(Box::new(base))
        } else {
            base
        },
    }
}

/// **move-down**: relations only for leaf classes (carrying all
/// inherited attributes); inner classes become constructors (views)
/// over the leaf relations of their subtree.
#[derive(Debug, Clone, Copy, Default)]
pub struct MoveDown;

impl MappingStrategy for MoveDown {
    fn name(&self) -> &'static str {
        "move-down"
    }

    fn map_hierarchy(&self, model: &TdlModel, root: &str) -> LangResult<MappingOutcome> {
        model.validate()?;
        let key = surrogate_key_name(root);
        let mut out = MappingOutcome::default();
        for class in model.subtree(root)? {
            let is_leaf = model.children(&class.name).is_empty();
            if is_leaf {
                let mut columns = vec![Column {
                    name: key.clone(),
                    ty: DbplType::Surrogate,
                }];
                columns.extend(model.all_attributes(&class.name)?.iter().map(column_of));
                out.emit(
                    &class.name,
                    Decl::Relation(Relation {
                        name: relation_name(&class.name),
                        key: vec![key.clone()],
                        columns,
                    }),
                    "move-down/leaf-relation",
                );
            } else {
                let leaf_rels: Vec<String> = model
                    .leaves(&class.name)?
                    .iter()
                    .map(|l| relation_name(&l.name))
                    .collect();
                let attrs: Vec<String> = std::iter::once(key.clone())
                    .chain(
                        model
                            .all_attributes(&class.name)?
                            .iter()
                            .map(|a| a.label.clone()),
                    )
                    .collect();
                out.emit(
                    &class.name,
                    Decl::Constructor(Constructor {
                        name: constructor_name(&class.name),
                        kind: ConsKind::Union,
                        over: leaf_rels,
                        query: format!("union projected on ({})", attrs.join(", ")),
                    }),
                    "move-down/inner-constructor",
                );
            }
        }
        Ok(out)
    }
}

/// **distribute**: one relation per entity class with its *direct*
/// attributes; isa links become key-inclusion selectors, and each
/// class with ancestors gets a join constructor reassembling its full
/// attribute set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Distribute;

impl MappingStrategy for Distribute {
    fn name(&self) -> &'static str {
        "distribute"
    }

    fn map_hierarchy(&self, model: &TdlModel, root: &str) -> LangResult<MappingOutcome> {
        model.validate()?;
        let key = surrogate_key_name(root);
        let mut out = MappingOutcome::default();
        for class in model.subtree(root)? {
            let mut columns = vec![Column {
                name: key.clone(),
                ty: DbplType::Surrogate,
            }];
            columns.extend(class.attributes.iter().map(column_of));
            out.emit(
                &class.name,
                Decl::Relation(Relation {
                    name: relation_name(&class.name),
                    key: vec![key.clone()],
                    columns,
                }),
                "distribute/class-relation",
            );
            for parent in &class.isa {
                out.emit(
                    &class.name,
                    Decl::Selector(Selector {
                        name: format!("Inc_{}_{}", class.name, parent),
                        over: vec![relation_name(&class.name), relation_name(parent)],
                        predicate: format!(
                            "every {}.{key} appears in {}",
                            relation_name(&class.name),
                            relation_name(parent)
                        ),
                    }),
                    "distribute/isa-inclusion",
                );
            }
            let ancestors = model.ancestors(&class.name)?;
            if !ancestors.is_empty() {
                let mut over = vec![relation_name(&class.name)];
                over.extend(ancestors.iter().map(|a| relation_name(&a.name)));
                out.emit(
                    &class.name,
                    Decl::Constructor(Constructor {
                        name: format!("Full{}", class.name),
                        kind: ConsKind::Join,
                        over,
                        query: format!("join on {key}"),
                    }),
                    "distribute/full-view",
                );
            }
        }
        Ok(out)
    }
}

/// Maps a TaxisDL transaction class to a DBPL transaction touching the
/// relations its parameters map to.
pub fn map_transaction(tx: &TransactionClass, model: &TdlModel, root: &str) -> LangResult<Decl> {
    for (_, class) in &tx.params {
        model.expect_entity(class)?;
    }
    let _ = model.expect_entity(root)?;
    let body: Vec<String> = tx
        .steps
        .iter()
        .map(|s| s.to_string())
        .chain(
            tx.params
                .iter()
                .map(|(n, c)| format!("access {} for {}", relation_name(c), n)),
        )
        .collect();
    Ok(Decl::Transaction(DbplTransaction {
        name: format!("Tx{}", tx.name),
        params: tx.params.clone(),
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbpl::DbplModule;
    use crate::taxisdl::document_model;

    #[test]
    fn move_down_generates_leaf_relations_and_inner_views() {
        let m = document_model();
        let out = MoveDown.map_hierarchy(&m, "Paper").unwrap();
        let names: Vec<&str> = out.decls.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["ConsPapers", "InvitationRel", "MinutesRel"]);
        // Leaf relations carry inherited attributes.
        let inv = match &out.decls[1] {
            Decl::Relation(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        let cols: Vec<&str> = inv.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            cols,
            vec!["paperkey", "author", "date", "sender", "receivers"]
        );
        assert!(inv.has_surrogate_key());
        // The inner class view unions the leaves.
        match &out.decls[0] {
            Decl::Constructor(c) => {
                assert_eq!(c.over, vec!["InvitationRel", "MinutesRel"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn move_down_trace_links_tdl_to_dbpl() {
        let m = document_model();
        let out = MoveDown.map_hierarchy(&m, "Paper").unwrap();
        assert!(out.trace.contains(&MapEdge {
            from: "Invitation".into(),
            to: "InvitationRel".into(),
            rule: "move-down/leaf-relation".into(),
        }));
        assert!(out.trace.contains(&MapEdge {
            from: "Paper".into(),
            to: "ConsPapers".into(),
            rule: "move-down/inner-constructor".into(),
        }));
    }

    #[test]
    fn move_down_on_leaf_only_hierarchy() {
        let m = document_model();
        let out = MoveDown.map_hierarchy(&m, "Person").unwrap();
        assert_eq!(out.decls.len(), 1);
        assert!(matches!(out.decls[0], Decl::Relation(_)));
    }

    #[test]
    fn distribute_generates_one_relation_per_class() {
        let m = document_model();
        let out = Distribute.map_hierarchy(&m, "Paper").unwrap();
        let rels: Vec<&str> = out
            .decls
            .iter()
            .filter(|d| matches!(d, Decl::Relation(_)))
            .map(|d| d.name())
            .collect();
        assert_eq!(rels, vec!["PaperRel", "InvitationRel", "MinutesRel"]);
        // Subclass relations have only direct attributes + key.
        let inv = out
            .decls
            .iter()
            .find_map(|d| match d {
                Decl::Relation(r) if r.name == "InvitationRel" => Some(r),
                _ => None,
            })
            .unwrap();
        let cols: Vec<&str> = inv.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(cols, vec!["paperkey", "sender", "receivers"]);
        // Inclusion selectors for isa links.
        assert!(out.decls.iter().any(|d| d.name() == "Inc_Invitation_Paper"));
        // Full views for classes with ancestors.
        assert!(out.decls.iter().any(|d| d.name() == "FullInvitation"));
    }

    #[test]
    fn outcomes_assemble_into_a_module() {
        let m = document_model();
        let out = MoveDown.map_hierarchy(&m, "Paper").unwrap();
        let mut module = DbplModule::new("DocumentDB");
        for d in out.decls {
            module.add(d).unwrap();
        }
        assert!(module.relation("InvitationRel").is_some());
        assert!(module.code_frame("ConsPapers").unwrap().contains("union"));
    }

    #[test]
    fn unknown_root_rejected() {
        let m = document_model();
        assert!(MoveDown.map_hierarchy(&m, "Ghost").is_err());
        assert!(Distribute.map_hierarchy(&m, "Ghost").is_err());
    }

    #[test]
    fn transaction_mapping() {
        let m = document_model();
        let tx = &m.transactions[0];
        let decl = map_transaction(tx, &m, "Paper").unwrap();
        assert_eq!(decl.name(), "TxSendInvitation");
        match decl {
            Decl::Transaction(t) => {
                assert!(t.body.iter().any(|s| s.contains("InvitationRel")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strategy_names_for_menus() {
        assert_eq!(MoveDown.name(), "move-down");
        assert_eq!(Distribute.name(), "distribute");
    }
}
