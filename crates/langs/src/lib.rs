#![warn(missing_docs)]

//! The DAIDA language stack and its transformation assistants (§1, §2.1).
//!
//! DAIDA describes an information system in three layers: a CML
//! world/system model, a **TaxisDL** conceptual design (entity-class
//! generalization hierarchies and transactions, purely declarative, no
//! keys), and **DBPL** database programs (relations, selectors = named
//! integrity constraints, constructors = views, transactions). This
//! crate provides faithful subsets of the two lower languages and the
//! transformation assistants exercised by the paper's support scenario:
//!
//! * [`taxisdl`] — entity/transaction classes, IsA hierarchies,
//!   set-valued attributes; parser and printer;
//! * [`dbpl`] — relations with keys, selectors, constructors,
//!   transactions; parser and printer producing the "code frames" of
//!   figs 2-2 … 2-4;
//! * [`mapping`] — the *distribute* and *move-down* mapping strategies
//!   \[BGM85, WEDD87\] from TaxisDL hierarchies to DBPL modules, with a
//!   dependency trace;
//! * [`normalize`] — the normalization decision for set-valued
//!   attributes (fig 2-3);
//! * [`keys`] — the key-substitution decision and the candidate-key
//!   conflict check that forces its retraction (figs 2-3, 2-4);
//! * [`world`] — the CML → TaxisDL mapping assistant: derives entity
//!   classes from a Telos system model (fig 1-1).

pub mod dbpl;
pub mod error;
pub mod keys;
pub mod mapping;
pub mod normalize;
pub mod runtime;
pub mod taxisdl;
pub mod world;

pub use error::{LangError, LangResult};
