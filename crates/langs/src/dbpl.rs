//! A DBPL subset \[ECKH85, SCHM77\]: modules of relations (with keys),
//! selectors (named integrity constraints), constructors (views, "the
//! reconstruction of the initial, unnormalized invitation relation"),
//! and database transactions.
//!
//! The pretty printer produces the "code frames" shown in figs 2-2 …
//! 2-4; the parser accepts the same syntax:
//!
//! ```text
//! MODULE DocumentDB;
//! RELATION InvitationRel
//!   KEY paperkey
//!   ATTR paperkey : SURROGATE;
//!   ATTR sender : Person
//! END;
//! SELECTOR InvitationsPaperIC ON InvReceivRel, InvitationRel2
//!   WHERE "referential integrity on paperkey"
//! END;
//! CONSTRUCTOR ConsInvitation ON InvitationRel2, InvReceivRel
//!   AS "join and nest receivers"
//! END;
//! TRANSACTION InsertInvitation(i : Invitation)
//!   DO insert; check
//! END;
//! ```

use crate::error::{LangError, LangResult};
use std::fmt;

/// A DBPL column type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbplType {
    /// A named domain (mapped entity class).
    Named(String),
    /// A system-generated surrogate (the artificial `paperkey`).
    Surrogate,
    /// A set-valued column — non-first-normal-form, to be normalized.
    SetOf(Box<DbplType>),
}

impl fmt::Display for DbplType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbplType::Named(n) => write!(f, "{n}"),
            DbplType::Surrogate => write!(f, "SURROGATE"),
            DbplType::SetOf(inner) => write!(f, "SETOF {inner}"),
        }
    }
}

/// A relation column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DbplType,
}

/// A relation with a designated key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// Names of the key columns.
    pub key: Vec<String>,
    /// All columns.
    pub columns: Vec<Column>,
}

impl Relation {
    /// The column named `name`.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// True if the key consists of a single surrogate column.
    pub fn has_surrogate_key(&self) -> bool {
        self.key.len() == 1
            && self
                .column(&self.key[0])
                .is_some_and(|c| c.ty == DbplType::Surrogate)
    }

    /// Set-valued columns (normalization candidates).
    pub fn set_valued_columns(&self) -> Vec<&Column> {
        self.columns
            .iter()
            .filter(|c| matches!(c.ty, DbplType::SetOf(_)))
            .collect()
    }
}

/// A selector: a named integrity constraint over relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// Selector name.
    pub name: String,
    /// Relations it ranges over.
    pub over: Vec<String>,
    /// Constraint description (predicate text).
    pub predicate: String,
}

/// How a constructor combines its member relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsKind {
    /// A join of the member relations (e.g. reassembling a normalized
    /// relation).
    #[default]
    Join,
    /// A union of the member relations (e.g. an inner hierarchy class
    /// over its leaf relations) — the case with key obligations.
    Union,
}

/// A constructor: a view over relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constructor {
    /// Constructor name.
    pub name: String,
    /// How members are combined.
    pub kind: ConsKind,
    /// Relations it is built from.
    pub over: Vec<String>,
    /// View definition (query text).
    pub query: String,
}

/// A database transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbplTransaction {
    /// Transaction name.
    pub name: String,
    /// Parameters: `(name, class)` pairs.
    pub params: Vec<(String, String)>,
    /// Statement names.
    pub body: Vec<String>,
}

/// One top-level declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// A relation.
    Relation(Relation),
    /// A selector.
    Selector(Selector),
    /// A constructor.
    Constructor(Constructor),
    /// A transaction.
    Transaction(DbplTransaction),
}

impl Decl {
    /// The declaration's name.
    pub fn name(&self) -> &str {
        match self {
            Decl::Relation(r) => &r.name,
            Decl::Selector(s) => &s.name,
            Decl::Constructor(c) => &c.name,
            Decl::Transaction(t) => &t.name,
        }
    }

    /// Names of relations this declaration references.
    pub fn references(&self) -> Vec<&str> {
        match self {
            Decl::Relation(_) | Decl::Transaction(_) => Vec::new(),
            Decl::Selector(s) => s.over.iter().map(|s| s.as_str()).collect(),
            Decl::Constructor(c) => c.over.iter().map(|s| s.as_str()).collect(),
        }
    }

    /// Kind name for display and decision matching.
    pub fn kind(&self) -> &'static str {
        match self {
            Decl::Relation(_) => "RELATION",
            Decl::Selector(_) => "SELECTOR",
            Decl::Constructor(_) => "CONSTRUCTOR",
            Decl::Transaction(_) => "TRANSACTION",
        }
    }
}

/// A DBPL module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbplModule {
    /// Module name.
    pub name: String,
    /// Declarations in order.
    pub decls: Vec<Decl>,
}

impl DbplModule {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> Self {
        DbplModule {
            name: name.into(),
            decls: Vec::new(),
        }
    }

    /// Parses a module.
    pub fn parse(src: &str) -> LangResult<DbplModule> {
        parse_module(src)
    }

    /// Finds a declaration by name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name() == name)
    }

    /// Finds a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.decls.iter().find_map(|d| match d {
            Decl::Relation(r) if r.name == name => Some(r),
            _ => None,
        })
    }

    /// Like [`DbplModule::relation`] but an error if absent.
    pub fn expect_relation(&self, name: &str) -> LangResult<&Relation> {
        self.relation(name)
            .ok_or_else(|| LangError::Unknown(format!("relation `{name}`")))
    }

    /// Adds a declaration; errors on a duplicate name.
    pub fn add(&mut self, decl: Decl) -> LangResult<()> {
        if self.decl(decl.name()).is_some() {
            return Err(LangError::Precondition(format!(
                "duplicate declaration `{}`",
                decl.name()
            )));
        }
        self.decls.push(decl);
        Ok(())
    }

    /// Replaces the declaration with the same name; errors if absent.
    pub fn replace(&mut self, decl: Decl) -> LangResult<Decl> {
        let at = self
            .decls
            .iter()
            .position(|d| d.name() == decl.name())
            .ok_or_else(|| LangError::Unknown(format!("declaration `{}`", decl.name())))?;
        Ok(std::mem::replace(&mut self.decls[at], decl))
    }

    /// Removes a declaration by name; errors if absent.
    pub fn remove(&mut self, name: &str) -> LangResult<Decl> {
        let at = self
            .decls
            .iter()
            .position(|d| d.name() == name)
            .ok_or_else(|| LangError::Unknown(format!("declaration `{name}`")))?;
        Ok(self.decls.remove(at))
    }

    /// Declarations referencing relation `name`.
    pub fn referencing(&self, name: &str) -> Vec<&Decl> {
        self.decls
            .iter()
            .filter(|d| d.references().contains(&name))
            .collect()
    }

    /// The code frame (pretty-printed text) of one declaration — what
    /// the editor windows in figs 2-2 … 2-4 display.
    pub fn code_frame(&self, name: &str) -> LangResult<String> {
        let d = self
            .decl(name)
            .ok_or_else(|| LangError::Unknown(format!("declaration `{name}`")))?;
        Ok(print_decl(d))
    }
}

fn print_decl(d: &Decl) -> String {
    match d {
        Decl::Relation(r) => {
            let mut s = format!("RELATION {}\n  KEY {}\n", r.name, r.key.join(", "));
            for (i, c) in r.columns.iter().enumerate() {
                let sep = if i + 1 < r.columns.len() { ";" } else { "" };
                s.push_str(&format!("  ATTR {} : {}{sep}\n", c.name, c.ty));
            }
            s.push_str("END;");
            s
        }
        Decl::Selector(sel) => format!(
            "SELECTOR {} ON {}\n  WHERE \"{}\"\nEND;",
            sel.name,
            sel.over.join(", "),
            sel.predicate
        ),
        Decl::Constructor(c) => format!(
            "CONSTRUCTOR {} {} {}\n  AS \"{}\"\nEND;",
            c.name,
            match c.kind {
                ConsKind::Join => "JOIN",
                ConsKind::Union => "UNION",
            },
            c.over.join(", "),
            c.query
        ),
        Decl::Transaction(t) => {
            let params: Vec<String> = t.params.iter().map(|(n, c)| format!("{n} : {c}")).collect();
            format!(
                "TRANSACTION {}({})\n  DO {}\nEND;",
                t.name,
                params.join("; "),
                t.body.join("; ")
            )
        }
    }
}

impl fmt::Display for DbplModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MODULE {};", self.name)?;
        for d in &self.decls {
            writeln!(f, "{}", print_decl(d))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Toks {
    words: Vec<String>,
    pos: usize,
}

fn tokenize(src: &str) -> LangResult<Vec<String>> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                let mut s = String::from("\"");
                let mut closed = false;
                for c2 in chars.by_ref() {
                    if c2 == '"' {
                        closed = true;
                        break;
                    }
                    s.push(c2);
                }
                if !closed {
                    return Err(LangError::Parse("unterminated string".into()));
                }
                out.push(s);
            }
            ':' | ';' | ',' | '(' | ')' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

impl Toks {
    fn peek(&self) -> Option<&str> {
        self.words.get(self.pos).map(|s| s.as_str())
    }

    fn next(&mut self) -> LangResult<String> {
        let w = self
            .words
            .get(self.pos)
            .cloned()
            .ok_or_else(|| LangError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(w)
    }

    fn expect(&mut self, w: &str) -> LangResult<()> {
        let got = self.next()?;
        if got == w {
            Ok(())
        } else {
            Err(LangError::Parse(format!("expected `{w}`, found `{got}`")))
        }
    }

    fn eat(&mut self, w: &str) -> bool {
        if self.peek() == Some(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> LangResult<String> {
        let w = self.next()?;
        w.strip_prefix('"')
            .map(|s| s.to_string())
            .ok_or_else(|| LangError::Parse(format!("expected string, found `{w}`")))
    }

    fn name_list(&mut self) -> LangResult<Vec<String>> {
        let mut out = vec![self.next()?];
        while self.eat(",") {
            out.push(self.next()?);
        }
        Ok(out)
    }
}

fn parse_type(t: &mut Toks) -> LangResult<DbplType> {
    let w = t.next()?;
    Ok(match w.as_str() {
        "SURROGATE" => DbplType::Surrogate,
        "SETOF" => DbplType::SetOf(Box::new(parse_type(t)?)),
        other => DbplType::Named(other.to_string()),
    })
}

fn parse_module(src: &str) -> LangResult<DbplModule> {
    let mut t = Toks {
        words: tokenize(src)?,
        pos: 0,
    };
    t.expect("MODULE")?;
    let name = t.next()?;
    t.expect(";")?;
    let mut module = DbplModule::new(name);
    while let Some(kw) = t.peek() {
        match kw {
            "RELATION" => {
                t.next()?;
                let name = t.next()?;
                t.expect("KEY")?;
                let key = t.name_list()?;
                let mut columns = Vec::new();
                while t.eat("ATTR") {
                    let cname = t.next()?;
                    t.expect(":")?;
                    let ty = parse_type(&mut t)?;
                    columns.push(Column { name: cname, ty });
                    t.eat(";");
                }
                t.expect("END")?;
                t.expect(";")?;
                module.add(Decl::Relation(Relation { name, key, columns }))?;
            }
            "SELECTOR" => {
                t.next()?;
                let name = t.next()?;
                t.expect("ON")?;
                let over = t.name_list()?;
                t.expect("WHERE")?;
                let predicate = t.string()?;
                t.expect("END")?;
                t.expect(";")?;
                module.add(Decl::Selector(Selector {
                    name,
                    over,
                    predicate,
                }))?;
            }
            "CONSTRUCTOR" => {
                t.next()?;
                let name = t.next()?;
                let kind = if t.eat("UNION") {
                    ConsKind::Union
                } else if t.eat("JOIN") {
                    ConsKind::Join
                } else {
                    t.expect("ON")?; // legacy form: ON defaults to join
                    ConsKind::Join
                };
                let over = t.name_list()?;
                t.expect("AS")?;
                let query = t.string()?;
                t.expect("END")?;
                t.expect(";")?;
                module.add(Decl::Constructor(Constructor {
                    name,
                    kind,
                    over,
                    query,
                }))?;
            }
            "TRANSACTION" => {
                t.next()?;
                let name = t.next()?;
                t.expect("(")?;
                let mut params = Vec::new();
                while !t.eat(")") {
                    let pname = t.next()?;
                    t.expect(":")?;
                    let class = t.next()?;
                    params.push((pname, class));
                    t.eat(";");
                }
                t.expect("DO")?;
                let mut body = Vec::new();
                while !t.eat("END") {
                    let w = t.next()?;
                    if w != ";" {
                        body.push(w);
                    }
                }
                t.expect(";")?;
                module.add(Decl::Transaction(DbplTransaction { name, params, body }))?;
            }
            other => {
                return Err(LangError::Parse(format!(
                    "expected declaration keyword, found `{other}`"
                )))
            }
        }
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DbplModule {
        DbplModule::parse(
            "MODULE DocumentDB;\n\
             RELATION InvitationRel\n\
               KEY paperkey\n\
               ATTR paperkey : SURROGATE;\n\
               ATTR sender : Person;\n\
               ATTR receivers : SETOF Person\n\
             END;\n\
             SELECTOR InvitationsPaperIC ON InvReceivRel, InvitationRel\n\
               WHERE \"referential integrity on paperkey\"\n\
             END;\n\
             CONSTRUCTOR ConsInvitation ON InvitationRel\n\
               AS \"identity\"\n\
             END;\n\
             TRANSACTION InsertInvitation(i : Invitation)\n\
               DO insert; check\n\
             END;",
        )
        .unwrap()
    }

    #[test]
    fn parses_all_declaration_kinds() {
        let m = sample();
        assert_eq!(m.name, "DocumentDB");
        assert_eq!(m.decls.len(), 4);
        let r = m.relation("InvitationRel").unwrap();
        assert_eq!(r.key, vec!["paperkey"]);
        assert!(r.has_surrogate_key());
        assert_eq!(r.set_valued_columns().len(), 1);
        assert_eq!(
            r.column("receivers").unwrap().ty,
            DbplType::SetOf(Box::new(DbplType::Named("Person".into())))
        );
    }

    #[test]
    fn references_and_referencing() {
        let m = sample();
        let refs = m.referencing("InvitationRel");
        let names: Vec<&str> = refs.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["InvitationsPaperIC", "ConsInvitation"]);
        assert!(m.referencing("Nothing").is_empty());
    }

    #[test]
    fn add_replace_remove() {
        let mut m = sample();
        let dup = Decl::Constructor(Constructor {
            name: "ConsInvitation".into(),
            kind: ConsKind::Join,
            over: vec![],
            query: String::new(),
        });
        assert!(m.add(dup.clone()).is_err());
        m.replace(dup).unwrap();
        let removed = m.remove("ConsInvitation").unwrap();
        assert_eq!(removed.name(), "ConsInvitation");
        assert!(m.remove("ConsInvitation").is_err());
    }

    #[test]
    fn code_frames_match_figures() {
        let m = sample();
        let frame = m.code_frame("InvitationRel").unwrap();
        assert!(frame.starts_with("RELATION InvitationRel"));
        assert!(frame.contains("KEY paperkey"));
        assert!(frame.contains("ATTR receivers : SETOF Person"));
        assert!(frame.ends_with("END;"));
        assert!(m.code_frame("Ghost").is_err());
    }

    #[test]
    fn display_reparses() {
        let m = sample();
        let printed = m.to_string();
        let reparsed = DbplModule::parse(&printed).unwrap();
        assert_eq!(m, reparsed);
    }

    #[test]
    fn composite_keys() {
        let m = DbplModule::parse(
            "MODULE M;\n\
             RELATION R\n\
               KEY date, author\n\
               ATTR date : Date;\n\
               ATTR author : Person\n\
             END;",
        )
        .unwrap();
        let r = m.relation("R").unwrap();
        assert_eq!(r.key, vec!["date", "author"]);
        assert!(!r.has_surrogate_key());
    }

    #[test]
    fn parse_errors() {
        assert!(
            DbplModule::parse("RELATION R KEY k END;").is_err(),
            "missing MODULE"
        );
        assert!(DbplModule::parse("MODULE M; WIDGET X END;").is_err());
        assert!(DbplModule::parse("MODULE M; SELECTOR S ON R WHERE nostring END;").is_err());
        assert!(DbplModule::parse("MODULE M; RELATION R KEY k ATTR a : SETOF END;").is_err());
    }

    #[test]
    fn transaction_roundtrip() {
        let m = sample();
        match m.decl("InsertInvitation").unwrap() {
            Decl::Transaction(t) => {
                assert_eq!(t.params.len(), 1);
                assert_eq!(t.body, vec!["insert", "check"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
