//! The CML world/system model layer and its mapping to TaxisDL
//! (fig 1-1).
//!
//! "A world model represented in CML would give a general account of
//! meetings as an activity in a real world with time; a system model,
//! also described by CML (system) objects and activities, would be
//! embedded in the world model." [`WorldModel`] wraps a Telos KB,
//! distinguishing world classes from the embedded *system* classes,
//! and [`WorldModel::derive_taxisdl`] is the mapping assistant that
//! turns the system model into a TaxisDL conceptual design.

use crate::error::{LangError, LangResult};
use crate::taxisdl::{EntityClass, TdlAttribute, TdlModel};
use telos::{Kb, PropId, TelosError};

/// Marker metaclass names installed by [`WorldModel::new`].
pub mod meta {
    /// Metaclass of all world-model classes.
    pub const WORLD_CLASS: &str = "WorldClass";
    /// Metaclass of classes embedded in the system model.
    pub const SYSTEM_CLASS: &str = "SystemClass";
    /// Individual marking set-valued attribute classes.
    pub const MANY: &str = "Many";
    /// Label of the multiplicity marker attribute.
    pub const MULTIPLICITY: &str = "multiplicity";
}

/// A CML world model with an embedded system model.
pub struct WorldModel {
    kb: Kb,
    world_class: PropId,
    system_class: PropId,
    many: PropId,
}

impl From<TelosError> for LangError {
    fn from(e: TelosError) -> Self {
        LangError::Precondition(e.to_string())
    }
}

impl WorldModel {
    /// Bootstraps the marker metaclasses in a fresh KB.
    pub fn new() -> LangResult<Self> {
        let mut kb = Kb::new();
        let meta_class = kb.builtins().meta_class;
        let world_class = kb.individual(meta::WORLD_CLASS)?;
        kb.instantiate(world_class, meta_class)?;
        let system_class = kb.individual(meta::SYSTEM_CLASS)?;
        kb.instantiate(system_class, meta_class)?;
        // System classes are world classes (the system model is
        // embedded in the world model).
        kb.specialize(system_class, world_class)?;
        let many = kb.individual(meta::MANY)?;
        Ok(WorldModel {
            kb,
            world_class,
            system_class,
            many,
        })
    }

    /// Read access to the underlying KB.
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// Mutable access (for scenario-specific extensions).
    pub fn kb_mut(&mut self) -> &mut Kb {
        &mut self.kb
    }

    /// Declares a world-model class.
    pub fn world_class(&mut self, name: &str) -> LangResult<PropId> {
        let c = self.kb.individual(name)?;
        self.kb.instantiate(c, self.world_class)?;
        Ok(c)
    }

    /// Declares a class of the embedded system model.
    pub fn system_class(&mut self, name: &str) -> LangResult<PropId> {
        let c = self.kb.individual(name)?;
        self.kb.instantiate(c, self.system_class)?;
        Ok(c)
    }

    /// Adds an isa link between classes.
    pub fn isa(&mut self, sub: &str, sup: &str) -> LangResult<()> {
        let sub = self.kb.expect(sub)?;
        let sup = self.kb.expect(sup)?;
        self.kb.specialize(sub, sup)?;
        Ok(())
    }

    /// Declares a single-valued attribute class.
    pub fn attr(&mut self, class: &str, label: &str, target: &str) -> LangResult<PropId> {
        let c = self.kb.expect(class)?;
        let t = self.kb.expect(target)?;
        Ok(self.kb.put_attr(c, label, t)?)
    }

    /// Declares a set-valued attribute class (marked with the
    /// `multiplicity: Many` annotation — fig 3-2 style: the marker is
    /// an attribute *of the attribute proposition*).
    pub fn attr_many(&mut self, class: &str, label: &str, target: &str) -> LangResult<PropId> {
        let a = self.attr(class, label, target)?;
        self.kb.put_attr(a, meta::MULTIPLICITY, self.many)?;
        Ok(a)
    }

    /// Names of the system-model classes, in declaration order.
    pub fn system_classes(&self) -> Vec<String> {
        self.kb
            .all_instances_of(self.system_class)
            .into_iter()
            .map(|c| self.kb.display(c))
            .collect()
    }

    /// True if the class is in the world model but not the system model.
    pub fn is_world_only(&self, name: &str) -> bool {
        match self.kb.lookup(name) {
            None => false,
            Some(c) => {
                self.kb.is_instance_of(c, self.world_class)
                    && !self.kb.is_instance_of(c, self.system_class)
            }
        }
    }

    /// The CML → TaxisDL mapping assistant: derives an entity class per
    /// system class, carrying isa links (to other *system* classes) and
    /// attributes whose targets are system classes.
    pub fn derive_taxisdl(&self) -> LangResult<TdlModel> {
        let mut model = TdlModel::default();
        let system = self.kb.all_instances_of(self.system_class);
        for &c in &system {
            let name = self.kb.display(c);
            let isa: Vec<String> = self
                .kb
                .isa_parents(c)
                .into_iter()
                .filter(|p| system.contains(p))
                .map(|p| self.kb.display(p))
                .collect();
            let mut attributes = Vec::new();
            for attr in self.kb.attrs_of(c) {
                let p = self.kb.get(attr)?;
                let label = self.kb.resolve(p.label).to_string();
                if !system.contains(&p.dest) {
                    continue; // world-only targets stay outside the system
                }
                let set_valued = self
                    .kb
                    .attr_values(attr, meta::MULTIPLICITY)
                    .contains(&self.many);
                attributes.push(TdlAttribute {
                    label,
                    target: self.kb.display(p.dest),
                    set_valued,
                });
            }
            model.entities.push(EntityClass {
                name,
                isa,
                attributes,
            });
        }
        // Order so that superclasses precede subclasses (the TaxisDL
        // validator tolerates forward references, but readers should
        // not have to).
        fn depth(model: &TdlModel, name: &str, fuel: usize) -> usize {
            if fuel == 0 {
                return usize::MAX / 2;
            }
            match model.entity(name) {
                None => 0,
                Some(e) => e
                    .isa
                    .iter()
                    .map(|p| depth(model, p, fuel - 1) + 1)
                    .max()
                    .unwrap_or(0),
            }
        }
        let depths: std::collections::HashMap<String, usize> = model
            .entities
            .iter()
            .map(|e| (e.name.clone(), depth(&model, &e.name, 32)))
            .collect();
        model.entities.sort_by_key(|e| depths[&e.name]);
        model.validate()?;
        Ok(model)
    }
}

/// The paper's meeting-organization world model (§1, \[BORG88, JJR87\]):
/// meetings are world activities; documents and persons form the
/// embedded system model.
pub fn meeting_world() -> LangResult<WorldModel> {
    let mut w = WorldModel::new()?;
    // Pure world model: real-world activities with time.
    w.world_class("Activity")?;
    w.world_class("Meeting")?;
    w.isa("Meeting", "Activity")?;
    w.world_class("Room")?;
    w.attr("Meeting", "venue", "Room")?;
    // The embedded system model: what the information system records.
    w.system_class("Person")?;
    w.system_class("Date")?;
    w.system_class("Paper")?;
    w.system_class("Invitation")?;
    w.system_class("Minutes")?;
    w.isa("Invitation", "Paper")?;
    w.isa("Minutes", "Paper")?;
    w.attr("Paper", "author", "Person")?;
    w.attr("Paper", "date", "Date")?;
    w.attr("Invitation", "sender", "Person")?;
    w.attr_many("Invitation", "receivers", "Person")?;
    w.attr("Minutes", "approvedBy", "Person")?;
    // Embedding: meetings produce papers (world ↔ system relationship).
    w.attr("Meeting", "produces", "Paper")?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxisdl::document_model;

    #[test]
    fn world_and_system_classes_distinguished() {
        let w = meeting_world().unwrap();
        assert!(w.is_world_only("Meeting"));
        assert!(w.is_world_only("Room"));
        assert!(!w.is_world_only("Paper"));
        assert!(!w.is_world_only("NoSuch"));
        let sys = w.system_classes();
        assert!(sys.contains(&"Invitation".to_string()));
        assert!(!sys.contains(&"Meeting".to_string()));
    }

    #[test]
    fn derived_taxisdl_matches_builtin_document_model() {
        let w = meeting_world().unwrap();
        let derived = w.derive_taxisdl().unwrap();
        let reference = document_model();
        // Same entity classes (the built-in model also has a
        // transaction, which the world model does not define).
        let mut derived_names: Vec<&str> =
            derived.entities.iter().map(|e| e.name.as_str()).collect();
        let mut ref_names: Vec<&str> = reference.entities.iter().map(|e| e.name.as_str()).collect();
        derived_names.sort_unstable();
        ref_names.sort_unstable();
        assert_eq!(derived_names, ref_names);
        // Same attributes on Invitation, including the set marker.
        let inv = derived.entity("Invitation").unwrap();
        let recv = inv
            .attributes
            .iter()
            .find(|a| a.label == "receivers")
            .unwrap();
        assert!(recv.set_valued);
        assert_eq!(recv.target, "Person");
        assert_eq!(inv.isa, vec!["Paper"]);
    }

    #[test]
    fn world_only_targets_are_excluded() {
        let mut w = meeting_world().unwrap();
        // A system-class attribute pointing at a world-only class must
        // not leak into the conceptual design.
        w.attr("Paper", "discussedAt", "Meeting").unwrap();
        let derived = w.derive_taxisdl().unwrap();
        let paper = derived.entity("Paper").unwrap();
        assert!(paper.attributes.iter().all(|a| a.label != "discussedAt"));
    }

    #[test]
    fn derived_model_is_valid_and_ordered() {
        let w = meeting_world().unwrap();
        let derived = w.derive_taxisdl().unwrap();
        derived.validate().unwrap();
        let paper_at = derived
            .entities
            .iter()
            .position(|e| e.name == "Paper")
            .unwrap();
        let inv_at = derived
            .entities
            .iter()
            .position(|e| e.name == "Invitation")
            .unwrap();
        assert!(paper_at < inv_at, "superclass precedes subclass");
    }

    #[test]
    fn system_model_is_embedded_in_world_model() {
        let w = meeting_world().unwrap();
        let kb = w.kb();
        let paper = kb.lookup("Paper").unwrap();
        let world_class = kb.lookup(meta::WORLD_CLASS).unwrap();
        assert!(kb.is_instance_of(paper, world_class), "system ⇒ world");
    }
}
