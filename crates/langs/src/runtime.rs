//! A relational runtime for DBPL modules.
//!
//! DAIDA restricts itself to "data-intensive information systems" whose
//! programs are "data-oriented and therefore often algorithmically
//! easy" (§4) — easy enough that a small interpreter makes the mapped
//! modules *executable*: insert tuples, enforce key uniqueness and the
//! generated selectors (integrity constraints), and evaluate
//! constructors (views). This turns the design-level candidate-key
//! conflict of fig 2-4 into an observable data-level violation: after
//! the key substitution, a Minutes row and an Invitation row with the
//! same `(date, author)` collide in the `ConsPapers` union.

use crate::dbpl::{ConsKind, DbplModule, DbplType, Decl};
use crate::error::{LangError, LangResult};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    /// A string (references to mapped entity tokens).
    Str(String),
    /// An integer.
    Int(i64),
    /// A system-generated surrogate.
    Surrogate(u64),
    /// A set value (for `SETOF` columns), kept sorted.
    Set(Vec<Val>),
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Str(s) => write!(f, "{s}"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Surrogate(n) => write!(f, "#{n}"),
            Val::Set(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A row: column name → value (ordered for determinism).
pub type Row = BTreeMap<String, Val>;

/// A data-level integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeViolation {
    /// The selector or constructor that is violated.
    pub constraint: String,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for RuntimeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.constraint, self.reason)
    }
}

/// An executable database instance of a DBPL module.
pub struct Db {
    module: DbplModule,
    tables: BTreeMap<String, Vec<Row>>,
    next_surrogate: u64,
}

impl Db {
    /// Creates an empty database over `module`.
    pub fn new(module: DbplModule) -> Db {
        let tables = module
            .decls
            .iter()
            .filter_map(|d| match d {
                Decl::Relation(r) => Some((r.name.clone(), Vec::new())),
                _ => None,
            })
            .collect();
        Db {
            module,
            tables,
            next_surrogate: 0,
        }
    }

    /// The module the database executes.
    pub fn module(&self) -> &DbplModule {
        &self.module
    }

    /// Inserts a row given as `(column, value)` pairs. Surrogate
    /// columns may be omitted (a fresh surrogate is allocated); all
    /// other columns are required. Key uniqueness is enforced.
    pub fn insert(&mut self, relation: &str, values: &[(&str, Val)]) -> LangResult<Row> {
        let rel = self.module.expect_relation(relation)?.clone();
        let mut row: Row = BTreeMap::new();
        for col in &rel.columns {
            let given = values.iter().find(|(c, _)| *c == col.name);
            match (&col.ty, given) {
                (DbplType::Surrogate, None) => {
                    self.next_surrogate += 1;
                    row.insert(col.name.clone(), Val::Surrogate(self.next_surrogate));
                }
                (DbplType::Surrogate, Some((_, v @ Val::Surrogate(_)))) => {
                    row.insert(col.name.clone(), v.clone());
                }
                (DbplType::Surrogate, Some(_)) => {
                    return Err(LangError::Precondition(format!(
                        "column `{}` of `{relation}` takes surrogate values",
                        col.name
                    )));
                }
                (DbplType::SetOf(_), Some((_, Val::Set(vs)))) => {
                    let mut vs = vs.clone();
                    vs.sort();
                    vs.dedup();
                    row.insert(col.name.clone(), Val::Set(vs));
                }
                (DbplType::SetOf(_), Some(_)) => {
                    return Err(LangError::Precondition(format!(
                        "column `{}` of `{relation}` takes set values",
                        col.name
                    )));
                }
                (DbplType::SetOf(_), None) => {
                    row.insert(col.name.clone(), Val::Set(Vec::new()));
                }
                (DbplType::Named(_), Some((_, v))) => {
                    if matches!(v, Val::Set(_)) {
                        return Err(LangError::Precondition(format!(
                            "column `{}` of `{relation}` is single-valued",
                            col.name
                        )));
                    }
                    row.insert(col.name.clone(), v.clone());
                }
                (DbplType::Named(_), None) => {
                    return Err(LangError::Precondition(format!(
                        "missing value for column `{}` of `{relation}`",
                        col.name
                    )));
                }
            }
        }
        for (c, _) in values {
            if rel.column(c).is_none() {
                return Err(LangError::Unknown(format!("column `{c}` of `{relation}`")));
            }
        }
        // Key uniqueness within the relation.
        let key_of = |r: &Row| -> Vec<Val> { rel.key.iter().map(|k| r[k].clone()).collect() };
        let new_key = key_of(&row);
        let table = self
            .tables
            .get_mut(relation)
            .expect("table exists for every relation");
        if table.iter().any(|r| key_of(r) == new_key) {
            return Err(LangError::Conflict(format!(
                "duplicate key ({}) in `{relation}`",
                new_key
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        table.push(row.clone());
        Ok(row)
    }

    /// The rows of a stored relation.
    pub fn rows(&self, relation: &str) -> LangResult<&[Row]> {
        self.tables
            .get(relation)
            .map(|t| t.as_slice())
            .ok_or_else(|| LangError::Unknown(format!("relation `{relation}`")))
    }

    /// Evaluates a constructor: `Union` concatenates member rows
    /// projected on the common columns; `Join` natural-joins the
    /// members on their shared columns.
    pub fn eval_constructor(&self, name: &str) -> LangResult<Vec<Row>> {
        let cons = match self.module.decl(name) {
            Some(Decl::Constructor(c)) => c.clone(),
            _ => return Err(LangError::Unknown(format!("constructor `{name}`"))),
        };
        let mut member_rows: Vec<&[Row]> = Vec::new();
        for m in &cons.over {
            member_rows.push(self.rows(m)?);
        }
        match cons.kind {
            ConsKind::Union => {
                // Common columns across all members.
                let mut common: Option<HashSet<String>> = None;
                for m in &cons.over {
                    let rel = self.module.expect_relation(m)?;
                    let cols: HashSet<String> =
                        rel.columns.iter().map(|c| c.name.clone()).collect();
                    common = Some(match common {
                        None => cols,
                        Some(prev) => prev.intersection(&cols).cloned().collect(),
                    });
                }
                let common = common.unwrap_or_default();
                let mut out = Vec::new();
                for rows in member_rows {
                    for r in rows {
                        out.push(
                            r.iter()
                                .filter(|(c, _)| common.contains(*c))
                                .map(|(c, v)| (c.clone(), v.clone()))
                                .collect::<Row>(),
                        );
                    }
                }
                Ok(out)
            }
            ConsKind::Join => {
                let mut acc: Vec<Row> = match member_rows.first() {
                    None => return Ok(Vec::new()),
                    Some(first) => first.to_vec(),
                };
                for rows in member_rows.iter().skip(1) {
                    let mut next = Vec::new();
                    for a in &acc {
                        for b in rows.iter() {
                            let shared_ok = a
                                .iter()
                                .filter(|(c, _)| b.contains_key(*c))
                                .all(|(c, v)| &b[c] == v);
                            if shared_ok {
                                let mut joined = a.clone();
                                for (c, v) in b {
                                    joined.entry(c.clone()).or_insert_with(|| v.clone());
                                }
                                next.push(joined);
                            }
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
        }
    }

    /// Checks every selector (interpreted as referential integrity:
    /// "every A.(k…) appears in B") and every union constructor's
    /// candidate key. Returns all data-level violations.
    pub fn check_integrity(&self) -> Vec<RuntimeViolation> {
        let mut out = Vec::new();
        for d in &self.module.decls {
            match d {
                Decl::Selector(s) => {
                    if let Some(v) = self.check_selector(&s.name, &s.over, &s.predicate) {
                        out.push(v);
                    }
                }
                Decl::Constructor(c) if c.kind == ConsKind::Union => {
                    // The union's key is the key of its first member;
                    // duplicates across members violate it.
                    let Some(first) = c.over.first() else {
                        continue;
                    };
                    let Ok(rel) = self.module.expect_relation(first) else {
                        continue;
                    };
                    let Ok(rows) = self.eval_constructor(&c.name) else {
                        continue;
                    };
                    let mut seen: HashSet<Vec<Val>> = HashSet::new();
                    for r in rows {
                        let key: Option<Vec<Val>> =
                            rel.key.iter().map(|k| r.get(k).cloned()).collect();
                        let Some(key) = key else { continue };
                        if !seen.insert(key.clone()) {
                            out.push(RuntimeViolation {
                                constraint: c.name.clone(),
                                reason: format!(
                                    "duplicate key ({}) across the union members",
                                    key.iter()
                                        .map(|v| v.to_string())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            });
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Interprets a referential-integrity selector of the generated
    /// form "every A.(k1, k2) appears in B" / "every A.k appears in B".
    fn check_selector(
        &self,
        name: &str,
        over: &[String],
        predicate: &str,
    ) -> Option<RuntimeViolation> {
        let (member, base) = match over {
            [m, b] => (m, b),
            _ => return None, // free-form selector: not interpretable
        };
        // Extract the referenced key columns from "A.(k1, k2)" or "A.k".
        let after_dot = predicate.split('.').nth(1)?;
        let key_part: String = if after_dot.starts_with('(') {
            after_dot
                .chars()
                .take_while(|c| *c != ')')
                .chain(std::iter::once(')'))
                .collect()
        } else {
            after_dot.chars().take_while(|c| *c != ' ').collect()
        };
        let key_cols: Vec<String> = key_part
            .trim_start_matches('(')
            .trim_end_matches(')')
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if key_cols.is_empty() {
            return None;
        }
        let member_rows = self.rows(member).ok()?;
        let base_rows = self.rows(base).ok()?;
        let base_keys: HashSet<Vec<&Val>> = base_rows
            .iter()
            .filter_map(|r| key_cols.iter().map(|k| r.get(k)).collect())
            .collect();
        for r in member_rows {
            let key: Option<Vec<&Val>> = key_cols.iter().map(|k| r.get(k)).collect();
            let Some(key) = key else { continue };
            if !base_keys.contains(&key) {
                return Some(RuntimeViolation {
                    constraint: name.to_string(),
                    reason: format!(
                        "({}) of `{member}` has no match in `{base}`",
                        key.iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::substitute_key;
    use crate::mapping::{MappingStrategy, MoveDown};
    use crate::normalize::{normalize, NormalizeNames};
    use crate::taxisdl::document_model;

    fn scenario_module(with_key_subst: bool) -> DbplModule {
        let out = MoveDown.map_hierarchy(&document_model(), "Paper").unwrap();
        let mut module = DbplModule::new("DocumentDB");
        for d in out.decls {
            module.add(d).unwrap();
        }
        let names = NormalizeNames {
            base: "InvitationRel2".into(),
            member: "InvReceivRel".into(),
            member_column: "receiver".into(),
            selector: "InvitationsPaperIC".into(),
            constructor: "ConsInvitation".into(),
        };
        normalize(&mut module, "InvitationRel", "receivers", names).unwrap();
        if with_key_subst {
            substitute_key(&mut module, "InvitationRel2", &["date", "author"]).unwrap();
        }
        module
    }

    fn s(v: &str) -> Val {
        Val::Str(v.to_string())
    }

    #[test]
    fn insert_allocates_surrogates_and_enforces_keys() {
        let mut db = Db::new(scenario_module(false));
        let row = db
            .insert(
                "InvitationRel2",
                &[
                    ("author", s("maria")),
                    ("date", s("d1")),
                    ("sender", s("joe")),
                ],
            )
            .unwrap();
        assert!(matches!(row["paperkey"], Val::Surrogate(_)));
        // Explicit duplicate surrogate key rejected.
        let k = row["paperkey"].clone();
        let err = db.insert(
            "InvitationRel2",
            &[
                ("paperkey", k),
                ("author", s("x")),
                ("date", s("d2")),
                ("sender", s("y")),
            ],
        );
        assert!(matches!(err, Err(LangError::Conflict(_))));
        assert_eq!(db.rows("InvitationRel2").unwrap().len(), 1);
    }

    #[test]
    fn missing_and_unknown_columns_rejected() {
        let mut db = Db::new(scenario_module(false));
        assert!(matches!(
            db.insert("InvitationRel2", &[("author", s("a"))]),
            Err(LangError::Precondition(_))
        ));
        assert!(matches!(
            db.insert(
                "InvitationRel2",
                &[
                    ("author", s("a")),
                    ("date", s("d")),
                    ("sender", s("s")),
                    ("ghost", s("g"))
                ]
            ),
            Err(LangError::Unknown(_))
        ));
        assert!(db.rows("Ghost").is_err());
    }

    #[test]
    fn referential_integrity_selector_detects_orphans() {
        let mut db = Db::new(scenario_module(false));
        let inv = db
            .insert(
                "InvitationRel2",
                &[
                    ("author", s("maria")),
                    ("date", s("d1")),
                    ("sender", s("joe")),
                ],
            )
            .unwrap();
        // A matching member row: fine.
        db.insert(
            "InvReceivRel",
            &[
                ("paperkey", inv["paperkey"].clone()),
                ("receiver", s("ann")),
            ],
        )
        .unwrap();
        assert!(db.check_integrity().is_empty());
        // An orphan member row: the generated selector fires.
        db.insert(
            "InvReceivRel",
            &[("paperkey", Val::Surrogate(999)), ("receiver", s("bob"))],
        )
        .unwrap();
        let violations = db.check_integrity();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].constraint, "InvitationsPaperIC");
        assert!(violations[0].reason.contains("#999"));
    }

    #[test]
    fn composite_key_selector_checked_after_substitution() {
        // After the key substitution the selector reads
        // "every InvReceivRel.(date, author) appears in InvitationRel2".
        let mut db = Db::new(scenario_module(true));
        db.insert(
            "InvitationRel2",
            &[
                ("author", s("maria")),
                ("date", s("d1")),
                ("sender", s("joe")),
            ],
        )
        .unwrap();
        db.insert(
            "InvReceivRel",
            &[
                ("author", s("maria")),
                ("date", s("d1")),
                ("receiver", s("ann")),
            ],
        )
        .unwrap();
        assert!(db.check_integrity().is_empty());
        // Orphan on the composite key: only the date differs.
        db.insert(
            "InvReceivRel",
            &[
                ("author", s("maria")),
                ("date", s("d2")),
                ("receiver", s("bob")),
            ],
        )
        .unwrap();
        let violations = db.check_integrity();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].constraint, "InvitationsPaperIC");
        assert!(violations[0].reason.contains("d2"));
    }

    #[test]
    fn join_constructor_reassembles_nested_relation() {
        let mut db = Db::new(scenario_module(false));
        let inv = db
            .insert(
                "InvitationRel2",
                &[
                    ("author", s("maria")),
                    ("date", s("d1")),
                    ("sender", s("joe")),
                ],
            )
            .unwrap();
        db.insert(
            "InvReceivRel",
            &[
                ("paperkey", inv["paperkey"].clone()),
                ("receiver", s("ann")),
            ],
        )
        .unwrap();
        db.insert(
            "InvReceivRel",
            &[
                ("paperkey", inv["paperkey"].clone()),
                ("receiver", s("bob")),
            ],
        )
        .unwrap();
        let rows = db.eval_constructor("ConsInvitation").unwrap();
        assert_eq!(rows.len(), 2, "one joined row per receiver");
        assert!(rows.iter().all(|r| r["author"] == s("maria")));
    }

    #[test]
    fn fig_2_4_conflict_observable_in_the_data() {
        // With the associative key, ConsPapers unions MinutesRel
        // (surrogate-keyed, but projected on common columns) with the
        // invitation relation; two papers sharing (date, author) break
        // the union's candidate key… observable only when the union is
        // over comparable keys. We reproduce the *within-union*
        // duplicate: two invitation-vs-minutes rows with equal keys.
        let mut module = scenario_module(true);
        // Wire ConsPapers over the two leaves as scenario step 5 does.
        let cons = match module.decl("ConsPapers").unwrap() {
            Decl::Constructor(c) => {
                let mut c = c.clone();
                c.over = vec!["InvitationRel2".into(), "MinutesRel".into()];
                c
            }
            other => panic!("unexpected {other:?}"),
        };
        module.replace(Decl::Constructor(cons)).unwrap();
        // Design-level check already complains…
        assert!(!crate::keys::check_union_key_conflicts(&module).is_empty());
        // …and the data shows why: same (date, author) in both leaves.
        let mut db = Db::new(module);
        db.insert(
            "InvitationRel2",
            &[
                ("author", s("maria")),
                ("date", s("d1")),
                ("sender", s("joe")),
            ],
        )
        .unwrap();
        db.insert(
            "MinutesRel",
            &[
                ("author", s("maria")),
                ("date", s("d1")),
                ("approvedBy", s("boss")),
            ],
        )
        .unwrap();
        let violations = db.check_integrity();
        assert!(
            violations.iter().any(|v| v.constraint == "ConsPapers"),
            "union key violated: {violations:?}"
        );
        // Counterfactual: with surrogate keys no violation arises.
        let module = {
            let out = MoveDown.map_hierarchy(&document_model(), "Paper").unwrap();
            let mut m = DbplModule::new("M");
            for d in out.decls {
                m.add(d).unwrap();
            }
            m
        };
        let mut db = Db::new(module);
        db.insert(
            "InvitationRel",
            &[
                ("author", s("maria")),
                ("date", s("d1")),
                ("sender", s("joe")),
                ("receivers", Val::Set(vec![s("ann")])),
            ],
        )
        .unwrap();
        db.insert(
            "MinutesRel",
            &[
                ("author", s("maria")),
                ("date", s("d1")),
                ("approvedBy", s("boss")),
            ],
        )
        .unwrap();
        assert!(db.check_integrity().is_empty(), "surrogates stay unique");
    }

    #[test]
    fn union_projects_common_columns() {
        let out = MoveDown.map_hierarchy(&document_model(), "Paper").unwrap();
        let mut module = DbplModule::new("M");
        for d in out.decls {
            module.add(d).unwrap();
        }
        let mut db = Db::new(module);
        db.insert(
            "InvitationRel",
            &[
                ("author", s("a")),
                ("date", s("d")),
                ("sender", s("x")),
                ("receivers", Val::Set(vec![])),
            ],
        )
        .unwrap();
        db.insert(
            "MinutesRel",
            &[("author", s("b")), ("date", s("d")), ("approvedBy", s("y"))],
        )
        .unwrap();
        let papers = db.eval_constructor("ConsPapers").unwrap();
        assert_eq!(papers.len(), 2);
        for r in &papers {
            assert!(r.contains_key("author") && r.contains_key("paperkey"));
            assert!(!r.contains_key("sender"), "member-specific columns dropped");
            assert!(!r.contains_key("approvedBy"));
        }
    }

    #[test]
    fn set_values_normalized_and_displayed() {
        let v = Val::Set(vec![s("b"), s("a"), s("b")]);
        let mut db = Db::new(scenario_module(false));
        // (direct set insert path is exercised via InvitationRel in
        // union_projects_common_columns; here: display formatting)
        assert_eq!(v.to_string(), "{b,a,b}");
        let row = db
            .insert(
                "InvitationRel2",
                &[("author", s("a")), ("date", s("d")), ("sender", s("x"))],
            )
            .unwrap();
        assert_eq!(row["paperkey"].to_string(), "#1");
    }
}
