//! A TaxisDL subset \[TDL87, MBW80\]: entity classes in IsA
//! generalization hierarchies with (possibly set-valued) attributes,
//! and transaction classes. "The object-oriented TaxisDL model …
//! does not have keys" (§2.1) — keys appear only after mapping to DBPL.
//!
//! Concrete syntax:
//!
//! ```text
//! EntityClass Invitation isA Paper with
//!   sender    : Person;
//!   receivers : setof Person
//! end
//!
//! TransactionClass SendInvitation with
//!   i : Invitation
//! does
//!   deliver; archive
//! end
//! ```

use crate::error::{LangError, LangResult};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// An attribute of an entity class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdlAttribute {
    /// Attribute label.
    pub label: String,
    /// Target class name.
    pub target: String,
    /// True for `setof` attributes.
    pub set_valued: bool,
}

/// An entity class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityClass {
    /// Class name.
    pub name: String,
    /// Direct superclasses.
    pub isa: Vec<String>,
    /// Direct attributes.
    pub attributes: Vec<TdlAttribute>,
}

/// A transaction class (declarative signature plus abstract steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionClass {
    /// Transaction name.
    pub name: String,
    /// Direct supertransactions.
    pub isa: Vec<String>,
    /// Parameters: `(name, class)` pairs.
    pub params: Vec<(String, String)>,
    /// Abstract step names.
    pub steps: Vec<String>,
}

/// A TaxisDL conceptual design: entity and transaction hierarchies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TdlModel {
    /// Entity classes, in declaration order.
    pub entities: Vec<EntityClass>,
    /// Transaction classes, in declaration order.
    pub transactions: Vec<TransactionClass>,
}

impl TdlModel {
    /// Parses a model from concrete syntax.
    pub fn parse(src: &str) -> LangResult<TdlModel> {
        parse_model(src)
    }

    /// Finds an entity class by name.
    pub fn entity(&self, name: &str) -> Option<&EntityClass> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Like [`TdlModel::entity`] but an error if absent.
    pub fn expect_entity(&self, name: &str) -> LangResult<&EntityClass> {
        self.entity(name)
            .ok_or_else(|| LangError::Unknown(format!("entity class `{name}`")))
    }

    /// Direct subclasses of `name`.
    pub fn children(&self, name: &str) -> Vec<&EntityClass> {
        self.entities
            .iter()
            .filter(|e| e.isa.iter().any(|p| p == name))
            .collect()
    }

    /// All classes in the sub-hierarchy rooted at `name` (including
    /// `name`), breadth-first.
    pub fn subtree(&self, name: &str) -> LangResult<Vec<&EntityClass>> {
        let root = self.expect_entity(name)?;
        let mut out = vec![root];
        let mut seen: HashSet<&str> = HashSet::from([name]);
        let mut queue = VecDeque::from([name]);
        while let Some(cur) = queue.pop_front() {
            for child in self.children(cur) {
                if seen.insert(&child.name) {
                    out.push(child);
                    queue.push_back(&child.name);
                }
            }
        }
        Ok(out)
    }

    /// Leaf classes of the sub-hierarchy rooted at `name`.
    pub fn leaves(&self, name: &str) -> LangResult<Vec<&EntityClass>> {
        Ok(self
            .subtree(name)?
            .into_iter()
            .filter(|e| self.children(&e.name).is_empty())
            .collect())
    }

    /// Transitive superclasses of `name` (excluding `name`).
    pub fn ancestors(&self, name: &str) -> LangResult<Vec<&EntityClass>> {
        self.expect_entity(name)?;
        let mut out = Vec::new();
        let mut seen: HashSet<&str> = HashSet::new();
        let mut queue: VecDeque<&str> = VecDeque::from([name]);
        while let Some(cur) = queue.pop_front() {
            let Some(e) = self.entity(cur) else { continue };
            for p in &e.isa {
                if seen.insert(p) {
                    out.push(self.expect_entity(p)?);
                    queue.push_back(p);
                }
            }
        }
        Ok(out)
    }

    /// All attributes of `name`, inherited ones first (superclass
    /// attributes before subclass attributes, no duplicate labels:
    /// subclass declarations refine).
    pub fn all_attributes(&self, name: &str) -> LangResult<Vec<TdlAttribute>> {
        let mut chain: Vec<&EntityClass> = self.ancestors(name)?;
        chain.reverse(); // most general first
        chain.push(self.expect_entity(name)?);
        let mut out: Vec<TdlAttribute> = Vec::new();
        let mut by_label: HashMap<String, usize> = HashMap::new();
        for e in chain {
            for a in &e.attributes {
                match by_label.get(&a.label) {
                    Some(&i) => out[i] = a.clone(), // refinement overrides
                    None => {
                        by_label.insert(a.label.clone(), out.len());
                        out.push(a.clone());
                    }
                }
            }
        }
        Ok(out)
    }

    /// Validates referential integrity of the hierarchy: every isa
    /// target exists and the graph is acyclic.
    pub fn validate(&self) -> LangResult<()> {
        for e in &self.entities {
            for p in &e.isa {
                self.expect_entity(p)?;
            }
        }
        // Cycle check by DFS colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: HashMap<&str, Color> = self
            .entities
            .iter()
            .map(|e| (e.name.as_str(), Color::White))
            .collect();
        fn dfs<'a>(
            model: &'a TdlModel,
            node: &'a str,
            color: &mut HashMap<&'a str, Color>,
        ) -> LangResult<()> {
            color.insert(node, Color::Grey);
            let e = model.expect_entity(node)?;
            for p in &e.isa {
                match color.get(p.as_str()) {
                    Some(Color::Grey) => {
                        return Err(LangError::Precondition(format!("isa cycle at `{p}`")))
                    }
                    Some(Color::White) => dfs(model, p, color)?,
                    _ => {}
                }
            }
            color.insert(node, Color::Black);
            Ok(())
        }
        let names: Vec<&str> = self.entities.iter().map(|e| e.name.as_str()).collect();
        for n in names {
            if color[n] == Color::White {
                dfs(self, n, &mut color)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for TdlModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entities {
            write!(f, "EntityClass {}", e.name)?;
            if !e.isa.is_empty() {
                write!(f, " isA {}", e.isa.join(", "))?;
            }
            if e.attributes.is_empty() {
                writeln!(f, " with end")?;
            } else {
                writeln!(f, " with")?;
                for (i, a) in e.attributes.iter().enumerate() {
                    let sep = if i + 1 < e.attributes.len() { ";" } else { "" };
                    let set = if a.set_valued { "setof " } else { "" };
                    writeln!(f, "  {} : {}{}{}", a.label, set, a.target, sep)?;
                }
                writeln!(f, "end")?;
            }
        }
        for t in &self.transactions {
            write!(f, "TransactionClass {}", t.name)?;
            if !t.isa.is_empty() {
                write!(f, " isA {}", t.isa.join(", "))?;
            }
            writeln!(f, " with")?;
            for (i, (n, c)) in t.params.iter().enumerate() {
                let sep = if i + 1 < t.params.len() { ";" } else { "" };
                writeln!(f, "  {n} : {c}{sep}")?;
            }
            writeln!(f, "does")?;
            writeln!(f, "  {}", t.steps.join("; "))?;
            writeln!(f, "end")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Toks {
    words: Vec<String>,
    pos: usize,
}

fn tokenize(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in src.chars() {
        match c {
            ':' | ';' | ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl Toks {
    fn peek(&self) -> Option<&str> {
        self.words.get(self.pos).map(|s| s.as_str())
    }

    fn next(&mut self) -> LangResult<String> {
        let w = self
            .words
            .get(self.pos)
            .cloned()
            .ok_or_else(|| LangError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(w)
    }

    fn expect(&mut self, w: &str) -> LangResult<()> {
        let got = self.next()?;
        if got == w {
            Ok(())
        } else {
            Err(LangError::Parse(format!("expected `{w}`, found `{got}`")))
        }
    }

    fn eat(&mut self, w: &str) -> bool {
        if self.peek() == Some(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn parse_isa_list(t: &mut Toks) -> LangResult<Vec<String>> {
    let mut isa = Vec::new();
    if t.eat("isA") || t.eat("isa") {
        loop {
            isa.push(t.next()?);
            if !t.eat(",") {
                break;
            }
        }
    }
    Ok(isa)
}

fn parse_model(src: &str) -> LangResult<TdlModel> {
    let mut t = Toks {
        words: tokenize(src),
        pos: 0,
    };
    let mut model = TdlModel::default();
    while let Some(kw) = t.peek() {
        match kw {
            "EntityClass" => {
                t.next()?;
                let name = t.next()?;
                let isa = parse_isa_list(&mut t)?;
                t.expect("with")?;
                let mut attributes = Vec::new();
                while !t.eat("end") {
                    let label = t.next()?;
                    t.expect(":")?;
                    let set_valued = t.eat("setof");
                    let target = t.next()?;
                    attributes.push(TdlAttribute {
                        label,
                        target,
                        set_valued,
                    });
                    t.eat(";");
                }
                model.entities.push(EntityClass {
                    name,
                    isa,
                    attributes,
                });
            }
            "TransactionClass" => {
                t.next()?;
                let name = t.next()?;
                let isa = parse_isa_list(&mut t)?;
                t.expect("with")?;
                let mut params = Vec::new();
                while t.peek() != Some("does") && t.peek() != Some("end") {
                    let pname = t.next()?;
                    t.expect(":")?;
                    let class = t.next()?;
                    params.push((pname, class));
                    t.eat(";");
                }
                let mut steps = Vec::new();
                if t.eat("does") {
                    while !t.eat("end") {
                        let s = t.next()?;
                        if s != ";" {
                            steps.push(s);
                        }
                    }
                } else {
                    t.expect("end")?;
                }
                model.transactions.push(TransactionClass {
                    name,
                    isa,
                    params,
                    steps,
                });
            }
            other => {
                return Err(LangError::Parse(format!(
                    "expected `EntityClass` or `TransactionClass`, found `{other}`"
                )))
            }
        }
    }
    model.validate()?;
    Ok(model)
}

/// The paper's document model (§2.1, figs 2-1 … 2-4): Papers with
/// Invitation and Minutes subclasses, senders and set-valued receivers.
pub fn document_model() -> TdlModel {
    TdlModel::parse(
        "EntityClass Person with end\n\
         EntityClass Date with end\n\
         EntityClass Paper with\n\
           author : Person;\n\
           date   : Date\n\
         end\n\
         EntityClass Invitation isA Paper with\n\
           sender    : Person;\n\
           receivers : setof Person\n\
         end\n\
         EntityClass Minutes isA Paper with\n\
           approvedBy : Person\n\
         end\n\
         TransactionClass SendInvitation with\n\
           i : Invitation\n\
         does\n\
           deliver; archive\n\
         end",
    )
    .expect("builtin model parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_document_model() {
        let m = document_model();
        assert_eq!(m.entities.len(), 5);
        assert_eq!(m.transactions.len(), 1);
        let inv = m.entity("Invitation").unwrap();
        assert_eq!(inv.isa, vec!["Paper"]);
        assert!(inv
            .attributes
            .iter()
            .any(|a| a.label == "receivers" && a.set_valued));
    }

    #[test]
    fn hierarchy_navigation() {
        let m = document_model();
        let subtree: Vec<&str> = m
            .subtree("Paper")
            .unwrap()
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(subtree, vec!["Paper", "Invitation", "Minutes"]);
        let leaves: Vec<&str> = m
            .leaves("Paper")
            .unwrap()
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(leaves, vec!["Invitation", "Minutes"]);
        let ancestors: Vec<&str> = m
            .ancestors("Invitation")
            .unwrap()
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(ancestors, vec!["Paper"]);
        assert!(
            m.leaves("Person").unwrap().len() == 1,
            "a leaf is its own leaf"
        );
    }

    #[test]
    fn inherited_attributes_in_order() {
        let m = document_model();
        let attrs = m.all_attributes("Invitation").unwrap();
        let labels: Vec<&str> = attrs.iter().map(|a| a.label.as_str()).collect();
        assert_eq!(labels, vec!["author", "date", "sender", "receivers"]);
    }

    #[test]
    fn attribute_refinement_overrides() {
        let m = TdlModel::parse(
            "EntityClass Person with end\n\
             EntityClass Organizer isA Person with end\n\
             EntityClass Paper with author : Person end\n\
             EntityClass Invitation isA Paper with author : Organizer end",
        )
        .unwrap();
        let attrs = m.all_attributes("Invitation").unwrap();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].target, "Organizer");
    }

    #[test]
    fn diamond_hierarchy() {
        let m = TdlModel::parse(
            "EntityClass Top with end\n\
             EntityClass L isA Top with end\n\
             EntityClass R isA Top with end\n\
             EntityClass Bottom isA L, R with end",
        )
        .unwrap();
        let anc: Vec<&str> = m
            .ancestors("Bottom")
            .unwrap()
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(anc, vec!["L", "R", "Top"]);
        let leaves = m.leaves("Top").unwrap();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].name, "Bottom");
    }

    #[test]
    fn unknown_superclass_rejected() {
        assert!(matches!(
            TdlModel::parse("EntityClass A isA Ghost with end"),
            Err(LangError::Unknown(_))
        ));
    }

    #[test]
    fn isa_cycle_rejected() {
        // Forward references are allowed, so a cycle is expressible and
        // must be caught by validate().
        let err = TdlModel::parse("EntityClass A isA B with end\nEntityClass B isA A with end");
        assert!(matches!(err, Err(LangError::Precondition(_))));
    }

    #[test]
    fn parse_errors() {
        assert!(TdlModel::parse("EntityClass").is_err());
        assert!(TdlModel::parse("Widget Foo with end").is_err());
        assert!(TdlModel::parse("EntityClass A with x Person end").is_err());
    }

    #[test]
    fn display_reparses() {
        let m = document_model();
        let printed = m.to_string();
        let reparsed = TdlModel::parse(&printed).unwrap();
        assert_eq!(m, reparsed);
    }

    #[test]
    fn transaction_parsing() {
        let m = document_model();
        let t = &m.transactions[0];
        assert_eq!(t.name, "SendInvitation");
        assert_eq!(t.params, vec![("i".to_string(), "Invitation".to_string())]);
        assert_eq!(t.steps, vec!["deliver", "archive"]);
    }
}
