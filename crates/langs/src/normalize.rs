//! The normalization decision for set-valued attributes (fig 2-3).
//!
//! "InvitationType contains a set-valued attribute; a normalization
//! decision is therefore offered in the menu … The new selector
//! expresses the referential integrity constraint among the two
//! relations, whereas the new constructor allows the reconstruction of
//! the initial, unnormalized invitation relation."

use crate::dbpl::{Column, ConsKind, Constructor, DbplModule, DbplType, Decl, Relation, Selector};
use crate::error::{LangError, LangResult};
use crate::mapping::MapEdge;

/// Names for the four objects a normalization produces. The defaults
/// follow a systematic scheme; the paper's scenario uses hand-picked
/// abbreviations (`InvitationRel2`, `InvReceivRel`, …), so they are
/// overridable.
#[derive(Debug, Clone)]
pub struct NormalizeNames {
    /// Replacement for the unnormalized relation.
    pub base: String,
    /// The new member relation holding the set elements.
    pub member: String,
    /// Column name for one set element in the member relation.
    pub member_column: String,
    /// The referential-integrity selector.
    pub selector: String,
    /// The reconstructing constructor.
    pub constructor: String,
}

impl NormalizeNames {
    /// Systematic defaults: `RRel` + `attr` → `RRel2`, `RAttrRel`,
    /// selector `R_attr_IC`, constructor `ConsR`.
    pub fn defaults(relation: &str, attr: &str) -> Self {
        let stem = relation.strip_suffix("Rel").unwrap_or(relation);
        let mut cap = attr.to_string();
        if let Some(c) = cap.get_mut(0..1) {
            c.make_ascii_uppercase();
        }
        NormalizeNames {
            base: format!("{relation}2"),
            member: format!("{stem}{cap}Rel"),
            member_column: attr.strip_suffix('s').unwrap_or(attr).to_string(),
            selector: format!("{stem}_{attr}_IC"),
            constructor: format!("Cons{stem}"),
        }
    }
}

/// What a normalization produced, for GKBMS documentation.
#[derive(Debug, Clone)]
pub struct NormalizeOutcome {
    /// Name of the removed (unnormalized) relation.
    pub replaced: String,
    /// Names of the four created objects: base, member, selector,
    /// constructor.
    pub created: Vec<String>,
    /// Declarations whose references were rewritten to the base name.
    pub rewired: Vec<String>,
    /// Dependency trace (old relation → each new object).
    pub trace: Vec<MapEdge>,
}

/// Applies the normalization decision to `module`: splits the
/// set-valued column `attr` of `relation` into a member relation,
/// replaces the relation by a base version without the column, adds
/// the referential-integrity selector and the reconstruction
/// constructor, and rewires existing references.
pub fn normalize(
    module: &mut DbplModule,
    relation: &str,
    attr: &str,
    names: NormalizeNames,
) -> LangResult<NormalizeOutcome> {
    let rel = module.expect_relation(relation)?.clone();
    let col = rel
        .column(attr)
        .ok_or_else(|| LangError::Unknown(format!("column `{attr}` of `{relation}`")))?;
    let DbplType::SetOf(element_ty) = col.ty.clone() else {
        return Err(LangError::Precondition(format!(
            "column `{attr}` of `{relation}` is not set-valued"
        )));
    };
    if rel.key.contains(&attr.to_string()) {
        return Err(LangError::Precondition(format!(
            "cannot normalize key column `{attr}`"
        )));
    }

    // Base relation: same key, all columns except the set-valued one.
    let base = Relation {
        name: names.base.clone(),
        key: rel.key.clone(),
        columns: rel
            .columns
            .iter()
            .filter(|c| c.name != attr)
            .cloned()
            .collect(),
    };
    // Member relation: key columns of the base + the element column.
    let mut member_cols: Vec<Column> = rel
        .key
        .iter()
        .map(|k| rel.column(k).cloned().expect("key column exists"))
        .collect();
    member_cols.push(Column {
        name: names.member_column.clone(),
        ty: *element_ty,
    });
    let member_key: Vec<String> = member_cols.iter().map(|c| c.name.clone()).collect();
    let member = Relation {
        name: names.member.clone(),
        key: member_key,
        columns: member_cols,
    };
    let selector = Selector {
        name: names.selector.clone(),
        over: vec![names.member.clone(), names.base.clone()],
        predicate: format!(
            "every {}.({}) appears in {}",
            names.member,
            rel.key.join(", "),
            names.base
        ),
    };
    let constructor = Constructor {
        name: names.constructor.clone(),
        kind: ConsKind::Join,
        over: vec![names.base.clone(), names.member.clone()],
        query: format!(
            "join {} with {} on ({}) and nest {} as {}",
            names.base,
            names.member,
            rel.key.join(", "),
            names.member_column,
            attr
        ),
    };

    // Mutate the module: remove old, add new, rewire references.
    module.remove(relation)?;
    module.add(Decl::Relation(base))?;
    module.add(Decl::Relation(member))?;
    module.add(Decl::Selector(selector))?;
    module.add(Decl::Constructor(constructor))?;

    let mut rewired = Vec::new();
    let decls: Vec<Decl> = module.decls.clone();
    for d in decls {
        let updated = match &d {
            Decl::Selector(s) if s.over.iter().any(|o| o == relation) => {
                let mut s = s.clone();
                for o in &mut s.over {
                    if o == relation {
                        *o = names.base.clone();
                    }
                }
                Some(Decl::Selector(s))
            }
            Decl::Constructor(c) if c.over.iter().any(|o| o == relation) => {
                let mut c = c.clone();
                for o in &mut c.over {
                    if o == relation {
                        *o = names.base.clone();
                    }
                }
                Some(Decl::Constructor(c))
            }
            _ => None,
        };
        if let Some(u) = updated {
            rewired.push(u.name().to_string());
            module.replace(u)?;
        }
    }

    let created = vec![
        names.base.clone(),
        names.member.clone(),
        names.selector.clone(),
        names.constructor.clone(),
    ];
    let trace = created
        .iter()
        .map(|to| MapEdge {
            from: relation.to_string(),
            to: to.clone(),
            rule: "normalize/set-valued".to_string(),
        })
        .collect();
    Ok(NormalizeOutcome {
        replaced: relation.to_string(),
        created,
        rewired,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MappingStrategy, MoveDown};
    use crate::taxisdl::document_model;

    /// The scenario's names from fig 2-3.
    fn scenario_names() -> NormalizeNames {
        NormalizeNames {
            base: "InvitationRel2".into(),
            member: "InvReceivRel".into(),
            member_column: "receiver".into(),
            selector: "InvitationsPaperIC".into(),
            constructor: "ConsInvitation".into(),
        }
    }

    fn mapped_module() -> DbplModule {
        let m = document_model();
        let out = MoveDown.map_hierarchy(&m, "Paper").unwrap();
        let mut module = DbplModule::new("DocumentDB");
        for d in out.decls {
            module.add(d).unwrap();
        }
        module
    }

    #[test]
    fn normalization_reproduces_fig_2_3_objects() {
        let mut module = mapped_module();
        let out = normalize(&mut module, "InvitationRel", "receivers", scenario_names()).unwrap();
        assert_eq!(out.replaced, "InvitationRel");
        assert_eq!(
            out.created,
            vec![
                "InvitationRel2",
                "InvReceivRel",
                "InvitationsPaperIC",
                "ConsInvitation"
            ]
        );
        // Base relation lost the set column, kept the rest.
        let base = module.relation("InvitationRel2").unwrap();
        assert!(base.column("receivers").is_none());
        assert!(base.column("sender").is_some());
        assert_eq!(base.key, vec!["paperkey"]);
        // Member relation: (paperkey, receiver), key = both.
        let member = module.relation("InvReceivRel").unwrap();
        let cols: Vec<&str> = member.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(cols, vec!["paperkey", "receiver"]);
        assert_eq!(member.key, vec!["paperkey", "receiver"]);
        assert_eq!(
            member.column("receiver").unwrap().ty,
            DbplType::Named("Person".into())
        );
        // Old relation is gone.
        assert!(module.relation("InvitationRel").is_none());
    }

    #[test]
    fn references_are_rewired_to_base() {
        let mut module = mapped_module();
        // ConsPapers referenced InvitationRel before normalization.
        let out = normalize(&mut module, "InvitationRel", "receivers", scenario_names()).unwrap();
        assert_eq!(out.rewired, vec!["ConsPapers"]);
        match module.decl("ConsPapers").unwrap() {
            Decl::Constructor(c) => {
                assert!(c.over.contains(&"InvitationRel2".to_string()));
                assert!(!c.over.contains(&"InvitationRel".to_string()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn selector_and_constructor_texts() {
        let mut module = mapped_module();
        normalize(&mut module, "InvitationRel", "receivers", scenario_names()).unwrap();
        let sel = module.code_frame("InvitationsPaperIC").unwrap();
        assert!(sel.contains("every InvReceivRel.(paperkey) appears in InvitationRel2"));
        let cons = module.code_frame("ConsInvitation").unwrap();
        assert!(cons.contains("nest receiver as receivers"));
    }

    #[test]
    fn default_names_are_systematic() {
        let n = NormalizeNames::defaults("InvitationRel", "receivers");
        assert_eq!(n.base, "InvitationRel2");
        assert_eq!(n.member, "InvitationReceiversRel");
        assert_eq!(n.member_column, "receiver");
        assert_eq!(n.selector, "Invitation_receivers_IC");
        assert_eq!(n.constructor, "ConsInvitation");
    }

    #[test]
    fn preconditions_checked() {
        let mut module = mapped_module();
        assert!(matches!(
            normalize(&mut module, "Ghost", "receivers", scenario_names()),
            Err(LangError::Unknown(_))
        ));
        assert!(matches!(
            normalize(&mut module, "InvitationRel", "ghost", scenario_names()),
            Err(LangError::Unknown(_))
        ));
        assert!(matches!(
            normalize(&mut module, "InvitationRel", "sender", scenario_names()),
            Err(LangError::Precondition(_)),
        ));
    }

    #[test]
    fn trace_records_all_four_edges() {
        let mut module = mapped_module();
        let out = normalize(&mut module, "InvitationRel", "receivers", scenario_names()).unwrap();
        assert_eq!(out.trace.len(), 4);
        assert!(out
            .trace
            .iter()
            .all(|e| e.from == "InvitationRel" && e.rule == "normalize/set-valued"));
    }
}
