//! The GKBMS as a network service (the "global KBMS" of §4 serving
//! many local workstations).
//!
//! The paper's architecture has decision-making tools at local
//! workstations talking to one *global* knowledge base that manages
//! the shared evolution history. This crate is that seam: a
//! multi-threaded TCP service exposing the [`gkbms::Gkbms`] over a
//! length-prefixed binary protocol ([`proto`]), with snapshot-isolated
//! read sessions ([`session`]), a single-writer/multi-reader engine
//! with bounded admission ([`server`]), and a blocking client library
//! ([`client`]).
//!
//! Snapshot isolation costs nothing here because the knowledge base
//! never destroys history: belief-time intervals make "the KB as of
//! tick t" a first-class read target ([`telos::Snapshot`]), so read
//! sessions pin a watermark instead of copying state, and writers
//! only ever add or close intervals above every pinned watermark.

pub mod client;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{
    AskReply, Client, ClientError, ClientResult, ReplicaStatus, ServerError, SessionStats,
    DEFAULT_READ_TIMEOUT,
};
pub use proto::{ErrorCode, Request, Response, WireDecision, WireDiagnostic, WireDischarge};
pub use server::{Config, JoinError, Server, SlowQuery};

#[cfg(test)]
mod tests {
    use super::*;
    use gkbms::Gkbms;
    use std::time::Duration;

    fn start(cfg: Config) -> (Server, std::net::SocketAddr) {
        let g = Gkbms::new().expect("fresh gkbms");
        let srv = Server::bind("127.0.0.1:0", g, cfg).expect("bind");
        let addr = srv.local_addr();
        (srv, addr)
    }

    fn quick_cfg() -> Config {
        Config {
            poll_interval: Duration::from_millis(20),
            ..Config::default()
        }
    }

    #[test]
    fn hello_tell_ask_roundtrip() {
        let (srv, addr) = start(quick_cfg());
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.ping().unwrap(), "pong");
        let (session, _) = c.hello().unwrap();
        c.tell(
            session,
            "TELL Paper end\nTELL Invitation isA Paper end\nTELL inv1 in Invitation end",
        )
        .unwrap();
        // The session watermark predates the TELL: refresh to see it.
        c.refresh(session).unwrap();
        let reply = c.ask(session, "p", "Paper", "true").unwrap();
        assert_eq!(reply.answers, vec!["inv1"]);
        assert!(reply.probes > 0, "deductive ASK probes indexes");
        assert!(c.holds(session, "(inv1 in Paper)").unwrap());
        let frame = c.show(session, "inv1").unwrap();
        assert!(frame.contains("inv1"));
        c.bye(session).unwrap();
        srv.shutdown().unwrap();
    }

    #[test]
    fn snapshot_isolation_between_sessions() {
        let (srv, addr) = start(quick_cfg());
        let mut writer = Client::connect(addr).unwrap();
        let (w, _) = writer.hello().unwrap();
        writer
            .tell(w, "TELL Paper end\nTELL p1 in Paper end")
            .unwrap();

        // Reader opens (and pins) before the second TELL.
        let mut reader = Client::connect(addr).unwrap();
        let (r, _) = reader.hello().unwrap();
        writer.refresh(w).unwrap();
        writer.tell(w, "TELL p2 in Paper end").unwrap();
        writer.refresh(w).unwrap();

        let pinned = reader.ask(r, "p", "Paper", "true").unwrap();
        assert_eq!(pinned.answers, vec!["p1"], "reader must not see p2");
        let live = writer.ask(w, "p", "Paper", "true").unwrap();
        assert_eq!(live.answers, vec!["p1", "p2"]);

        // After refresh the reader catches up.
        reader.refresh(r).unwrap();
        let fresh = reader.ask(r, "p", "Paper", "true").unwrap();
        assert_eq!(fresh.answers, vec!["p1", "p2"]);
        srv.shutdown().unwrap();
    }

    #[test]
    fn unknown_and_expired_sessions_are_typed_errors() {
        // poll_interval deliberately exceeds the sleep below: the
        // connection-idle sweep must not reap the session before the
        // request touches it, or we'd see UnknownSession instead of
        // the SessionExpired this test is about.
        let (srv, addr) = start(Config {
            idle_timeout: Duration::from_millis(30),
            poll_interval: Duration::from_millis(500),
            ..Config::default()
        });
        let mut c = Client::connect(addr).unwrap();
        match c.ask(999, "p", "Paper", "true") {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("unexpected {other:?}"),
        }
        let (session, _) = c.hello().unwrap();
        std::thread::sleep(Duration::from_millis(70));
        match c.ask(session, "p", "Paper", "true") {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::SessionExpired),
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown().unwrap();
    }

    #[test]
    fn saturation_yields_overloaded() {
        let (srv, addr) = start(Config {
            max_inflight: 1,
            poll_interval: Duration::from_millis(20),
            ..Config::default()
        });
        let mut a = Client::connect(addr).unwrap();
        let (sa, _) = a.hello().unwrap();
        let mut b = Client::connect(addr).unwrap();
        let (sb, _) = b.hello().unwrap();
        // Occupy the single admission slot, then probe from another
        // connection while it is held.
        let hold = std::thread::spawn(move || a.sleep(sa, 400).unwrap());
        std::thread::sleep(Duration::from_millis(100));
        match b.ask(sb, "p", "Paper", "true") {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        hold.join().unwrap();
        // Slot free again: the same request now succeeds (Paper is
        // unknown in an empty KB, so Rejected — but not Overloaded).
        match b.ask(sb, "p", "Paper", "true") {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown().unwrap();
    }

    #[test]
    fn graceful_shutdown_drains_in_flight() {
        let (srv, addr) = start(quick_cfg());
        let mut a = Client::connect(addr).unwrap();
        let (sa, _) = a.hello().unwrap();
        let mut b = Client::connect(addr).unwrap();
        let (sb, _) = b.hello().unwrap();
        // A long request is in flight when shutdown begins; it must
        // complete and get its response.
        let inflight = std::thread::spawn(move || a.sleep(sa, 300).unwrap());
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(b.shutdown_server(sb).unwrap(), "shutting down");
        assert_eq!(inflight.join().unwrap(), "slept 300 ms");
        // New work is refused while draining.
        match b.ask(sb, "p", "Paper", "true") {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown),
            Err(ClientError::Io(_)) => {} // connection already drained
            other => panic!("unexpected {other:?}"),
        }
        srv.join().unwrap();
    }

    #[test]
    fn shutdown_returns_final_state() {
        let (srv, addr) = start(quick_cfg());
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        c.tell(s, "TELL Paper end\nTELL p1 in Paper end").unwrap();
        let g = srv.shutdown().unwrap();
        assert!(g.kb().lookup("p1").is_some());
        assert!(g.kb().lookup("Paper").is_some());
    }

    fn journal_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-server-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn start_journaled(dir: &std::path::Path, cfg: Config) -> (Server, std::net::SocketAddr) {
        let (g, _) = Gkbms::recover(dir).expect("recover");
        let srv = Server::bind("127.0.0.1:0", g, cfg).expect("bind");
        let addr = srv.local_addr();
        (srv, addr)
    }

    #[test]
    fn journaled_mutations_survive_without_save() {
        let dir = journal_dir("survive");
        {
            let (srv, addr) = start_journaled(&dir, quick_cfg());
            let mut c = Client::connect(addr).unwrap();
            let (s, _) = c.hello().unwrap();
            c.tell(s, "TELL Paper end\nTELL p1 in Paper end").unwrap();
            // Shutdown without any Save request: durability must come
            // from the journal alone.
            srv.shutdown().unwrap();
        }
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.replayed_ops > 0, "WAL had the TELLs");
        assert!(g.kb().lookup("p1").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_always_policy_acknowledges_durable_writes() {
        let dir = journal_dir("always");
        {
            let (srv, addr) = start_journaled(
                &dir,
                Config {
                    fsync: gkbms::FsyncPolicy::Always,
                    ..quick_cfg()
                },
            );
            let mut c = Client::connect(addr).unwrap();
            let (s, _) = c.hello().unwrap();
            c.tell(s, "TELL Paper end").unwrap();
            c.tell(s, "TELL p1 in Paper end").unwrap();
            srv.shutdown().unwrap();
        }
        let (g, _) = Gkbms::recover(&dir).unwrap();
        assert!(g.kb().lookup("p1").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_group_commit() {
        let dir = journal_dir("group");
        {
            let (srv, addr) = start_journaled(
                &dir,
                Config {
                    fsync: gkbms::FsyncPolicy::Group(Duration::from_micros(200)),
                    ..quick_cfg()
                },
            );
            let mut c = Client::connect(addr).unwrap();
            let (s, _) = c.hello().unwrap();
            c.tell(s, "TELL Paper end").unwrap();
            let writers: Vec<_> = (0..4)
                .map(|w| {
                    std::thread::spawn(move || {
                        let mut c = Client::connect(addr).unwrap();
                        let (s, _) = c.hello().unwrap();
                        for i in 0..10 {
                            c.tell(s, &format!("TELL w{w}x{i} in Paper end")).unwrap();
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            srv.shutdown().unwrap();
        }
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.replayed_ops >= 41);
        for w in 0..4 {
            for i in 0..10 {
                assert!(
                    g.kb().lookup(&format!("w{w}x{i}")).is_some(),
                    "acknowledged TELL w{w}x{i} must survive"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_request_compacts_wal_and_preserves_state() {
        let dir = journal_dir("checkpoint");
        {
            let (srv, addr) = start_journaled(&dir, quick_cfg());
            let mut c = Client::connect(addr).unwrap();
            let (s, _) = c.hello().unwrap();
            c.tell(s, "TELL Paper end\nTELL p1 in Paper end").unwrap();
            let text = c.checkpoint(s).unwrap();
            assert!(text.contains("compacted"), "got: {text}");
            // Post-checkpoint mutations land in the fresh WAL.
            c.tell(s, "TELL p2 in Paper end").unwrap();
            srv.shutdown().unwrap();
        }
        assert!(dir.join("snapshot").exists());
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed_ops, 1, "only the post-checkpoint TELL");
        assert!(g.kb().lookup("p1").is_some());
        assert!(g.kb().lookup("p2").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_triggers_by_op_count() {
        let dir = journal_dir("autockpt");
        {
            let (srv, addr) = start_journaled(
                &dir,
                Config {
                    checkpoint_every: Some(3),
                    ..quick_cfg()
                },
            );
            let mut c = Client::connect(addr).unwrap();
            let (s, _) = c.hello().unwrap();
            for i in 0..7 {
                c.tell(s, &format!("TELL N{i} end")).unwrap();
            }
            srv.shutdown().unwrap();
        }
        assert!(
            dir.join("snapshot").exists(),
            "op threshold must have forced a checkpoint"
        );
        let (g, report) = Gkbms::recover(&dir).unwrap();
        assert!(report.snapshot_loaded);
        assert!(report.replayed_ops < 7, "WAL was compacted at least once");
        for i in 0..7 {
            assert!(g.kb().lookup(&format!("N{i}")).is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_without_journal_is_rejected() {
        let (srv, addr) = start(quick_cfg());
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        match c.checkpoint(s) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown().unwrap();
    }

    #[test]
    fn load_into_journaled_server_is_rejected() {
        let dir = journal_dir("noload");
        let (srv, addr) = start_journaled(&dir, quick_cfg());
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        match c.load(s, "/nonexistent/history") {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
