//! Blocking client library for the GKBMS service.
//!
//! Wraps a [`TcpStream`] with typed request/response methods over the
//! [`crate::proto`] frame protocol. One [`Client`] drives one
//! connection; the session id returned by [`Client::hello`] is passed
//! explicitly so a client can multiplex several sessions over one
//! connection (or reconnect and keep a session).

use crate::proto::{self, ErrorCode, FrameRead, Request, Response, WireDecision, WireDiagnostic};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What the server said when it refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// Typed error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// A client-side failure: transport, protocol, timeout, or a typed
/// server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-call).
    Io(io::Error),
    /// The peer sent a frame that does not decode, or a response of
    /// the wrong shape for the request.
    Protocol(String),
    /// The server accepted the connection but produced no response
    /// within the configured read timeout.
    Timeout(Duration),
    /// The request needs the leader: this server is a read replica and
    /// refuses writes. Reconnect to `leader` and retry there.
    Redirect {
        /// Address of the leader this replica follows.
        leader: String,
    },
    /// The client was configured so the call can never succeed (e.g. a
    /// zero-attempt connect budget).
    Config(String),
    /// The server answered with a typed error.
    Server(ServerError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Timeout(t) => {
                write!(f, "no response within {} ms", t.as_millis())
            }
            ClientError::Redirect { leader } => {
                write!(f, "not the leader: writes go to {leader}")
            }
            ClientError::Config(m) => write!(f, "invalid client configuration: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Client call result.
pub type ClientResult<T> = Result<T, ClientError>;

/// ASK answers plus the deductive evaluation counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AskReply {
    /// The matching instance names.
    pub answers: Vec<String>,
    /// Secondary-index probes issued by the join core.
    pub probes: u64,
    /// Candidate tuples iterated while joining.
    pub scanned: u64,
}

/// Per-session statistics as reported by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Session id.
    pub session: u64,
    /// The session's pinned belief-time watermark.
    pub watermark: i64,
    /// The knowledge base's current belief time.
    pub kb_now: i64,
    /// Requests served for the session.
    pub requests: u64,
    /// Propositions believed at the watermark.
    pub believed: u64,
    /// `index_probes` of the session's last ASK.
    pub probes: u64,
    /// `tuples_scanned` of the session's last ASK.
    pub scanned: u64,
}

/// A replica's view of its own role and position, as reported by
/// [`Client::repl_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// True on the leader (or any standalone server).
    pub is_leader: bool,
    /// The leader address a follower ships from (empty on a leader).
    pub leader: String,
    /// Ops applied locally.
    pub applied_seq: u64,
    /// The leader's committed position as last observed (on a leader,
    /// equal to `applied_seq`).
    pub leader_seq: u64,
    /// The sequence epoch the server is serving under.
    pub epoch: u64,
    /// True while a follower's subscription to the leader is live.
    pub connected: bool,
}

impl ReplicaStatus {
    /// Committed leader ops not yet applied locally.
    pub fn lag(&self) -> u64 {
        self.leader_seq.saturating_sub(self.applied_seq)
    }
}

/// Default per-call read timeout; see [`Client::connect_with_timeout`].
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Connection attempts made by [`Client::connect`] before giving up.
pub const CONNECT_ATTEMPTS: u32 = 5;
/// First retry delay of [`Client::connect`]; doubles per attempt.
pub const CONNECT_BACKOFF: Duration = Duration::from_millis(20);

/// One connection to a GKBMS server.
pub struct Client {
    stream: TcpStream,
    read_timeout: Duration,
    /// `(applied_seq, lag)` from the most recent reply that came
    /// wrapped in a replica staleness header, if any.
    last_staleness: Option<(u64, u64)>,
}

impl Client {
    /// Connects to `addr` with the [`DEFAULT_READ_TIMEOUT`]: a stalled
    /// server fails each call with [`ClientError::Timeout`] instead of
    /// blocking the client forever. Retries refused connections with
    /// exponential backoff ([`CONNECT_ATTEMPTS`] attempts starting at
    /// [`CONNECT_BACKOFF`]) — a freshly (re)started or promoted server
    /// may not be listening yet.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientResult<Client> {
        Client::connect_with_retry(addr, DEFAULT_READ_TIMEOUT, CONNECT_ATTEMPTS)
    }

    /// Connects with an explicit attempt budget; delays double from
    /// [`CONNECT_BACKOFF`] between attempts. A zero-attempt budget is
    /// a configuration error, not a silent single try: it fails with
    /// [`ClientError::Config`]. When every attempt fails, the *last*
    /// connect error is returned as [`ClientError::Io`].
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        read_timeout: Duration,
        attempts: u32,
    ) -> ClientResult<Client> {
        if attempts == 0 {
            return Err(ClientError::Config(
                "connect_with_retry needs a nonzero attempt budget".into(),
            ));
        }
        let mut backoff = CONNECT_BACKOFF;
        let mut attempt = 0;
        loop {
            match Client::connect_with_timeout(&addr, read_timeout) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(ClientError::Io(e));
                    }
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }

    /// Connects to `addr` with an explicit per-call read timeout and no
    /// retries. `Duration::ZERO` disables the timeout (reads block
    /// forever).
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        read_timeout: Duration,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            read_timeout: Duration::ZERO,
            last_staleness: None,
        };
        client.set_read_timeout(read_timeout)?;
        Ok(client)
    }

    /// Changes the per-call read timeout (`Duration::ZERO` disables
    /// it). The socket polls in slices of roughly `read_timeout` /
    /// [`proto::MID_FRAME_TIMEOUT_RETRIES`], mirroring the server's
    /// tolerance for a peer that stalls mid-frame.
    pub fn set_read_timeout(&mut self, read_timeout: Duration) -> io::Result<()> {
        self.read_timeout = read_timeout;
        let slice = if read_timeout.is_zero() {
            None
        } else {
            Some(
                (read_timeout / proto::MID_FRAME_TIMEOUT_RETRIES)
                    .clamp(Duration::from_millis(10), Duration::from_secs(1)),
            )
        };
        self.stream.set_read_timeout(slice)
    }

    /// The configured per-call read timeout (zero = none).
    pub fn read_timeout(&self) -> Duration {
        self.read_timeout
    }

    /// Sends `req` and reads the matching response. The protocol is
    /// strictly request/response per connection, so ordering is trivial.
    /// With a read timeout configured, a server that accepts the
    /// request but never answers yields [`ClientError::Timeout`].
    pub fn roundtrip(&mut self, req: &Request) -> ClientResult<Response> {
        proto::write_frame(&mut self.stream, &req.encode())?;
        let deadline = (!self.read_timeout.is_zero()).then(|| Instant::now() + self.read_timeout);
        loop {
            match proto::read_frame(&mut self.stream) {
                Ok(FrameRead::Frame(payload)) => {
                    return Response::decode(&payload)
                        .map_err(|e| ClientError::Protocol(e.to_string()))
                }
                Ok(FrameRead::Eof) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(FrameRead::Idle) => match deadline {
                    Some(d) if Instant::now() >= d => {
                        return Err(ClientError::Timeout(self.read_timeout))
                    }
                    // Idle without a timeout configured cannot happen
                    // (the read blocks); with one, keep polling.
                    _ => {}
                },
                // A mid-frame stall exhausted its bounded retries.
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    return Err(ClientError::Timeout(self.read_timeout))
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn expect(&mut self, req: &Request) -> ClientResult<Response> {
        let resp = self.roundtrip(req)?;
        self.finish(resp)
    }

    /// Strips replica framing from a response: unwraps staleness
    /// headers (recording the replica's position), surfaces redirects
    /// and typed errors as [`ClientError`]s.
    fn finish(&mut self, mut resp: Response) -> ClientResult<Response> {
        loop {
            match resp {
                Response::Stale {
                    applied_seq,
                    lag,
                    inner,
                } => {
                    self.last_staleness = Some((applied_seq, lag));
                    resp = Response::decode(&inner)
                        .map_err(|e| ClientError::Protocol(format!("stale inner: {e}")))?;
                }
                Response::Redirect { leader } => return Err(ClientError::Redirect { leader }),
                Response::Error { code, message } => {
                    return Err(ClientError::Server(ServerError { code, message }))
                }
                other => return Ok(other),
            }
        }
    }

    /// `(applied_seq, lag)` from the most recent reply that a replica
    /// wrapped in a staleness header; `None` until one arrives (e.g.
    /// when talking to the leader).
    pub fn last_staleness(&self) -> Option<(u64, u64)> {
        self.last_staleness
    }

    fn done(&mut self, req: &Request) -> ClientResult<String> {
        match self.expect(req)? {
            Response::Done { text } => Ok(text),
            other => Err(shape("Done", &other)),
        }
    }

    fn names(&mut self, req: &Request) -> ClientResult<Vec<String>> {
        match self.expect(req)? {
            Response::Names { names, .. } => Ok(names),
            other => Err(shape("Names", &other)),
        }
    }

    fn table(&mut self, req: &Request) -> ClientResult<String> {
        match self.expect(req)? {
            Response::Table { text } => Ok(text),
            other => Err(shape("Table", &other)),
        }
    }

    /// Opens a session; returns `(session, watermark)`.
    pub fn hello(&mut self) -> ClientResult<(u64, i64)> {
        match self.expect(&Request::Hello)? {
            Response::Welcome { session, watermark } => Ok((session, watermark)),
            other => Err(shape("Welcome", &other)),
        }
    }

    /// Closes a session.
    pub fn bye(&mut self, session: u64) -> ClientResult<String> {
        self.done(&Request::Bye { session })
    }

    /// Re-pins the session watermark to the current belief time.
    pub fn refresh(&mut self, session: u64) -> ClientResult<String> {
        self.done(&Request::Refresh { session })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<String> {
        self.done(&Request::Ping)
    }

    /// TELLs objectbase concrete syntax (`TELL … end`, possibly
    /// several frames).
    pub fn tell(&mut self, session: u64, src: &str) -> ClientResult<String> {
        self.done(&Request::Tell {
            session,
            src: src.into(),
        })
    }

    /// UNTELLs an object by name.
    pub fn untell(&mut self, session: u64, name: &str) -> ClientResult<String> {
        self.done(&Request::Untell {
            session,
            name: name.into(),
        })
    }

    /// Snapshot-pinned deductive ASK.
    pub fn ask(
        &mut self,
        session: u64,
        var: &str,
        class: &str,
        expr: &str,
    ) -> ClientResult<AskReply> {
        let req = Request::Ask {
            session,
            var: var.into(),
            class: class.into(),
            expr: expr.into(),
        };
        match self.expect(&req)? {
            Response::Names {
                probes,
                scanned,
                names,
            } => Ok(AskReply {
                answers: names,
                probes,
                scanned,
            }),
            other => Err(shape("Names", &other)),
        }
    }

    /// Evaluates a closed assertion against the session snapshot.
    pub fn holds(&mut self, session: u64, expr: &str) -> ClientResult<bool> {
        let req = Request::Holds {
            session,
            expr: expr.into(),
        };
        match self.expect(&req)? {
            Response::Truth { value } => Ok(value),
            other => Err(shape("Truth", &other)),
        }
    }

    /// Renders the current frame of an object.
    pub fn show(&mut self, session: u64, name: &str) -> ClientResult<String> {
        self.table(&Request::Show {
            session,
            name: name.into(),
        })
    }

    /// Decision classes applicable to a design object.
    pub fn applicable_decisions(
        &mut self,
        session: u64,
        object: &str,
    ) -> ClientResult<Vec<String>> {
        self.names(&Request::ApplicableDecisions {
            session,
            object: object.into(),
        })
    }

    /// Executes a design decision.
    pub fn execute(&mut self, session: u64, decision: WireDecision) -> ClientResult<String> {
        self.done(&Request::Execute { session, decision })
    }

    /// Retracts a decision; returns the affected objects.
    pub fn retract_decision(&mut self, session: u64, name: &str) -> ClientResult<Vec<String>> {
        self.names(&Request::RetractDecision {
            session,
            name: name.into(),
        })
    }

    /// The process view (all decisions in causal order).
    pub fn history(&mut self, session: u64) -> ClientResult<String> {
        self.table(&Request::History { session })
    }

    /// The status view of all design objects.
    pub fn status(&mut self, session: u64) -> ClientResult<String> {
        self.table(&Request::Status { session })
    }

    /// Belief-time history of one object, as `t<tick>: <event>` rows.
    pub fn object_history(&mut self, session: u64, object: &str) -> ClientResult<Vec<String>> {
        self.names(&Request::ObjectHistory {
            session,
            object: object.into(),
        })
    }

    /// Per-session statistics.
    pub fn session_stats(&mut self, session: u64) -> ClientResult<SessionStats> {
        match self.expect(&Request::SessionStats { session })? {
            Response::SessionInfo {
                session,
                watermark,
                kb_now,
                requests,
                believed,
                probes,
                scanned,
            } => Ok(SessionStats {
                session,
                watermark,
                kb_now,
                requests,
                believed,
                probes,
                scanned,
            }),
            other => Err(shape("SessionInfo", &other)),
        }
    }

    /// Persists the knowledge base to a server-side path.
    pub fn save(&mut self, session: u64, path: &str) -> ClientResult<String> {
        self.done(&Request::Save {
            session,
            path: path.into(),
        })
    }

    /// Replaces the knowledge base from a server-side path.
    pub fn load(&mut self, session: u64, path: &str) -> ClientResult<String> {
        self.done(&Request::Load {
            session,
            path: path.into(),
        })
    }

    /// Forces a journal checkpoint: the state is snapshotted atomically
    /// and the WAL is truncated. Errors if the server is not journaled.
    pub fn checkpoint(&mut self, session: u64) -> ClientResult<String> {
        self.done(&Request::Checkpoint { session })
    }

    /// Registers a design object.
    pub fn register_object(
        &mut self,
        session: u64,
        name: &str,
        class: &str,
        source: &str,
    ) -> ClientResult<String> {
        self.done(&Request::RegisterObject {
            session,
            name: name.into(),
            class: class.into(),
            source: source.into(),
        })
    }

    /// Diagnostic: hold a server admission slot for `millis` ms.
    pub fn sleep(&mut self, session: u64, millis: u64) -> ClientResult<String> {
        self.done(&Request::Sleep { session, millis })
    }

    /// Begins graceful server shutdown.
    pub fn shutdown_server(&mut self, session: u64) -> ClientResult<String> {
        self.done(&Request::Shutdown { session })
    }

    /// Statically analyzes source text against the live knowledge base
    /// without admitting anything. An empty list means a clean source.
    pub fn lint(&mut self, session: u64, src: &str) -> ClientResult<Vec<WireDiagnostic>> {
        let req = Request::Lint {
            session,
            src: src.into(),
        };
        match self.expect(&req)? {
            Response::Diagnostics { diags } => Ok(diags),
            other => Err(shape("Diagnostics", &other)),
        }
    }

    /// Scrapes the server's metrics registry (Prometheus text format).
    /// Sessionless and admission-exempt, so it works on a saturated
    /// server.
    pub fn metrics(&mut self) -> ClientResult<String> {
        match self.expect(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(shape("Metrics", &other)),
        }
    }

    /// Promotes a follower to leader: its log is sealed under a new
    /// sequence epoch and it starts accepting writes. Errors with
    /// [`ErrorCode::Rejected`] on a server that is already the leader.
    pub fn promote(&mut self, session: u64) -> ClientResult<String> {
        self.done(&Request::Promote { session })
    }

    /// Registers a materialized deductive view: the base closure rules
    /// plus `rules` (datalog source, may be empty), maintained
    /// incrementally under every subsequent TELL/UNTELL. A write — on a
    /// replica it fails with [`ClientError::Redirect`].
    pub fn register_view(&mut self, session: u64, name: &str, rules: &str) -> ClientResult<String> {
        self.done(&Request::RegisterView {
            session,
            name: name.into(),
            rules: rules.into(),
        })
    }

    /// Reads one predicate of a registered view, each tuple rendered
    /// as one space-joined row. Snapshot-pinned: a session whose
    /// watermark predates the view's last refresh gets answers
    /// evaluated at its own watermark.
    pub fn view_ask(&mut self, session: u64, name: &str, pred: &str) -> ClientResult<Vec<String>> {
        self.names(&Request::ViewAsk {
            session,
            name: name.into(),
            pred: pred.into(),
        })
    }

    /// Renders the deductive evaluator's join plan and cost estimate
    /// for the base program, the stored rules, and any extra rules in
    /// `src` (may be empty), against the live knowledge base's measured
    /// EDB cardinalities. Read-only.
    pub fn explain(&mut self, session: u64, src: &str) -> ClientResult<String> {
        self.done(&Request::Explain {
            session,
            src: src.into(),
        })
    }

    /// Structure-similarity recall: which past decisions looked like
    /// the named one? Returns `(decision, score, retracted)` triples,
    /// best first; retracted precedents are included and flagged.
    pub fn recall(
        &mut self,
        session: u64,
        name: &str,
        limit: u32,
    ) -> ClientResult<Vec<(String, f64, bool)>> {
        let req = Request::Recall {
            session,
            name: name.into(),
            limit,
        };
        match self.expect(&req)? {
            Response::RecallHits { hits } => Ok(hits
                .into_iter()
                .map(|h| (h.decision.clone(), h.score(), h.retracted))
                .collect()),
            other => Err(shape("RecallHits", &other)),
        }
    }

    /// The server's replication role and position. Sessionless and
    /// admission-exempt, like [`Client::metrics`].
    pub fn repl_status(&mut self) -> ClientResult<ReplicaStatus> {
        match self.expect(&Request::ReplStatus)? {
            Response::ReplInfo {
                is_leader,
                leader,
                applied_seq,
                leader_seq,
                epoch,
                connected,
            } => Ok(ReplicaStatus {
                is_leader,
                leader,
                applied_seq,
                leader_seq,
                epoch,
                connected,
            }),
            other => Err(shape("ReplInfo", &other)),
        }
    }
}

fn shape(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_attempt_budget_is_a_typed_config_error() {
        let err = Client::connect_with_retry("127.0.0.1:1", Duration::from_millis(10), 0)
            .err()
            .expect("zero attempts must fail");
        match err {
            ClientError::Config(m) => assert!(m.contains("attempt"), "message: {m}"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_attempts_surface_the_last_io_error() {
        // Port 1 refuses on loopback; one attempt, no backoff sleep.
        let err = Client::connect_with_retry("127.0.0.1:1", Duration::from_millis(10), 1)
            .err()
            .expect("nothing listens on port 1");
        match err {
            ClientError::Io(_) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
