//! Session management: ids, pinned snapshot versions & watermarks,
//! per-session statistics, and idle-timeout reaping.
//!
//! A session is the unit of snapshot isolation (see [`crate::proto`]):
//! at open (or [`SessionTable::refresh`]) it pins a belief-time
//! watermark *and* a store version (an [`gkbms::mvcc::Pin`] in the
//! server; the table is generic over the pin type so it stays
//! testable without a knowledge base). Every read the session performs
//! is evaluated against its pinned version at its watermark — no
//! state lock. Sessions are independent of TCP connections — a client
//! may reconnect and keep using its session id — so liveness is
//! tracked by *use*, not by the socket: a session untouched for longer
//! than the idle timeout is reaped, and later requests for it get
//! [`crate::proto::ErrorCode::SessionExpired`].
//!
//! Reaping a session drops its pin, which releases its epoch in the
//! version chain — [`SessionTable::sweep`] is therefore part of the
//! reclamation path, not just table hygiene, and the server calls it
//! on every publish and on idle connection polls.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One open session, holding a pin of type `P` (the server uses
/// `gkbms::mvcc::Pin<telos::KbVersion>`; tests use `()` or integers).
#[derive(Debug, Clone)]
pub struct Session<P> {
    /// The session id.
    pub id: u64,
    /// Belief-time watermark all the session's reads are pinned at.
    pub watermark: i64,
    /// The pinned store version the session reads from.
    pub pin: P,
    /// Requests served for this session.
    pub requests: u64,
    /// `index_probes` of the session's last ASK.
    pub last_probes: u64,
    /// `tuples_scanned` of the session's last ASK.
    pub last_scanned: u64,
    last_used: Instant,
}

/// Why a session lookup failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionErr {
    /// Never opened, or explicitly closed.
    Unknown,
    /// Reaped after exceeding the idle timeout.
    Expired,
}

/// The table of open sessions, with idle-timeout reaping.
#[derive(Debug)]
pub struct SessionTable<P> {
    next: u64,
    map: HashMap<u64, Session<P>>,
    idle_timeout: Duration,
}

impl<P> SessionTable<P> {
    /// An empty table with the given idle timeout.
    pub fn new(idle_timeout: Duration) -> Self {
        SessionTable {
            next: 1,
            map: HashMap::new(),
            idle_timeout,
        }
    }

    /// Opens a session pinned at `watermark` reading from `pin`,
    /// returning its id. Also sweeps sessions that have idled out
    /// (opportunistic reaping keeps the table bounded without a
    /// dedicated timer thread).
    pub fn open(&mut self, watermark: i64, pin: P) -> u64 {
        self.sweep();
        let id = self.next;
        self.next += 1;
        self.map.insert(
            id,
            Session {
                id,
                watermark,
                pin,
                requests: 0,
                last_probes: 0,
                last_scanned: 0,
                last_used: Instant::now(),
            },
        );
        obs::counter!("gkbms_sessions_opened_total", "Sessions opened").inc();
        self.publish_active();
        id
    }

    /// Publishes the open-session count as a gauge.
    fn publish_active(&self) {
        obs::gauge!("gkbms_sessions_active", "Sessions currently open").set(self.map.len() as i64);
    }

    /// Touches `id` for a new request: bumps its counters and returns
    /// the session, or reaps it if it sat idle past the timeout.
    pub fn touch(&mut self, id: u64) -> Result<&mut Session<P>, SessionErr> {
        let expired = match self.map.get(&id) {
            None => return Err(SessionErr::Unknown),
            Some(s) => s.last_used.elapsed() > self.idle_timeout,
        };
        if expired {
            self.map.remove(&id);
            obs::counter!(
                "gkbms_sessions_reaped_total",
                "Sessions reaped after idling out"
            )
            .inc();
            self.publish_active();
            return Err(SessionErr::Expired);
        }
        let s = self.map.get_mut(&id).expect("checked above");
        s.last_used = Instant::now();
        s.requests += 1;
        Ok(s)
    }

    /// Re-pins `id` to `watermark` reading from `pin` (the old pin is
    /// dropped, releasing its epoch). Returns the new watermark.
    pub fn refresh(&mut self, id: u64, watermark: i64, pin: P) -> Result<i64, SessionErr> {
        let s = self.touch(id)?;
        s.watermark = watermark;
        s.pin = pin;
        Ok(watermark)
    }

    /// Closes `id`. Closing an unknown session is not an error (the
    /// client's intent — "this session is gone" — already holds).
    pub fn close(&mut self, id: u64) {
        self.map.remove(&id);
        self.publish_active();
    }

    /// Drops every session that has idled out (releasing their pins —
    /// this is what lets the version chain reclaim epochs held only by
    /// abandoned sessions).
    pub fn sweep(&mut self) {
        let timeout = self.idle_timeout;
        let before = self.map.len();
        self.map.retain(|_, s| s.last_used.elapsed() <= timeout);
        let reaped = before - self.map.len();
        if reaped > 0 {
            obs::counter!(
                "gkbms_sessions_reaped_total",
                "Sessions reaped after idling out"
            )
            .add(reaped as u64);
            self.publish_active();
        }
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<P: Clone> SessionTable<P> {
    /// Re-pins every open session to `watermark` reading from `pin`.
    /// Used after `LOAD` replaces the knowledge base: old watermarks
    /// and versions refer to a store that no longer exists.
    pub fn repin_all(&mut self, watermark: i64, pin: P) {
        for s in self.map.values_mut() {
            s.watermark = watermark;
            s.pin = pin.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn open_touch_close() {
        let mut t = SessionTable::new(Duration::from_secs(60));
        let a = t.open(5, ());
        let b = t.open(7, ());
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        let s = t.touch(a).unwrap();
        assert_eq!(s.watermark, 5);
        assert_eq!(s.requests, 1);
        t.touch(a).unwrap();
        assert_eq!(t.touch(a).unwrap().requests, 3);
        t.close(a);
        assert!(matches!(t.touch(a), Err(SessionErr::Unknown)));
        assert!(t.touch(b).is_ok());
    }

    #[test]
    fn refresh_repins_watermark_and_pin() {
        let mut t = SessionTable::new(Duration::from_secs(60));
        let a = t.open(5, 100u64);
        assert_eq!(t.refresh(a, 9, 200), Ok(9));
        let s = t.touch(a).unwrap();
        assert_eq!(s.watermark, 9);
        assert_eq!(s.pin, 200);
        assert!(matches!(t.refresh(999, 9, 300), Err(SessionErr::Unknown)));
    }

    #[test]
    fn idle_sessions_expire() {
        let mut t = SessionTable::new(Duration::from_millis(20));
        let a = t.open(1, ());
        std::thread::sleep(Duration::from_millis(40));
        assert!(matches!(t.touch(a), Err(SessionErr::Expired)));
        // Reaped: a second touch reports Unknown, not Expired.
        assert!(matches!(t.touch(a), Err(SessionErr::Unknown)));
    }

    #[test]
    fn sweep_reaps_only_idle() {
        let mut t = SessionTable::new(Duration::from_millis(30));
        let a = t.open(1, ());
        std::thread::sleep(Duration::from_millis(45));
        let b = t.open(2, ());
        t.sweep();
        assert_eq!(t.len(), 1);
        assert!(matches!(t.touch(a), Err(SessionErr::Unknown)));
        assert!(t.touch(b).is_ok());
    }

    #[test]
    fn repin_all_moves_every_watermark() {
        let mut t = SessionTable::new(Duration::from_secs(60));
        let a = t.open(1, 10u64);
        let b = t.open(2, 10u64);
        t.repin_all(10, 99);
        let s = t.touch(a).unwrap();
        assert_eq!((s.watermark, s.pin), (10, 99));
        let s = t.touch(b).unwrap();
        assert_eq!((s.watermark, s.pin), (10, 99));
    }

    /// The ISSUE 6 bugfix, at the table level: reaping an idle session
    /// must drop its pin so downstream reclamation proceeds. Uses an
    /// `Arc` as a stand-in pin and watches its strong count.
    #[test]
    fn sweep_releases_the_reaped_sessions_pin() {
        let pin = Arc::new(());
        let mut t = SessionTable::new(Duration::from_millis(20));
        t.open(1, Arc::clone(&pin));
        assert_eq!(Arc::strong_count(&pin), 2);
        std::thread::sleep(Duration::from_millis(40));
        t.sweep();
        assert_eq!(t.len(), 0);
        assert_eq!(Arc::strong_count(&pin), 1, "reap released the pin");
    }
}
